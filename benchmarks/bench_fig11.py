"""Figure 11: instruction overhead of the injected prefetch slices."""

from repro.experiments import fig11


def test_fig11_instruction_overhead(run_experiment):
    result = run_experiment(fig11)
    # Paper shape: both passes add bounded instruction overhead (the
    # paper's loops carry more surrounding code, so its ratios are
    # smaller: A&J 1.19x, APT-GET 1.14x; our kernels are bare loops) and
    # APT-GET stays in A&J's ballpark despite prefetching more sites,
    # thanks to minimal slice cloning and line-stepped sweeps.
    aj = result.summary["avg_overhead_aj"]
    apt = result.summary["avg_overhead_apt_get"]
    assert 1.0 <= apt < 2.2
    assert 1.0 <= aj < 2.2
    assert apt <= aj * 1.15
