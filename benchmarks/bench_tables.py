"""Static table reproductions: Table 2 (machine), Table 3 (applications),
Table 4 (graph data-sets)."""

from repro.experiments import table2, table3, table4


def test_table2_machine_configuration(run_experiment):
    result = run_experiment(table2)
    assert result.summary["miss_latency_cycles"] > 100


def test_table3_application_inventory(run_experiment):
    result = run_experiment(table3)
    assert result.summary["applications"] >= 10
    assert all(row[3] >= 1 for row in result.rows)


def test_table4_dataset_catalog(run_experiment):
    result = run_experiment(table4)
    assert len(result.rows) == 8
    assert result.summary["max_avg_degree_error"] < 0.1
