"""Engine-tier ladder benchmark: reference / translate / fast / turbo.

Times each execution engine end-to-end (workload build + run) on a set
of loop-heavy suite workloads, twice per engine:

* **cold** — graph-generation cache cleared first, so the measurement
  includes dataset generation and engine compilation; and
* **warm** — a fresh workload built immediately after, so graph
  generation is served by the content-addressed ``repro.service`` store
  and the wall-clock isolates engine compile + execute.

Every measurement rebuilds the workload from scratch: running two
engines over one module/address-space is invalid (the first run mutates
the workload's data segments).  Counter signatures are collected per
engine and must agree bit-identically — a benchmark that silently
compared engines computing different things would be meaningless.

Standalone use (writes ``BENCH_engines.json`` next to this file)::

    PYTHONPATH=src python benchmarks/bench_engines.py [--scale small]

or as a bench test::

    pytest benchmarks/bench_engines.py --benchmark-only

See docs/PERFORMANCE.md for how to read the emitted JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.machine import ENGINES, Machine
from repro.workloads.graphs import clear_graph_cache, graph_store
from repro.workloads.registry import make_workload

#: Slowest tier first so the JSON reads as a ladder.
ENGINE_ORDER = ("reference", "translate", "fast", "turbo")

#: Loop-heavy suite members (the tier the turbo engine targets): a
#: nested hash join, a Kronecker BFS, and the pointer-chasing update
#: kernel.  Overridable from the CLI.
DEFAULT_WORKLOADS = ("HJ8-NPO", "Graph500", "randAccess")

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_engines.json"


def _timed_run(name: str, engine: str, scale: str) -> tuple[float, float, dict]:
    """Build a fresh workload and run it.

    Returns ``(build_seconds, run_seconds, signature)`` — build covers
    workload construction (dataset generation included), run covers
    engine compilation + execution, which is the part the tiers differ
    on.
    """
    start = time.perf_counter()
    workload = make_workload(name, scale)
    module, space = workload.build()
    built = time.perf_counter()
    machine = Machine(module, space, engine=engine)
    result = machine.run(workload.entry)
    finished = time.perf_counter()
    signature = {"value": result.value, **machine.counters.as_dict()}
    return built - start, finished - built, signature


def measure_workload(name: str, scale: str, reps: int = 3) -> dict:
    """Cold + warm wall-clock for every engine tier on one workload."""
    rows: dict[str, dict] = {}
    signatures: dict[str, dict] = {}
    generated = 0
    for engine in ENGINE_ORDER:
        clear_graph_cache()
        cold_build, cold_run, signature = _timed_run(name, engine, scale)
        generated = graph_store().metrics.get("graph_cache.misses")
        rows[engine] = {
            "cold_build_s": round(cold_build, 6),
            "cold_run_s": round(cold_run, 6),
            "warm_build_s": float("inf"),
            "warm_run_s": float("inf"),
        }
        signatures[engine] = signature

    # Warm = best of ``reps`` reruns, *interleaved across engines* so
    # slow drift in background load cancels out of the ratios instead
    # of landing on whichever engine happened to run last.  Rebuilding
    # per run is mandatory (a run mutates the workload's data segments).
    for _ in range(reps):
        for engine in ENGINE_ORDER:
            b, r, warm_signature = _timed_run(name, engine, scale)
            if warm_signature != signatures[engine]:
                raise AssertionError(
                    f"{name}/{engine}: warm rerun diverged from the cold "
                    "run (graph cache returned a different graph?)"
                )
            row = rows[engine]
            row["warm_build_s"] = min(row["warm_build_s"], round(b, 6))
            row["warm_run_s"] = min(row["warm_run_s"], round(r, 6))
    for engine in ENGINE_ORDER:
        row = rows[engine]
        row["cold_s"] = round(row["cold_build_s"] + row["cold_run_s"], 6)
        row["warm_s"] = round(row["warm_build_s"] + row["warm_run_s"], 6)
    # Non-graph workloads (hash join, randAccess) never touch the
    # store; for graph workloads the warm builds must be cache hits.
    if generated and graph_store().metrics.get("graph_cache.hits") < generated:
        raise AssertionError(
            f"{name}: warm reruns regenerated graphs instead of hitting "
            "the cache"
        )

    baseline = signatures[ENGINE_ORDER[0]]
    for engine, signature in signatures.items():
        if signature != baseline:
            diverging = sorted(
                k for k in baseline if signature.get(k) != baseline[k]
            )
            raise AssertionError(
                f"{name}: engine {engine!r} is not bit-identical with "
                f"{ENGINE_ORDER[0]!r}; diverging fields: {diverging}"
            )

    rows["signature"] = {
        k: baseline[k]
        for k in ("value", "instructions", "cycles", "loads", "stores")
    }
    return rows


def run_benchmark(
    workloads=DEFAULT_WORKLOADS, scale: str = "small", reps: int = 3
) -> dict:
    assert set(ENGINE_ORDER) == set(ENGINES)
    report: dict = {"scale": scale, "workloads": {}, "summary": {}}
    for name in workloads:
        report["workloads"][name] = measure_workload(name, scale, reps=reps)

    # Speedups compare warm *run* time: workload construction is
    # engine-independent, so folding it in only dilutes the ladder.
    def speedups(numerator: str, denominator: str) -> dict:
        return {
            name: round(
                rows[numerator]["warm_run_s"]
                / max(rows[denominator]["warm_run_s"], 1e-9),
                3,
            )
            for name, rows in report["workloads"].items()
        }

    report["summary"] = {
        "turbo_vs_fast": speedups("fast", "turbo"),
        "turbo_vs_reference": speedups("reference", "turbo"),
        "fast_vs_reference": speedups("reference", "fast"),
    }
    return report


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_engine_tier_ladder(benchmark, scale):
    report = benchmark.pedantic(
        lambda: run_benchmark(scale=scale), iterations=1, rounds=1
    )
    print()
    print(json.dumps(report["summary"], indent=2))
    # The bulk-stepping tier must not lose to the engine it supersedes.
    for name, speedup in report["summary"]["turbo_vs_fast"].items():
        assert speedup >= 1.0, f"turbo slower than fast on {name}: {speedup}x"


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small")
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        metavar="NAME",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, metavar="PATH"
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="interleaved warm repetitions per engine (min is kept)",
    )
    args = parser.parse_args()

    report = run_benchmark(tuple(args.workloads), args.scale, reps=args.reps)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.output}")
    for name, rows in report["workloads"].items():
        ladder = "  ".join(
            f"{engine}={rows[engine]['warm_run_s']:.2f}s"
            for engine in ENGINE_ORDER
        )
        print(f"  {name:14s} {ladder}")
    for pair, ratios in report["summary"].items():
        pretty = "  ".join(f"{n}={r:.2f}x" for n, r in ratios.items())
        print(f"  {pair:18s} {pretty}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
