"""Figure 1: speedup vs. prefetch-distance per work-function complexity."""

from repro.experiments import fig1


def test_fig1_distance_sweep_by_complexity(run_experiment):
    result = run_experiment(fig1)
    optima = {
        c: result.summary[f"optimal_distance_{c}"]
        for c in ("low", "medium", "high")
    }
    # Paper shape: optimal distance shrinks as work complexity grows.
    assert optima["low"] >= optima["medium"] >= optima["high"]
    assert optima["low"] > optima["high"]
    # Gains at the optimum are substantial (paper: >2x for medium).
    best_by_row = {row[0]: max(row[1:]) for row in result.rows}
    assert best_by_row["low"] > 1.5
    assert best_by_row["medium"] > 1.3
