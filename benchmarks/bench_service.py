"""Tuning-service artifact cache: cold vs warm suite reproduction.

The warm number is the service's reason to exist — a whole-suite
comparison served from the content-addressed store should be orders of
magnitude faster than recomputing it, and the gap is the trajectory
later scaling PRs (sharding, remote workers) build on.
"""

import shutil
import tempfile

from repro.service.api import TuningService


def test_suite_comparison_cold_cache(benchmark, scale):
    """Every artifact computed from scratch into a fresh store."""

    def setup():
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cold-")
        return (TuningService(cache_dir=cache_dir),), {}

    def run(service):
        result = service.compare_suite(scale)
        shutil.rmtree(str(service.store.root), ignore_errors=True)
        return result

    comparisons = benchmark.pedantic(run, setup=setup, iterations=1, rounds=1)
    assert comparisons and all(c.error is None for c in comparisons.values())


def test_suite_comparison_warm_cache(benchmark, scale, tmp_path):
    """Every artifact served from the store (fresh service per round,
    so in-process memoization cannot help — this measures the store)."""
    cache_dir = str(tmp_path / "warm-cache")
    TuningService(cache_dir=cache_dir).compare_suite(scale)  # populate

    def run():
        return TuningService(cache_dir=cache_dir).compare_suite(scale)

    comparisons = benchmark.pedantic(run, iterations=1, rounds=3)
    assert comparisons and all(c.error is None for c in comparisons.values())
