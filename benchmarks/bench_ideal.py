"""§2's ideal-prefetcher upper bound: fraction of ideal savings recovered."""

from repro.experiments import ideal


def test_ideal_headroom(run_experiment):
    result = run_experiment(ideal)
    # The ideal bound is a real upper bound...
    for row in result.rows:
        assert row[1] >= row[2] * 0.99 or row[1] >= row[3] * 0.99
    # ...and APT-GET recovers substantially more of it than the static
    # baseline (the paper's §2 conclusion).
    assert (
        result.summary["avg_fraction_apt_get"]
        > result.summary["avg_fraction_aj"]
    )
    assert result.summary["avg_fraction_apt_get"] > 0.5
