"""Figure 4: multi-modal loop-latency distribution of a delinquent load."""

from repro.experiments import fig4


def test_fig4_latency_distribution_peaks(run_experiment):
    result = run_experiment(fig4)
    # Paper shape: multiple peaks, one per serving memory level; the
    # memory component (highest - lowest peak) is on the DRAM scale.
    assert result.summary["n_peaks"] >= 2
    assert result.summary["ic_latency"] > 0
    assert result.summary["mc_latency"] > 100
