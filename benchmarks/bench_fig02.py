"""Figure 2: inner-loop prefetching effectiveness vs. trip count."""

from repro.experiments import fig2


def test_fig2_trip_count_sensitivity(run_experiment):
    result = run_experiment(fig2)
    best = {t: result.summary[f"best_speedup_trip{t}"] for t in (4, 16, 64)}
    # Paper shape: gains shrink as the trip count shrinks, and short
    # loops only profit from *small* distances — the motivation for the
    # outer injection site.
    assert best[4] < best[16] < best[64]
    headers = result.headers
    by_trip = {row[0]: dict(zip(headers[1:], row[1:])) for row in result.rows}
    largest = headers[-1]
    # At the largest swept distance, the short loop has lost (almost)
    # all of its best-case benefit; the long loop keeps more of it.
    assert by_trip["INNER=4"][largest] < 0.8 * best[4] + 0.3
    # The short loop's optimum sits at a smaller distance than the long
    # loop's.
    def optimal_distance(trip_row):
        values = by_trip[trip_row]
        return max(values, key=values.get)

    assert int(optimal_distance("INNER=4")[2:]) <= int(
        optimal_distance("INNER=64")[2:]
    )
