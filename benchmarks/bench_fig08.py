"""Figure 8: LBR-derived distance vs. exhaustive best distance."""

from repro.experiments import fig8


def test_fig8_lbr_near_optimal(run_experiment):
    result = run_experiment(fig8)
    # Paper shape: one LBR profile lands within a few percent of the
    # exhaustive sweep (1.30x vs 1.32x geomean).
    lbr = result.summary["geomean_lbr"]
    best = result.summary["geomean_best"]
    assert best >= lbr  # the sweep can only be better or equal
    assert lbr >= 0.88 * best
