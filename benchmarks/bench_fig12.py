"""Figure 12: profile-input sensitivity (train vs. test data)."""

from repro.experiments import fig12


def test_fig12_input_generalization(run_experiment):
    result = run_experiment(fig12)
    # Paper shape: profiles generalize across inputs — test-input
    # speedups track train-input speedups (1.36x vs 1.39x average).
    train = result.summary["avg_train"]
    test = result.summary["avg_test"]
    assert train > 1.0
    assert test > 1.0
    assert abs(train - test) / train < 0.35
