"""§4.10: profiling overhead of one LBR/PEBS run."""

from repro.experiments import profiling_overhead


def test_profiling_overhead(run_experiment):
    result = run_experiment(profiling_overhead)
    # Sampling hardware is transparent: identical simulated cycles.
    assert all(row[1] == 1.0 for row in result.rows)
    # Host-side tooling slowdown stays small (paper: seconds per run).
    assert result.summary["max_host_slowdown"] < 5.0
    # One run yields enough data to produce hints for every workload.
    assert all(row[5] >= 1 for row in result.rows)
