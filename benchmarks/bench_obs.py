"""Observability overhead: what tracing costs, and that *not* tracing
costs nothing measurable.

Two numbers matter:

* **tracing disabled** — the instrumented hierarchy (one
  ``if self.trace is not None`` guard per slow-path event; the L1-hit
  fast path is untouched) must run at seed speed, i.e. the disabled
  median must be within run-to-run noise of itself across repeats —
  the acceptance budget is <= 2% added wall time.
* **tracing enabled** — the full event stream (lifecycle spans, demand
  stalls, branch mirror) is allowed to cost, but simulated timing must
  be bit-identical: tracing observes the machine, never perturbs it.

Standalone mode emits a machine-readable JSON summary::

    python benchmarks/bench_obs.py [--repeats 5] [--output obs.json]
"""

from __future__ import annotations

import json
import statistics
import time

from repro.machine.machine import Machine
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.workloads.registry import make_workload

WORKLOAD = "micro-tiny"
DISTANCE = 8


def _build():
    workload = make_workload(WORKLOAD)
    module, space = workload.build()
    AinsworthJonesPass(AinsworthJonesConfig(distance=DISTANCE)).run(module)
    return workload, module, space


def _run_once(traced: bool):
    workload, module, space = _build()
    machine = Machine(module, space)
    if traced:
        machine.enable_tracing()
    started = time.perf_counter()
    result = machine.run(workload.entry)
    elapsed = time.perf_counter() - started
    return elapsed, result


def measure(repeats: int = 5) -> dict:
    """Median wall seconds for traced/untraced runs + the invariants."""
    disabled = []
    enabled = []
    cycles = set()
    for _ in range(repeats):
        elapsed, result = _run_once(traced=False)
        disabled.append(elapsed)
        cycles.add(result.cycles)
        elapsed, result = _run_once(traced=True)
        enabled.append(elapsed)
        cycles.add(result.cycles)
    disabled_median = statistics.median(disabled)
    enabled_median = statistics.median(enabled)
    return {
        "workload": WORKLOAD,
        "repeats": repeats,
        "disabled_s": disabled_median,
        "disabled_spread": (max(disabled) - min(disabled)) / disabled_median,
        "enabled_s": enabled_median,
        "enabled_overhead": enabled_median / disabled_median - 1.0,
        "cycles_identical": len(cycles) == 1,
        "simulated_cycles": max(cycles),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_run_tracing_disabled(benchmark):
    """Instrumented-but-off run; the seed-parity number."""

    def run():
        return _run_once(traced=False)[1]

    result = benchmark.pedantic(run, iterations=1, rounds=5)
    assert result.counters.sw_prefetch_issued > 0


def test_run_tracing_enabled(benchmark):
    """Full event-stream run; must not perturb simulated timing."""
    _, untraced = _run_once(traced=False)

    def run():
        return _run_once(traced=True)[1]

    result = benchmark.pedantic(run, iterations=1, rounds=5)
    assert result.cycles == untraced.cycles
    assert result.counters.as_dict() == untraced.counters.as_dict()


def main() -> int:  # pragma: no cover - CLI entry
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default=None)
    args = parser.parse_args()
    summary = measure(repeats=args.repeats)
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(rendered)
    print(rendered)
    return 0 if summary["cycles_identical"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
