"""Observability overhead: what tracing costs, and that *not* tracing
costs nothing measurable.

Two numbers matter:

* **tracing disabled** — the instrumented hierarchy (one
  ``if self.trace is not None`` guard per slow-path event; the L1-hit
  fast path is untouched) must run at seed speed, i.e. the disabled
  median must be within run-to-run noise of itself across repeats —
  the acceptance budget is <= 2% added wall time.
* **tracing enabled** — the full event stream (lifecycle spans, demand
  stalls, branch mirror) is allowed to cost, but simulated timing must
  be bit-identical: tracing observes the machine, never perturbs it.

The service-telemetry twin (:func:`measure_telemetry`) applies the same
discipline one layer up: executing a tiny suite inside a telemetry
``job_scope`` (engine.build/engine.run/store.put spans journaled per
phase) must stay within a few percent of the bare execution, and the
result payloads must be byte-identical — ``scripts/ci_perf_check.py
--max-telemetry-overhead`` gates on it.

Standalone mode emits a machine-readable JSON summary::

    python benchmarks/bench_obs.py [--repeats 5] [--output obs.json]
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from pathlib import Path

from repro.machine.machine import Machine
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.workloads.registry import make_workload

WORKLOAD = "micro-tiny"
DISTANCE = 8


def _build():
    workload = make_workload(WORKLOAD)
    module, space = workload.build()
    AinsworthJonesPass(AinsworthJonesConfig(distance=DISTANCE)).run(module)
    return workload, module, space


def _run_once(traced: bool):
    workload, module, space = _build()
    machine = Machine(module, space)
    if traced:
        machine.enable_tracing()
    started = time.perf_counter()
    result = machine.run(workload.entry)
    elapsed = time.perf_counter() - started
    return elapsed, result


def measure(repeats: int = 5) -> dict:
    """Median wall seconds for traced/untraced runs + the invariants."""
    disabled = []
    enabled = []
    cycles = set()
    for _ in range(repeats):
        elapsed, result = _run_once(traced=False)
        disabled.append(elapsed)
        cycles.add(result.cycles)
        elapsed, result = _run_once(traced=True)
        enabled.append(elapsed)
        cycles.add(result.cycles)
    disabled_median = statistics.median(disabled)
    enabled_median = statistics.median(enabled)
    return {
        "workload": WORKLOAD,
        "repeats": repeats,
        "disabled_s": disabled_median,
        "disabled_spread": (max(disabled) - min(disabled)) / disabled_median,
        "enabled_s": enabled_median,
        "enabled_overhead": enabled_median / disabled_median - 1.0,
        "cycles_identical": len(cycles) == 1,
        "simulated_cycles": max(cycles),
    }


def measure_telemetry(repeats: int = 3) -> dict:
    """Median wall seconds for a tiny suite with the service-telemetry
    job scope active vs inactive, plus the bit-identity invariant.

    Each traced repeat journals the full span stream (execute +
    engine.build/engine.run/store.put per workload) to a throwaway
    directory; the untraced repeats hit the same code with the
    contextvar unset, i.e. the zero-cost no-op path.
    """
    import repro.api as api
    from repro.obs import telemetry as obs_telemetry
    from repro.service.api import TuningService

    request = api.SuiteRequest(
        scale="tiny", workloads=("micro-tiny", "BFS-tiny")
    )

    def run_plain() -> tuple[float, str]:
        started = time.perf_counter()
        result = api.execute(request, service=TuningService())
        return time.perf_counter() - started, result.to_json()

    def run_traced(telemetry, index: int) -> tuple[float, str]:
        started = time.perf_counter()
        with obs_telemetry.job_scope(
            telemetry, trace=f"tr-bench-{index}", job=f"j-bench-{index}"
        ):
            result = api.execute(request, service=TuningService())
        return time.perf_counter() - started, result.to_json()

    plain_times: list[float] = []
    traced_times: list[float] = []
    payloads = set()
    with tempfile.TemporaryDirectory(prefix="repro-bench-tel-") as tmp:
        telemetry = obs_telemetry.Telemetry(Path(tmp))
        for index in range(repeats):
            # Alternate which variant runs first so slow machine drift
            # (thermal, page cache) does not bias one side.
            order = (run_plain, run_traced) if index % 2 == 0 else (
                run_traced, run_plain
            )
            for fn in order:
                if fn is run_plain:
                    elapsed, payload = run_plain()
                    plain_times.append(elapsed)
                else:
                    elapsed, payload = run_traced(telemetry, index)
                    traced_times.append(elapsed)
                payloads.add(payload)
        spans = len(obs_telemetry.read_records(Path(tmp)))
    # The *minimum* over repeats is the noise-robust wall-clock
    # estimator: every source of jitter only ever adds time.
    plain_best = min(plain_times)
    traced_best = min(traced_times)
    return {
        "suite": list(request.workloads),
        "repeats": repeats,
        "plain_s": plain_best,
        "traced_s": traced_best,
        "telemetry_overhead": traced_best / plain_best - 1.0,
        "results_identical": len(payloads) == 1,
        "span_records": spans,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_run_tracing_disabled(benchmark):
    """Instrumented-but-off run; the seed-parity number."""

    def run():
        return _run_once(traced=False)[1]

    result = benchmark.pedantic(run, iterations=1, rounds=5)
    assert result.counters.sw_prefetch_issued > 0


def test_run_tracing_enabled(benchmark):
    """Full event-stream run; must not perturb simulated timing."""
    _, untraced = _run_once(traced=False)

    def run():
        return _run_once(traced=True)[1]

    result = benchmark.pedantic(run, iterations=1, rounds=5)
    assert result.cycles == untraced.cycles
    assert result.counters.as_dict() == untraced.counters.as_dict()


def main() -> int:  # pragma: no cover - CLI entry
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--telemetry-repeats", type=int, default=3,
        help="suite repeats for the service-telemetry overhead number "
        "(0 skips it)",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args()
    summary = measure(repeats=args.repeats)
    ok = summary["cycles_identical"]
    if args.telemetry_repeats > 0:
        summary["service_telemetry"] = measure_telemetry(
            repeats=args.telemetry_repeats
        )
        ok = ok and summary["service_telemetry"]["results_identical"]
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(rendered)
    print(rendered)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
