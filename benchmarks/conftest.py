"""Benchmark configuration: every bench regenerates one paper table or
figure at the 'small' scale and prints the reproduced rows.

Run with::

    pytest benchmarks/ --benchmark-only

Scale can be overridden: ``REPRO_BENCH_SCALE=tiny pytest benchmarks/``.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture()
def run_experiment(benchmark, scale):
    """Benchmark one experiment module and print its reproduction table."""

    def runner(module, **kwargs):
        result = benchmark.pedantic(
            lambda: module.run(scale, **kwargs), iterations=1, rounds=1
        )
        print()
        print(result.to_text())
        return result

    return runner
