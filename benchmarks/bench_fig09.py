"""Figure 9: static distances {4,16,64} vs. the LBR-derived distance."""

from repro.experiments import fig9


def test_fig9_static_vs_lbr(run_experiment):
    result = run_experiment(fig9)
    # Paper shape: the LBR distance beats every single static value in
    # geomean (1.30x vs 1.16/1.26/1.28x).
    lbr = result.summary["geomean_lbr"]
    statics = [result.summary[f"geomean_d{d}"] for d in (4, 16, 64)]
    assert lbr >= max(statics) * 0.97
    assert lbr > min(statics)
