"""Figure 5: memory-boundedness of the evaluation suite."""

from repro.experiments import fig5


def test_fig5_memory_boundedness(run_experiment):
    result = run_experiment(fig5)
    # Paper shape: the suite is substantially memory bound on average
    # (49.4% on an OoO Xeon; more on the blocking simulated core).
    assert result.summary["average_memory_bound"] > 0.4
    fractions = result.column("memory-bound")
    assert all(0.0 <= f <= 1.0 for f in fractions)
