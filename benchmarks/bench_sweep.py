"""Batched multi-config sweep benchmark: one batched pass vs N runs.

Times an 8-cell A&J prefetch-distance sweep (the Figure-6-style
distance axis) on one workload two ways:

* **batched** — all cells execute in a single
  :func:`repro.machine.batch.run_batch` pass: one shared front-end
  walks the aligned modules once while per-cell cache hierarchies
  (L1/L2/LLC + MSHRs) track each cell's timing; and
* **sequential** — the same cells run one at a time through a fresh
  :class:`~repro.machine.machine.Machine` per cell, once per engine
  tier (reference / fast / turbo).

Distances start at 2: at distance 1 the A&J pass folds the loop
increment into the prefetch advance, which changes instruction shape
per cell and (correctly) forces the batch tier's per-cell fallback —
a valid configuration, but then the benchmark would be measuring the
fallback path, not the batch engine.

Every batched cell must be bit-identical (value + full counter vector)
to its sequential fast-engine twin — a sweep benchmark whose cells
computed different things would be meaningless.

Standalone use (writes ``BENCH_sweep.json`` next to this file)::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--scale tiny]

or as a bench test::

    pytest benchmarks/bench_sweep.py --benchmark-only

See docs/PERFORMANCE.md for how to read the emitted JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace

from pathlib import Path

from repro.machine import Machine
from repro.machine.batch import BatchCell, run_batch
from repro.machine.config import MachineConfig
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.workloads.registry import make_workload

#: The 8-cell distance axis (>= 2; see module docstring).
DEFAULT_DISTANCES = (2, 4, 8, 12, 16, 24, 32, 48)

DEFAULT_WORKLOAD = "BFS-tiny"

#: Sequential comparators, slowest first.  ``reference`` is the
#: canonical sequential replay a sweep would otherwise cost (and the
#: tier the CI floor is measured against); fast/turbo show the batch
#: tier still beats the compiled single-config engines.
SEQUENTIAL_ENGINES = ("reference", "fast", "turbo")

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_sweep.json"


def _build_cells(
    workload: str, scale: str, distances: tuple
) -> tuple[list, str]:
    """Fresh per-distance cells: build + A&J injection at each distance.

    Rebuilding per measurement is mandatory — a run mutates the
    workload's data segments, so cells are never reused across timed
    passes.
    """
    config = MachineConfig()
    cells = []
    entry = None
    for distance in distances:
        instance = make_workload(workload, scale)
        module, space = instance.build()
        entry = instance.entry
        AinsworthJonesPass(AinsworthJonesConfig(distance=distance)).run(module)
        cells.append(BatchCell(module, space, config))
    return cells, entry


def _signature(result) -> dict:
    return {"value": result.value, **result.counters.as_dict()}


def measure_sweep(
    workload: str = DEFAULT_WORKLOAD,
    scale: str = "tiny",
    distances: tuple = DEFAULT_DISTANCES,
    reps: int = 3,
) -> dict:
    """Batched vs sequential wall-clock for one distance sweep.

    Returns ``{"batched_s", "sequential_s": {engine: s}, "speedup":
    {engine: ratio}, ...}`` where each time is the best of ``reps``
    (cell construction excluded — it is identical on both sides).
    """
    batched_s = float("inf")
    signatures: list[dict] = []
    for _ in range(reps):
        cells, entry = _build_cells(workload, scale, distances)
        start = time.perf_counter()
        outcome = run_batch(cells, function=entry)
        batched_s = min(batched_s, time.perf_counter() - start)
        if not outcome.batched:
            raise AssertionError(
                f"{workload}: distance sweep fell back to sequential "
                f"replay ({outcome.reason}) — the benchmark would not "
                "be measuring the batch engine"
            )
        signatures = [_signature(r) for r in outcome.results]

    sequential_s: dict[str, float] = {}
    for engine in SEQUENTIAL_ENGINES:
        best = float("inf")
        for _ in range(reps):
            cells, entry = _build_cells(workload, scale, distances)
            start = time.perf_counter()
            results = [
                Machine(
                    cell.module,
                    cell.space,
                    config=replace(cell.config, engine=engine),
                ).run(entry)
                for cell in cells
            ]
            best = min(best, time.perf_counter() - start)
        sequential_s[engine] = best
        for index, result in enumerate(results):
            if _signature(result) != signatures[index]:
                raise AssertionError(
                    f"{workload}: batched cell {index} (distance "
                    f"{distances[index]}) is not bit-identical with the "
                    f"sequential {engine} engine"
                )

    return {
        "workload": workload,
        "scale": scale,
        "distances": list(distances),
        "cells": len(distances),
        "batched_s": round(batched_s, 6),
        "sequential_s": {
            engine: round(seconds, 6)
            for engine, seconds in sequential_s.items()
        },
        "speedup": {
            engine: round(seconds / max(batched_s, 1e-9), 3)
            for engine, seconds in sequential_s.items()
        },
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_batched_distance_sweep(benchmark):
    report = benchmark.pedantic(measure_sweep, iterations=1, rounds=1)
    print()
    print(json.dumps(report["speedup"], indent=2))
    # The batch tier must amortize the shared front-end: well above the
    # sequential replay it replaces, and no worse than running the
    # compiled fast engine once per cell.
    assert report["speedup"]["reference"] >= 3.0, report["speedup"]
    assert report["speedup"]["fast"] >= 1.0, report["speedup"]


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument(
        "--distances",
        type=int,
        nargs="+",
        default=list(DEFAULT_DISTANCES),
        metavar="D",
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="repetitions (min is kept)"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, metavar="PATH"
    )
    args = parser.parse_args()

    report = measure_sweep(
        args.workload, args.scale, tuple(args.distances), reps=args.reps
    )
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.output}")
    print(
        f"  {report['workload']}@{report['scale']}: "
        f"{report['cells']}-cell distance sweep "
        f"batched={report['batched_s']:.3f}s"
    )
    for engine in SEQUENTIAL_ENGINES:
        print(
            f"  vs {engine:9s} {report['sequential_s'][engine]:.3f}s "
            f"-> {report['speedup'][engine]:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
