"""Batched multi-config sweep benchmark: one batched pass vs N runs.

Times an 8-cell A&J prefetch-distance sweep (the Figure-6-style
distance axis) on one workload three ways:

* **batch tier** — all cells execute in a single
  :func:`repro.machine.batch.run_batch` pass at ``tier="batch"``: one
  shared front-end dispatches per-block chains while per-cell cache
  hierarchies (L1/L2/LLC + MSHRs) track each cell's timing;
* **batchturbo tier** — the same single pass at ``tier="batchturbo"``:
  hot loop nests are fused into one generated superblock closure that
  steps every cell per iteration (turbo-style loop fusion across
  cells); and
* **sequential** — the same cells run one at a time through a fresh
  :class:`~repro.machine.machine.Machine` per cell, once per engine
  tier (reference / fast / turbo).

A second ladder — the 32-cell **distance x cache-scale grid**
(:func:`measure_grid`) — times the two batch tiers against each other
on divergent cell configs (four cache scales per distance), the shape
the batched superblock's per-cell overlays exist for.

Distances start at 2: at distance 1 the A&J pass folds the loop
increment into the prefetch advance, which changes instruction shape
per cell and (correctly) forces the batch tier's per-cell fallback —
a valid configuration, but then the benchmark would be measuring the
fallback path, not the batch engine.

Every batched cell must be bit-identical (value + full counter vector)
across both batch tiers and to its sequential fast-engine twin — a
sweep benchmark whose cells computed different things would be
meaningless.

Standalone use (writes ``BENCH_sweep.json`` next to this file)::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--scale tiny]

or as a bench test::

    pytest benchmarks/bench_sweep.py --benchmark-only

See docs/PERFORMANCE.md for how to read the emitted JSON (including
why the measured batchturbo-vs-batch ratio is workload-dependent and
Amdahl-bounded by the genuinely simulated miss work both tiers share).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace

from pathlib import Path

from repro.machine import Machine
from repro.machine.batch import BatchCell, run_batch
from repro.machine.config import MachineConfig
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.workloads.registry import make_workload

#: The 8-cell distance axis (>= 2; see module docstring).
DEFAULT_DISTANCES = (2, 4, 8, 12, 16, 24, 32, 48)

#: Cache-scale axis of the 32-cell grid ladder (distances x scales).
DEFAULT_GRID_SCALES = (1, 2, 4, 8)

#: Batched execution tiers, block-dispatch baseline first.
BATCH_TIERS = ("batch", "batchturbo")

DEFAULT_WORKLOAD = "BFS-tiny"

#: Sequential comparators, slowest first.  ``reference`` is the
#: canonical sequential replay a sweep would otherwise cost (and the
#: tier the CI floor is measured against); fast/turbo show the batch
#: tier still beats the compiled single-config engines.
SEQUENTIAL_ENGINES = ("reference", "fast", "turbo")

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_sweep.json"


def _build_cells(
    workload: str, scale: str, distances: tuple
) -> tuple[list, str]:
    """Fresh per-distance cells: build + A&J injection at each distance.

    Rebuilding per measurement is mandatory — a run mutates the
    workload's data segments, so cells are never reused across timed
    passes.
    """
    config = MachineConfig()
    cells = []
    entry = None
    for distance in distances:
        instance = make_workload(workload, scale)
        module, space = instance.build()
        entry = instance.entry
        AinsworthJonesPass(AinsworthJonesConfig(distance=distance)).run(module)
        cells.append(BatchCell(module, space, config))
    return cells, entry


def _signature(result) -> dict:
    return {"value": result.value, **result.counters.as_dict()}


def _time_tiers(
    build, entry_hint: str, reps: int
) -> tuple[dict, list[dict]]:
    """Best-of-``reps`` wall-clock per batch tier, tiers interleaved
    within each rep so machine drift hits both equally.  Asserts every
    pass actually batched and that the tiers are bit-identical
    per-cell; returns ``({tier: seconds}, signatures)``."""
    tier_s = {tier: float("inf") for tier in BATCH_TIERS}
    signatures: dict[str, list[dict]] = {}
    for _ in range(reps):
        for tier in BATCH_TIERS:
            cells, entry = build()
            start = time.perf_counter()
            outcome = run_batch(cells, function=entry, tier=tier)
            tier_s[tier] = min(tier_s[tier], time.perf_counter() - start)
            if not outcome.batched:
                raise AssertionError(
                    f"{entry_hint}: sweep fell back to sequential "
                    f"replay ({outcome.reason}) — the benchmark would "
                    "not be measuring the batch engine"
                )
            signatures[tier] = [_signature(r) for r in outcome.results]
    if signatures["batchturbo"] != signatures["batch"]:
        raise AssertionError(
            f"{entry_hint}: batchturbo cells are not bit-identical "
            "with the block-dispatch batch tier"
        )
    return tier_s, signatures["batch"]


def measure_sweep(
    workload: str = DEFAULT_WORKLOAD,
    scale: str = "tiny",
    distances: tuple = DEFAULT_DISTANCES,
    reps: int = 3,
) -> dict:
    """Batched (both tiers) vs sequential wall-clock for one sweep.

    Returns ``{"batched_s", "tiers": {tier: s}, "batchturbo_vs_batch",
    "sequential_s": {engine: s}, "speedup": {engine: ratio}, ...}``
    where each time is the best of ``reps`` (cell construction
    excluded — it is identical on all sides).  ``batched_s`` and the
    engine speedups stay keyed to the block-dispatch batch tier so the
    report is comparable with earlier revisions.
    """
    tier_s, signatures = _time_tiers(
        lambda: _build_cells(workload, scale, distances),
        f"{workload} distance ladder",
        reps,
    )
    batched_s = tier_s["batch"]

    sequential_s: dict[str, float] = {}
    for engine in SEQUENTIAL_ENGINES:
        best = float("inf")
        for _ in range(reps):
            cells, entry = _build_cells(workload, scale, distances)
            start = time.perf_counter()
            results = [
                Machine(
                    cell.module,
                    cell.space,
                    config=replace(cell.config, engine=engine),
                ).run(entry)
                for cell in cells
            ]
            best = min(best, time.perf_counter() - start)
        sequential_s[engine] = best
        for index, result in enumerate(results):
            if _signature(result) != signatures[index]:
                raise AssertionError(
                    f"{workload}: batched cell {index} (distance "
                    f"{distances[index]}) is not bit-identical with the "
                    f"sequential {engine} engine"
                )

    return {
        "workload": workload,
        "scale": scale,
        "distances": list(distances),
        "cells": len(distances),
        "batched_s": round(batched_s, 6),
        "tiers": {
            tier: round(seconds, 6) for tier, seconds in tier_s.items()
        },
        "batchturbo_vs_batch": round(
            tier_s["batch"] / max(tier_s["batchturbo"], 1e-9), 3
        ),
        "sequential_s": {
            engine: round(seconds, 6)
            for engine, seconds in sequential_s.items()
        },
        "speedup": {
            engine: round(seconds / max(batched_s, 1e-9), 3)
            for engine, seconds in sequential_s.items()
        },
    }


def measure_grid(
    workload: str = DEFAULT_WORKLOAD,
    scale: str = "tiny",
    distances: tuple = DEFAULT_DISTANCES,
    cache_scales: tuple = DEFAULT_GRID_SCALES,
    reps: int = 3,
) -> dict:
    """The 32-cell distance x cache-scale grid: batch vs batchturbo.

    Divergent cell configs (one cache hierarchy scaling per column)
    exercise the batched superblock's per-cell overlays; sequential
    comparators are omitted — cross-tier bit-identity is the oracle
    and the 8-cell ladder already anchors the sequential baselines.
    """

    def build():
        base_cells, entry = _build_cells(
            workload, scale, tuple(distances) * len(cache_scales)
        )
        cells = []
        for position, cell in enumerate(base_cells):
            cache_scale = cache_scales[position // len(distances)]
            config = cell.config
            if cache_scale != 1:
                config = replace(
                    config, memory=config.memory.scaled(cache_scale)
                )
            cells.append(BatchCell(cell.module, cell.space, config))
        return cells, entry

    tier_s, _ = _time_tiers(
        build, f"{workload} distance x cache-scale grid", reps
    )
    return {
        "workload": workload,
        "scale": scale,
        "distances": list(distances),
        "cache_scales": list(cache_scales),
        "cells": len(distances) * len(cache_scales),
        "tiers": {
            tier: round(seconds, 6) for tier, seconds in tier_s.items()
        },
        "batchturbo_vs_batch": round(
            tier_s["batch"] / max(tier_s["batchturbo"], 1e-9), 3
        ),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_batched_distance_sweep(benchmark):
    report = benchmark.pedantic(measure_sweep, iterations=1, rounds=1)
    print()
    print(json.dumps(report["speedup"], indent=2))
    # The batch tier must amortize the shared front-end: well above the
    # sequential replay it replaces, and no worse than running the
    # compiled fast engine once per cell.
    assert report["speedup"]["reference"] >= 3.0, report["speedup"]
    assert report["speedup"]["fast"] >= 1.0, report["speedup"]
    # The fused superblock tier must beat the block-dispatch chains it
    # replaces.  The in-bench floor is deliberately loose (CI enforces
    # the calibrated one via ci_perf_check.py); see docs/PERFORMANCE.md
    # for measured per-workload ratios and the Amdahl ceiling.
    assert report["batchturbo_vs_batch"] >= 1.1, report


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument(
        "--distances",
        type=int,
        nargs="+",
        default=list(DEFAULT_DISTANCES),
        metavar="D",
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="repetitions (min is kept)"
    )
    parser.add_argument(
        "--grid-scales",
        type=int,
        nargs="+",
        default=list(DEFAULT_GRID_SCALES),
        metavar="S",
        help="cache-scale axis of the distance x cache-scale grid",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, metavar="PATH"
    )
    args = parser.parse_args()

    report = measure_sweep(
        args.workload, args.scale, tuple(args.distances), reps=args.reps
    )
    report["grid32"] = measure_grid(
        args.workload,
        args.scale,
        tuple(args.distances),
        tuple(args.grid_scales),
        reps=args.reps,
    )
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.output}")
    print(
        f"  {report['workload']}@{report['scale']}: "
        f"{report['cells']}-cell distance sweep "
        f"batched={report['batched_s']:.3f}s "
        f"batchturbo={report['tiers']['batchturbo']:.3f}s "
        f"({report['batchturbo_vs_batch']:.2f}x)"
    )
    for engine in SEQUENTIAL_ENGINES:
        print(
            f"  vs {engine:9s} {report['sequential_s'][engine]:.3f}s "
            f"-> {report['speedup'][engine]:.2f}x"
        )
    grid = report["grid32"]
    print(
        f"  {grid['cells']}-cell grid (x{len(grid['cache_scales'])} "
        f"cache scales): batch={grid['tiers']['batch']:.3f}s "
        f"batchturbo={grid['tiers']['batchturbo']:.3f}s "
        f"({grid['batchturbo_vs_batch']:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
