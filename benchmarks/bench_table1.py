"""Table 1: prefetch accuracy and timeliness vs. prefetch-distance."""

from repro.experiments import table1


def test_table1_accuracy_and_timeliness(run_experiment):
    result = run_experiment(table1)
    rows = {row[0]: row for row in result.rows}
    # Shape assertions against the paper's Table 1.
    ipc = {label: row[1] for label, row in rows.items()}
    accuracy = {label: row[2] for label, row in rows.items()}
    late = {label: row[3] for label, row in rows.items()}
    # Short distances are accurate but late; mid distances accurate and
    # timely; beyond-trip-count distances lose accuracy.
    assert accuracy["Dist-1"] > 0.5
    assert late["Dist-1"] > 0.5
    assert accuracy["Dist-64"] > 0.5
    assert late["Dist-64"] < 0.1
    assert accuracy["Dist-1024"] < 0.2
    # IPC ordering: the timely distance wins.
    assert ipc["Dist-64"] > ipc["Dist-1"] > ipc["None"]
    assert ipc["Dist-64"] > ipc["Dist-1024"]
