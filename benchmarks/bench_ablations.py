"""Ablation benches for the design choices called out in DESIGN.md:
fill-buffer capacity, Eq-2's k constant, outer-site sweep width, and
minimal vs. full slice cloning.
"""

from __future__ import annotations

import dataclasses

from repro.core.aptget import AptGet, AptGetConfig
from repro.core.site import InjectionSite
from repro.experiments.runner import (
    profile_workload,
    run_ainsworth_jones,
    run_baseline,
    run_with_hints,
)
from repro.machine.config import MachineConfig, paper_like_memory
from repro.machine.machine import Machine
from repro.passes.ainsworth_jones import AinsworthJonesConfig, AinsworthJonesPass
from repro.profiling.collect import collect_profile
from repro.workloads.hashjoin import HashJoinWorkload
from repro.workloads.micro import IndirectMicrobenchmark


def _micro() -> IndirectMicrobenchmark:
    return IndirectMicrobenchmark(
        inner=256, complexity="low", total_iterations=30_000
    )


def _hj() -> HashJoinWorkload:
    return HashJoinWorkload(8, "NPO", probes=30_000)


def test_ablation_mshr_capacity(benchmark):
    """More fill buffers -> more overlap -> higher prefetched speedup."""

    def sweep():
        speedups = {}
        for entries in (4, 12, 48):
            memory = dataclasses.replace(paper_like_memory(), mshr_entries=entries)
            config = MachineConfig(memory=memory)
            base = run_baseline(_micro(), config=config)
            opt = run_ainsworth_jones(_micro(), distance=32, config=config)
            # re-run A&J under this config
            module, space = _micro().build()
            AinsworthJonesPass(AinsworthJonesConfig(distance=32)).run(module)
            result = Machine(module, space, config=config).run("main")
            speedups[entries] = base.cycles / result.counters.cycles
            del opt
        return speedups

    speedups = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nmshr ablation:", speedups)
    assert speedups[48] > speedups[4]


def test_ablation_eq2_k(benchmark):
    """Eq-2's k steers the site decision: tiny k forces inner, the paper
    default picks outer for short-trip hash-join buckets."""

    def sweep():
        sites = {}
        for k in (0.1, 5.0, 50.0):
            workload = _hj()
            module, space = workload.build()
            machine = Machine(module, space)
            profile = collect_profile(machine, workload.entry)
            hints = AptGet(AptGetConfig(k=k)).analyze(module, profile)
            sites[k] = {h.site.value for h in hints}
        return sites

    sites = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nEq-2 k ablation:", sites)
    assert "outer" not in sites[0.1]
    assert "outer" in sites[5.0]
    assert "outer" in sites[50.0]


def test_ablation_outer_sweep_width(benchmark):
    """Sweeping the inner IV in outer-site slices lifts coverage when the
    inner iterations touch distinct cache lines (indirect addresses, as
    in graph traversals / the microbenchmark's ``T[BO[i]+BI[j]]``)."""

    def _short_micro():
        return IndirectMicrobenchmark(
            inner=8, complexity="low", total_iterations=30_000
        )

    def sweep():
        base = run_baseline(_short_micro())
        _, hints = profile_workload(_short_micro())
        speedups = {}
        for width in (1, 4, 8):
            forced = []
            for hint in hints:
                clone = dataclasses.replace(hint, sweep=width)
                clone.site = InjectionSite.OUTER
                if clone.outer_distance is None:
                    clone.outer_distance = clone.distance
                forced.append(clone)
            from repro.core.hints import HintSet

            run = run_with_hints(_short_micro(), HintSet.from_hints(forced))
            speedups[width] = base.cycles / run.cycles
        return speedups

    speedups = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nouter sweep ablation:", speedups)
    assert speedups[8] > speedups[1]


def test_ablation_sweep_line_dedup(benchmark):
    """For *linear* inner addresses (hash-bucket scans) the sweep steps by
    whole cache lines: forcing a wide sweep on HJ8 must not emit 8x the
    prefetches (all 8 slots share one 64-byte line)."""

    def measure():
        _, hints = profile_workload(_hj())
        forced = []
        for hint in hints:
            clone = dataclasses.replace(hint, sweep=8)
            clone.site = InjectionSite.OUTER
            if clone.outer_distance is None:
                clone.outer_distance = clone.distance
            forced.append(clone)
        from repro.core.hints import HintSet

        run = run_with_hints(_hj(), HintSet.from_hints(forced))
        assert run.report is not None
        return max(
            entry["prefetches"] for entry in run.report.injected
        )

    prefetches = benchmark.pedantic(measure, iterations=1, rounds=1)
    print("\nsweep line-dedup: prefetches per site =", prefetches)
    assert prefetches == 1  # one line per 8-slot bucket


def test_ablation_minimal_clone_overhead(benchmark):
    """APT-GET's minimal slice cloning adds fewer instructions than the
    baseline's full cloning (one source of Fig 11's gap)."""

    def measure():
        base = run_baseline(_micro())
        base_instructions = base.result.counters.instructions
        _, hints = profile_workload(_micro())
        apt = run_with_hints(_micro(), hints)
        module, space = _micro().build()
        AinsworthJonesPass(AinsworthJonesConfig(distance=32)).run(module)
        aj = Machine(module, space).run("main")
        return (
            apt.result.counters.instructions / base_instructions,
            aj.counters.instructions / base_instructions,
        )

    apt_overhead, aj_overhead = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    print(f"\nclone ablation: apt={apt_overhead:.3f} aj={aj_overhead:.3f}")
    assert apt_overhead <= aj_overhead


def test_ablation_engine_parity_throughput(benchmark):
    """Both engines agree bit-for-bit; the translator is much faster."""
    import time

    workload = IndirectMicrobenchmark(
        inner=64, complexity="low", total_iterations=10_000,
        target_elems=1 << 18,
    )

    def measure():
        timings = {}
        counters = {}
        for engine in ("interpret", "translate"):
            module, space = workload.build()
            machine = Machine(module, space, engine=engine)
            start = time.perf_counter()
            result = machine.run("main")
            timings[engine] = time.perf_counter() - start
            counters[engine] = result.counters.as_dict()
        assert counters["interpret"] == counters["translate"]
        return timings

    timings = benchmark.pedantic(measure, iterations=1, rounds=1)
    print(
        f"\nengine ablation: interpret={timings['interpret']:.2f}s "
        f"translate={timings['translate']:.2f}s "
        f"({timings['interpret'] / timings['translate']:.1f}x)"
    )
    assert timings["translate"] < timings["interpret"]


def test_ablation_hw_prefetcher_interplay(benchmark):
    """Paper §4.4 leaves HW/SW prefetch interplay to future work; this
    ablation measures it: APT-GET's gains persist (and grow) when the
    hardware prefetchers are disabled, because its targets are the
    indirect loads hardware cannot cover anyway."""

    def sweep():
        from repro.core.aptget import AptGet
        from repro.passes.aptget_pass import AptGetPass

        speedups = {}
        for hw_on in (True, False):
            memory = dataclasses.replace(
                paper_like_memory(),
                stride_prefetcher=hw_on,
                next_line_prefetcher=hw_on,
            )
            config = MachineConfig(memory=memory)
            base = run_baseline(_micro(), config=config)
            workload = _micro()
            module, space = workload.build()
            machine = Machine(module, space, config=config)
            profile = collect_profile(machine, workload.entry)
            hints = AptGet().analyze(module, profile)
            module2, space2 = _micro().build()
            AptGetPass(hints).run(module2)
            result = Machine(module2, space2, config=config).run("main")
            speedups[hw_on] = base.cycles / result.counters.cycles
        return speedups

    speedups = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nhw-prefetcher interplay:", speedups)
    # APT-GET helps in both worlds.
    assert speedups[True] > 1.2
    assert speedups[False] > 1.2
