"""Figure 10: inner vs. outer prefetch-injection site."""

from repro.experiments import fig10


def test_fig10_injection_site(run_experiment):
    result = run_experiment(fig10)
    inner = result.column("inner speedup")
    outer = result.column("outer speedup")
    # Paper shape: for most short-trip-count nested workloads the outer
    # site wins and the inner site is ineffective or harmful.
    wins_outer = sum(1 for i, o in zip(inner, outer) if o > i)
    assert wins_outer >= len(inner) // 2
    assert max(outer) > 1.2
