"""Figure 7: LLC MPKI reduction."""

from repro.experiments import fig7


def test_fig7_mpki_reduction(run_experiment):
    result = run_experiment(fig7)
    # Paper shape: APT-GET removes more misses than A&J on average
    # (65.4% vs 48.3%).
    assert result.summary["avg_reduction_apt_get"] > 0.3
    assert (
        result.summary["avg_reduction_apt_get"]
        > result.summary["avg_reduction_aj"]
    )
