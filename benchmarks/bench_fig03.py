"""Figure 3: annotated LBR snapshot of a nested loop (live data)."""

from repro.experiments import fig3


def test_fig3_lbr_schematic(run_experiment):
    result = run_experiment(fig3)
    kinds = [row[4] for row in result.rows]
    assert "inner latch" in kinds and "outer latch" in kinds
    # HJ4's bucket scan: trip counts near 4, iteration latencies sane.
    assert 2.0 <= result.summary["avg_trip_count"] <= 6.0
    assert result.summary["avg_inner_iteration_latency"] > 0
    assert result.summary["entries"] <= 32
