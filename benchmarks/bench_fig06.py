"""Figure 6: headline speedups — APT-GET vs Ainsworth & Jones."""

from repro.experiments import fig6


def test_fig6_headline_speedups(run_experiment):
    result = run_experiment(fig6)
    # Paper shape: APT-GET clearly beats both the baseline and A&J in
    # geomean, with large best cases.
    assert result.summary["geomean_apt_get"] > 1.1
    assert result.summary["geomean_apt_get"] > result.summary["geomean_aj"]
    assert result.summary["max_apt_get"] > 1.5
    # APT-GET improves (or at worst roughly matches) the baseline for
    # nearly every workload (paper: all but CG).
    apt = result.column("APT-GET")
    assert sum(1 for s in apt if s >= 0.97) >= len(apt) - 1
