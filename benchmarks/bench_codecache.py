"""Persistent AOT code-cache benchmark: cold codegen vs warm load.

Times the compile phase of the pure-codegen engines two ways on one
workload:

* **cold** — the code cache force-disabled (``code_cache="off"``): the
  turbo engine runs superblock discovery + per-superblock codegen +
  ``compile()``, the translate engine runs whole-function translation;
* **warm** — a fresh :class:`~repro.machine.machine.Machine` pointed at
  a pre-populated cache directory: the marshaled code objects are
  loaded, validated and rebound instead of regenerated.

Both sides go through ``Machine._compile`` — the exact load-or-compile
path production runs take — and the measured phase is compile-only (the
ladder a warm service/agent skips); execution cost is identical on both
sides by construction.  Before timing, a full cold run and a full warm
run of the same program are compared for bit-identity (value + the full
PMU counter vector): a code cache that changed results would make any
speedup meaningless.  The warm side must also be a *real* cache hit —
zero misses, zero invalidations — so the benchmark can never silently
measure a recompile.

Standalone use (writes ``BENCH_codecache.json`` next to this file)::

    PYTHONPATH=src python benchmarks/bench_codecache.py [--scale tiny]

or as a bench test::

    pytest benchmarks/bench_codecache.py --benchmark-only

See docs/PERFORMANCE.md for how to read the emitted JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.machine import Machine
from repro.machine import codecache
from repro.machine.config import MachineConfig
from repro.workloads.registry import make_workload

#: A ladder of workloads, compiled back to back, so the measured phase
#: is tens of milliseconds instead of one ~4ms compile — the per-call
#: noise floor would otherwise dominate a single-workload probe.
DEFAULT_WORKLOADS = ("BFS-tiny", "Graph500", "BC-12K-d8", "PR-WG", "CG")

#: The engines with a serializable compiled form (see CACHEABLE_ENGINES).
ENGINES = ("turbo", "translate")

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_codecache.json"


def _build(workload: str, scale: str):
    instance = make_workload(workload, scale)
    module, space = instance.build()
    return module, space, instance.entry


def _ladder_seconds(programs, config, engine: str) -> float:
    """Wall seconds to compile every program's entry, fresh Machines."""
    total = 0.0
    for module, space, entry in programs:
        machine = Machine(module, space, config=config, engine=engine)
        start = time.perf_counter()
        machine._compile(entry)
        total += time.perf_counter() - start
    return total


def _signature(module, space, config, entry: str, engine: str) -> dict:
    result = Machine(module, space, config=config, engine=engine).run(entry)
    return {"value": result.value, **result.counters.as_dict()}


def measure_codecache(
    workloads: tuple = DEFAULT_WORKLOADS,
    scale: str = "tiny",
    reps: int = 3,
) -> dict:
    """Cold-vs-warm compile ladder for every cacheable engine.

    Returns ``{"cold_s": {engine: s}, "warm_s": {engine: s}, "speedup":
    {engine: ratio}, ...}`` where each time is the best of ``reps``
    over the whole workload ladder.
    """
    programs = [_build(name, scale) for name in workloads]
    base = MachineConfig()
    cold_config = replace(base, code_cache="off")

    cold_s: dict[str, float] = {}
    warm_s: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-codecache-") as tmp:
        try:
            warm_config = replace(base, code_cache=tmp)
            cache = codecache.resolve(tmp)
            for engine in ENGINES:
                # Bit-identity first, on the ladder's first workload: a
                # fresh-compile run and a cached-load run must agree on
                # everything the PMU can see.  (Runs mutate workload
                # data segments, so each gets a fresh build.)
                workload = workloads[0]
                module_a, space_a, entry = _build(workload, scale)
                fresh = _signature(module_a, space_a, cold_config, entry,
                                   engine)
                module_b, space_b, _ = _build(workload, scale)
                _signature(module_b, space_b, warm_config, entry, engine)
                module_c, space_c, _ = _build(workload, scale)
                hits = cache.hits
                cached = _signature(module_c, space_c, warm_config, entry,
                                    engine)
                if cached != fresh:
                    raise AssertionError(
                        f"{workload}/{engine}: cached-load run is not "
                        "bit-identical with the fresh-compile run"
                    )
                if cache.hits == hits or cache.invalidated:
                    raise AssertionError(
                        f"{workload}/{engine}: warm run was not a clean "
                        "cache hit (the benchmark would measure a "
                        "recompile)"
                    )

                # Populate the cache for every ladder rung (untimed),
                # then time cold vs warm ladders.
                _ladder_seconds(programs, warm_config, engine)
                cold = warm = float("inf")
                for _ in range(reps):
                    cold = min(cold, _ladder_seconds(
                        programs, cold_config, engine
                    ))
                    warm = min(warm, _ladder_seconds(
                        programs, warm_config, engine
                    ))
                cold_s[engine] = cold
                warm_s[engine] = warm
        finally:
            codecache.forget(tmp)

    return {
        "workloads": list(workloads),
        "scale": scale,
        "cold_s": {e: round(s, 6) for e, s in cold_s.items()},
        "warm_s": {e: round(s, 6) for e, s in warm_s.items()},
        "speedup": {
            e: round(cold_s[e] / max(warm_s[e], 1e-9), 3) for e in cold_s
        },
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_codecache_cold_vs_warm(benchmark):
    report = benchmark.pedantic(measure_codecache, iterations=1, rounds=1)
    print()
    print(json.dumps(report["speedup"], indent=2))
    # A warm turbo load skips superblock discovery, codegen and
    # compile(); well below a third of the cold build is the contract
    # the warm-agent story rests on.
    assert report["speedup"]["turbo"] >= 3.0, report["speedup"]


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        metavar="NAME",
    )
    parser.add_argument("--scale", default="tiny")
    parser.add_argument(
        "--reps", type=int, default=3, help="repetitions (min is kept)"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, metavar="PATH"
    )
    args = parser.parse_args()

    report = measure_codecache(
        tuple(args.workloads), args.scale, reps=args.reps
    )
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"wrote {args.output}")
    print(
        f"  {len(report['workloads'])}-workload ladder @"
        f"{report['scale']}: compile phase"
    )
    for engine in ENGINES:
        print(
            f"  {engine:9s} cold={report['cold_s'][engine]:.4f}s "
            f"warm={report['warm_s'][engine]:.4f}s "
            f"-> {report['speedup'][engine]:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
