"""Unit tests for the IRBuilder fluent API."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import IRError, Module
from repro.ir.opcodes import Opcode
from repro.ir.verifier import verify_module


@pytest.fixture()
def builder():
    module = Module("t")
    b = IRBuilder(module)
    b.function("f")
    return b


class TestEmission:
    def test_value_ops_autoname(self, builder):
        block = builder.block("entry")
        builder.at(block)
        r1 = builder.add(1, 2)
        r2 = builder.add(r1, 3)
        assert r1 != r2
        assert block.instructions[0].dst == r1

    def test_explicit_names(self, builder):
        builder.at(builder.block("entry"))
        reg = builder.add(1, 2, name="total")
        assert reg == "total"

    def test_all_binops_emit(self, builder):
        builder.at(builder.block("entry"))
        ops = [
            builder.add, builder.sub, builder.mul, builder.div,
            builder.rem, builder.and_, builder.or_, builder.xor,
            builder.shl, builder.shr, builder.min, builder.max,
            builder.eq, builder.ne, builder.lt, builder.le,
            builder.gt, builder.ge,
        ]
        for op in ops:
            op(4, 2)
        assert len(builder.current_block.instructions) == len(ops)

    def test_memory_ops(self, builder):
        builder.at(builder.block("entry"))
        addr = builder.gep(0x1000, 4, 8)
        builder.load(addr)
        builder.store(addr, 42)
        builder.prefetch(addr)
        ops = [i.op for i in builder.current_block.instructions]
        assert ops == [Opcode.GEP, Opcode.LOAD, Opcode.STORE, Opcode.PREFETCH]

    def test_emit_after_terminator_fails(self, builder):
        builder.at(builder.block("entry"))
        builder.ret(0)
        with pytest.raises(IRError):
            builder.add(1, 2)

    def test_phi_must_precede_body(self, builder):
        builder.at(builder.block("entry"))
        builder.add(1, 2)
        with pytest.raises(IRError):
            builder.phi([("entry", 0)])

    def test_add_incoming_searches_function(self, builder):
        entry, loop = builder.blocks("entry", "loop")
        builder.at(entry)
        builder.jmp(loop)
        builder.at(loop)
        i = builder.phi([(entry, 0)], name="i")
        i2 = builder.add(i, 1)
        cond = builder.lt(i2, 10)
        builder.br(cond, loop, loop)  # degenerate but structural
        # From a *different* position the phi is still found.
        builder.add_incoming(i, loop, i2)
        phi = loop.phis()[0]
        assert ("loop", i2) in phi.incomings

    def test_add_incoming_unknown_phi(self, builder):
        builder.at(builder.block("entry"))
        with pytest.raises(IRError):
            builder.add_incoming("nope", "entry", 0)

    def test_no_block_positioned(self, builder):
        with pytest.raises(IRError):
            builder.add(1, 2)


class TestWholePrograms:
    def test_docstring_example_verifies(self):
        module = Module("demo")
        b = IRBuilder(module)
        b.function("sum_to_n", params=["n"])
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry.name, 0)], name="i")
        acc = b.phi([(entry.name, 0)], name="acc")
        acc2 = b.add(acc, i)
        i2 = b.add(i, 1)
        b.add_incoming(i, loop.name, i2)
        b.add_incoming(acc, loop.name, acc2)
        cond = b.lt(i2, "n")
        b.br(cond, loop, done)
        b.at(done)
        b.ret(acc2)
        module.finalize()
        verify_module(module)

    def test_second_function_resets_counter(self):
        module = Module("two")
        b = IRBuilder(module)
        b.function("f1")
        b.at(b.block("entry"))
        r1 = b.add(1, 2)
        b.ret(r1)
        b.function("f2")
        b.at(b.block("entry"))
        r2 = b.add(3, 4)
        b.ret(r2)
        assert r1 == r2  # auto-names restart per function
        module.finalize()
        verify_module(module)
