"""Every ``tests/corpus/`` case replays as an ordinary regression test.

Corpus cases are shrunk former fuzzer failures plus seeded
construct-coverage programs; each must pass the *full* differential
oracle (all four engines — turbo included — x tracing on/off x every
scheme).  See docs/TESTING.md for the add/prune workflow.
"""

from __future__ import annotations

import json

import pytest

from repro.qa.corpus import default_corpus_dir, iter_cases, load_case, save_case
from repro.qa.generate import generate_spec
from repro.qa.oracle import check_program

CASES = list(iter_cases())


def test_corpus_is_not_empty():
    assert CASES, f"no corpus cases under {default_corpus_dir()}"


@pytest.mark.parametrize(
    "name,case", CASES, ids=[name for name, _ in CASES]
)
def test_corpus_case_passes_full_oracle(name, case):
    check_program(case["spec"])


def test_corpus_round_trip(tmp_path):
    spec = generate_spec(9)
    path = save_case(spec, corpus_dir=tmp_path, note="round-trip")
    case = load_case(path)
    assert case["spec"] == spec
    assert case["note"] == "round-trip"
    assert [n for n, _ in iter_cases(tmp_path)] == [case["name"]]


@pytest.mark.parametrize(
    "content, message",
    [
        ("not json", "not valid JSON"),
        ("[]", "schema"),
        ('{"schema": 99}', "schema"),
        ('{"schema": 1, "spec": {"schema": 1}}', "bad spec"),
    ],
)
def test_load_case_rejects_malformed_files(tmp_path, content, message):
    path = tmp_path / "broken.json"
    path.write_text(content)
    with pytest.raises(ValueError, match=message):
        load_case(path)


def test_corpus_files_record_provenance():
    for name, case in CASES:
        assert case["note"], f"{name} has no provenance note"
        assert "failure" in case  # null for seeded coverage cases


def test_corpus_files_are_canonical_json():
    for path in sorted(default_corpus_dir().glob("*.json")):
        raw = path.read_text()
        case = json.loads(raw)
        assert raw == json.dumps(case, indent=2, sort_keys=True) + "\n", (
            f"{path.name} is not canonically formatted; rewrite it with "
            "repro.qa.corpus.save_case"
        )
