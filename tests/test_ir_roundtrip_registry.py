"""Golden round-trip: print -> parse -> re-print is a fixed point for
every registry workload.

The printer is the IR's serialization format (disasm output, golden
files, the parser's input), so the pair must be lossless over every
program the suite actually builds — including after a prefetch pass
rewrites the CFG.
"""

from __future__ import annotations

import pytest

from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.workloads.registry import SUITE, TINY_SUITE, make_workload

#: Every registry workload at its cheapest tier (tiny variants where
#: they exist, the suite's own sizes otherwise) — cost is in *running*
#: programs, and this test only builds them.
_ALL = sorted(set(SUITE) | set(TINY_SUITE))


def _build(name: str):
    scale = "tiny" if name in TINY_SUITE else "small"
    module, _ = make_workload(name, scale).build()
    return module


@pytest.mark.parametrize("name", _ALL)
def test_print_parse_reprint_fixed_point(name):
    module = _build(name)
    text = format_module(module)
    reparsed = parse_module(text)
    assert format_module(reparsed) == text


@pytest.mark.parametrize("name", _ALL)
def test_reparsed_module_verifies_and_matches_structure(name):
    module = _build(name)
    reparsed = parse_module(format_module(module))
    verify_module(reparsed, strict=True)
    assert sorted(reparsed.functions) == sorted(module.functions)
    for fname, function in module.functions.items():
        other = reparsed.functions[fname]
        assert [b.name for b in function.blocks] == [
            b.name for b in other.blocks
        ]
        assert [
            len(b.instructions) for b in function.blocks
        ] == [len(b.instructions) for b in other.blocks]


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_fixed_point_survives_prefetch_pass(name):
    module = _build(name)
    AinsworthJonesPass(AinsworthJonesConfig(distance=4)).run(module)
    text = format_module(module)
    assert format_module(parse_module(text)) == text
