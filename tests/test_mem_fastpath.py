"""Property tests for the stacked L1/L2/LLC demand fast path.

The fast path keeps no state of its own — its per-level views
structurally share the caches' set dicts — so the single invariant that
matters is: after *any* interleaving of demand loads, stores, software
prefetches, drains, and hardware-prefetch fills, the views must equal a
fresh structural scan of the hierarchy (same lines, same LRU order,
same masks).  ``MemoryFastPath.scan_consistent`` performs that scan;
these tests drive every line-removal path through
``invalidate_line`` — LLC capacity evictions, hardware-prefetch fills
displacing a victim, and store write-allocates — and check the
invariant continuously.
"""

from __future__ import annotations

import random

from repro.machine.pmu import Counters
from repro.mem.address import AddressSpace
from repro.mem.config import CacheConfig, MemoryConfig
from repro.mem.hierarchy import MemorySystem


def make_system(stride=False, next_line=False, mshr=8):
    """A deliberately tiny hierarchy: 8-line L1, 16-line L2, 32-line
    LLC over a 4096-line segment, so every burst of traffic forces
    evictions and inclusive back-invalidations."""
    space = AddressSpace()
    space.allocate("data", 1 << 15, elem_size=8)  # 256 KiB = 4096 lines
    counters = Counters()
    config = MemoryConfig(
        l1=CacheConfig("L1D", 512, 2, 2),
        l2=CacheConfig("L2", 1024, 2, 12),
        llc=CacheConfig("LLC", 2048, 4, 40),
        dram_latency=360,
        mshr_entries=mshr,
        stride_prefetcher=stride,
        next_line_prefetcher=next_line,
    )
    mem = MemorySystem(config, space, counters)
    return mem, mem.front(), space, counters


def addr(space: AddressSpace, index: int) -> int:
    return space.segment("data").address_of(index)


def assert_inclusive(front) -> None:
    """The views must show an inclusive hierarchy: every L1/L2-resident
    line is LLC-resident (back-invalidation keeps this true)."""
    views = front.view_lines()
    llc = set(views["llc"])
    assert set(views["l1"]) <= llc
    assert set(views["l2"]) <= llc


class TestRandomTraffic:
    def test_views_match_fresh_scan_under_random_traffic(self):
        """The workhorse property: a long seeded mix of every demand
        operation, checked against a structural scan throughout."""
        mem, front, space, counters = make_system(
            stride=True, next_line=True
        )
        rng = random.Random(1234)
        now = 0.0
        for step in range(4_000):
            index = rng.randrange(4096) * 8
            a = addr(space, index)
            op = rng.randrange(8)
            if op < 4:
                now += front.load(a, now, pc=100 + (index % 7))
            elif op < 6:
                now += front.store(a, now, pc=200)
            else:
                mem.prefetch(a, now, pc=300)
                now += 1
            if step % 97 == 0:
                assert front.scan_consistent(), f"diverged at step {step}"
                assert_inclusive(front)
        # Let every in-flight fill land, then scan one last time.
        mem.drain(now + 10_000)
        assert front.scan_consistent()
        assert mem.inflight() == 0
        assert counters.l1_hits > 0 and counters.llc_misses > 0

    def test_sequential_traffic_with_hw_prefetchers(self):
        """Striding loads keep both hardware prefetchers firing; their
        fills displace victims through invalidate_line."""
        mem, front, space, counters = make_system(
            stride=True, next_line=True
        )
        now = 0.0
        for i in range(512):
            now += front.load(addr(space, i * 8), now, pc=77)
            if i % 31 == 0:
                assert front.scan_consistent()
        assert counters.hw_prefetch_issued > 0
        assert front.scan_consistent()
        assert_inclusive(front)


class TestInvalidationPaths:
    def test_llc_capacity_eviction_back_invalidates(self):
        """Touching more distinct lines than the LLC holds forces
        capacity evictions; the victims must vanish from every view."""
        mem, front, space, counters = make_system()
        now = 0.0
        lines = 64  # 2x LLC capacity (32 lines)
        for i in range(lines):
            now += front.load(addr(space, i * 8), now, pc=5)
        views = front.view_lines()
        assert len(views["llc"]) == 32  # full, having evicted half
        first_line = addr(space, 0) >> 6
        assert first_line not in views["llc"]
        assert first_line not in views["l1"]
        assert first_line not in views["l2"]
        assert front.scan_consistent()
        assert_inclusive(front)

    def test_hw_prefetch_fill_displaces_victim(self):
        """A next-line prefetch fill evicts through the same path as a
        demand fill; the displaced victim leaves every view."""
        mem, front, space, counters = make_system(next_line=True)
        now = 0.0
        # Fill the LLC with far-away lines first.
        for i in range(2048, 2048 + 32):
            now += front.load(addr(space, i * 8), now, pc=5)
        assert len(front.view_lines()["llc"]) == 32
        # Misses issue next-line prefetches; once drained, their fills
        # must displace residents consistently.
        for i in range(16):
            now += front.load(addr(space, i * 8), now, pc=6)
        now += 10_000
        now += front.load(addr(space, 4000 * 8), now, pc=7)  # drains
        assert counters.hw_prefetch_issued > 0
        assert front.scan_consistent()
        assert_inclusive(front)

    def test_store_write_allocate_evicts_consistently(self):
        """Store misses write-allocate; the fills evict residents and
        the usefulness side table stays in sync."""
        mem, front, space, counters = make_system()
        now = 0.0
        for i in range(64):
            now += front.store(addr(space, i * 8), now, pc=9)
            if i % 13 == 0:
                assert front.scan_consistent()
        assert front.scan_consistent()
        assert_inclusive(front)

    def test_direct_invalidate_line_removes_everywhere(self):
        mem, front, space, counters = make_system()
        a = addr(space, 0)
        front.load(a, 0.0, pc=1)
        line = a >> 6
        views = front.view_lines()
        assert line in views["l1"] and line in views["llc"]
        front.invalidate_line(a)
        views = front.view_lines()
        assert line not in views["l1"]
        assert line not in views["l2"]
        assert line not in views["llc"]
        assert front.scan_consistent()


class TestDrainOrdering:
    def test_drain_fills_in_ready_order(self):
        """MSHR entries complete strictly in issue order (uniform DRAM
        latency at a monotone clock), and a partial drain leaves the
        next-ready bound on the first still-pending entry."""
        mem, front, space, counters = make_system(mshr=8)
        base = 1000
        for i in range(4):
            mem.prefetch(addr(space, (base + i) * 8), float(i * 10), pc=2)
        assert mem.inflight() == 4
        # DRAM latency is 400 total; at now=415 exactly the first two
        # fills (ready at 400 and 410) are due.
        front.load(addr(space, 0), 415.0, pc=3)
        assert mem.inflight() == 2
        assert mem._mshr_next_ready == 420.0
        assert front.scan_consistent()
        views = front.view_lines()
        resident = set(views["llc"])
        assert (addr(space, base * 8) >> 6) in resident
        assert (addr(space, (base + 1) * 8) >> 6) in resident
        assert (addr(space, (base + 3) * 8) >> 6) not in resident
        # Far in the future everything lands and the bound resets.
        front.load(addr(space, 8), 100_000.0, pc=3)
        assert mem.inflight() == 0
        assert mem._mshr_next_ready == float("inf")
        assert front.scan_consistent()

    def test_fastpath_and_slow_path_share_state(self):
        """Interleaving slow-path and fast-path calls on one system
        cannot desynchronize the views (they share the set dicts)."""
        mem, front, space, counters = make_system()
        now = 0.0
        for i in range(48):
            if i % 2:
                now += front.load(addr(space, i * 8), now, pc=4)
            else:
                now += mem.load(addr(space, i * 8), now, pc=4)
        assert front.scan_consistent()
        assert_inclusive(front)
