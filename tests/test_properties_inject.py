"""Property-based semantic-preservation tests for the injection passes:
on randomized nested indirect loop programs, injecting prefetches (any
distance, any site, any sweep) must never change the computed result —
and the optimized program must still verify and satisfy PMU invariants."""

import random as _random

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import InjectionSite
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.opcodes import Opcode
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.machine.pmu import PerfStat
from repro.mem.address import AddressSpace
from repro.passes.ainsworth_jones import AinsworthJonesConfig, AinsworthJonesPass
from repro.passes.aptget_pass import AptGetPass

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def nested_program(draw):
    outer = draw(st.integers(min_value=1, max_value=25))
    inner = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    offset_inner = draw(st.booleans())
    return outer, inner, seed, offset_inner


def build_nested(outer, inner, seed, offset_inner):
    """T[BO[i] + (BI[j] or BI[j + c])] with random data."""
    rng = _random.Random(seed)
    target_elems = 1 << 12
    half = target_elems // 2
    space = AddressSpace()
    bo = space.allocate(
        "BO", [rng.randrange(half) for _ in range(outer + 600)], elem_size=8
    )
    bi = space.allocate(
        "BI", [rng.randrange(half) for _ in range(inner + 600)], elem_size=8
    )
    t = space.allocate(
        "T", [rng.randrange(1 << 10) for _ in range(target_elems)], elem_size=8
    )

    module = Module("randnest")
    b = IRBuilder(module)
    b.function("main")
    entry, outer_h, inner_h, outer_latch, done = b.blocks(
        "entry", "outer_h", "inner_h", "outer_latch", "done"
    )
    b.at(entry)
    b.jmp(outer_h)
    b.at(outer_h)
    i = b.phi([(entry, 0)], name="i")
    acc_o = b.phi([(entry, 0)], name="acc.o")
    p_bo = b.gep(bo.base, i, 8, name="p.bo")
    b.jmp(inner_h)
    b.at(inner_h)
    j = b.phi([(outer_h, 0)], name="j")
    acc = b.phi([(outer_h, acc_o)], name="acc")
    bo_v = b.load(p_bo, name="bo.v")
    index_reg = b.add(j, 3, name="j.off") if offset_inner else j
    p_bi = b.gep(bi.base, index_reg, 8, name="p.bi")
    bi_v = b.load(p_bi, name="bi.v")
    idx = b.add(bo_v, bi_v, name="idx")
    p_t = b.gep(t.base, idx, 8, name="p.t")
    value = b.load(p_t, name="t.v")
    acc2 = b.add(acc, value, name="acc2")
    j2 = b.add(j, 1, name="j2")
    b.add_incoming(j, inner_h, j2)
    b.add_incoming(acc, inner_h, acc2)
    more = b.lt(j2, inner, name="more")
    b.br(more, inner_h, outer_latch)
    b.at(outer_latch)
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, outer_latch, i2)
    b.add_incoming(acc_o, outer_latch, acc2)
    more_o = b.lt(i2, outer, name="more.o")
    b.br(more_o, outer_h, done)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    verify_module(module)
    return module, space


def target_pc(module):
    return next(
        inst.pc
        for inst in module.function("main").instructions()
        if inst.op is Opcode.LOAD and inst.dst == "t.v"
    )


@SLOW
@given(nested_program())
def test_aj_injection_preserves_semantics(program):
    outer, inner, seed, offset_inner = program
    base_module, base_space = build_nested(outer, inner, seed, offset_inner)
    expected = Machine(base_module, base_space).run("main").value

    module, space = build_nested(outer, inner, seed, offset_inner)
    AinsworthJonesPass(AinsworthJonesConfig(distance=5)).run(module)
    verify_module(module)
    result = Machine(module, space).run("main")
    assert result.value == expected
    assert PerfStat(result.counters).check_invariants() == []


@SLOW
@given(
    nested_program(),
    st.integers(min_value=1, max_value=256),
    st.sampled_from([InjectionSite.INNER, InjectionSite.OUTER]),
    st.integers(min_value=1, max_value=8),
)
def test_apt_injection_preserves_semantics(program, distance, site, sweep):
    outer, inner, seed, offset_inner = program
    base_module, base_space = build_nested(outer, inner, seed, offset_inner)
    expected = Machine(base_module, base_space).run("main").value

    module, space = build_nested(outer, inner, seed, offset_inner)
    hints = HintSet.from_hints(
        [
            PrefetchHint(
                load_pc=target_pc(module),
                function="main",
                distance=distance,
                site=site,
                outer_distance=distance,
                sweep=sweep,
            )
        ]
    )
    report = AptGetPass(hints).run(module)
    assert report.injection_count == 1
    verify_module(module)
    result = Machine(module, space).run("main")
    assert result.value == expected
    assert PerfStat(result.counters).check_invariants() == []
