"""v1 payloads over the HTTP boundary: every request/result dataclass
round-trips through a live server, byte-identical with direct execute().

The server runs with an **in-thread** agent (no subprocess) so the test
is fast and deterministic; the cross-*process* drill lives in
``scripts/ci_queue_check.py``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro.api as api
from repro.service.api import TuningService
from repro.serve.agent import AgentWorker
from repro.serve.httpd import ServeHTTPServer
from repro.serve.queue import JobQueue

WORKLOAD = "micro-tiny"
SCALE = "tiny"


# ----------------------------------------------------------------------
# One live server + one in-thread agent for the whole module.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served(tmp_path_factory):
    queue_dir = tmp_path_factory.mktemp("serve-http")
    queue = JobQueue(queue_dir, lease=30.0, max_depth=64)
    key_service = TuningService(cache_dir=queue_dir / "cache")
    server = ServeHTTPServer(
        ("127.0.0.1", 0),
        queue,
        dedup_key_fn=lambda request: key_service.request_key(
            request
        ).digest(),
    )
    server_thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    server_thread.start()

    worker = AgentWorker(queue_dir, poll_interval=0.02)
    stop = threading.Event()
    agent_thread = threading.Thread(
        target=worker.run_forever, kwargs={"stop": stop}, daemon=True
    )
    agent_thread.start()

    base = f"http://{server.server_address[0]}:{server.server_address[1]}"
    try:
        yield base, queue
    finally:
        stop.set()
        agent_thread.join(timeout=10.0)
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=5.0)


def _post(base: str, payload: dict, query: str = ""):
    request = urllib.request.Request(
        f"{base}/v1/jobs{query}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def _delete(base: str, job_id: str):
    request = urllib.request.Request(
        f"{base}/v1/jobs/{job_id}", method="DELETE"
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def _get(base: str, path: str):
    with urllib.request.urlopen(f"{base}{path}") as response:
        return response.status, json.load(response)


def _await_result(base: str, job_id: str, timeout: float = 120.0) -> dict:
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job = _get(base, f"/v1/jobs/{job_id}")
        if job["state"] == "done":
            _, result = _get(base, f"/v1/results/{job_id}")
            return result
        if job["state"] in ("failed", "lost"):
            raise AssertionError(f"job ended {job['state']}: {job['error']}")
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not done after {timeout}s")


#: Every v1 request type, exercised end-to-end over HTTP.
REQUESTS = [
    api.ProfileRequest(workload=WORKLOAD, scale=SCALE),
    api.RunRequest(workload=WORKLOAD, scale=SCALE, scheme="baseline"),
    api.RunRequest(workload=WORKLOAD, scale=SCALE, scheme="aj", distance=8),
    api.RunRequest(workload=WORKLOAD, scale=SCALE, scheme="apt-get"),
    api.SiteReportRequest(workload=WORKLOAD, scale=SCALE),
    api.SuiteRequest(scale=SCALE, workloads=(WORKLOAD,)),
    api.SweepRequest(
        workload=WORKLOAD, scale=SCALE, schemes=("aj",), distances=(2, 4)
    ),
]


@pytest.mark.parametrize(
    "request_obj", REQUESTS, ids=lambda r: f"{type(r).__name__}"
    + (f"-{r.scheme}" if isinstance(r, api.RunRequest) else ""),
)
def test_http_round_trip_is_byte_identical(served, request_obj):
    """Submitting over HTTP and fetching the result must byte-match
    executing the same request directly against a fresh service."""
    base, _ = served
    status, submitted = _post(base, request_obj.to_payload())
    assert status in (200, 202)
    served_payload = _await_result(base, submitted["id"])

    # The wire payload rehydrates into the right dataclass...
    result = api.result_from_payload(served_payload)
    assert type(result).__name__ == type(request_obj).__name__.replace(
        "Request", "Result"
    )
    # ...and is byte-identical with an in-process execution.
    direct = api.execute(request_obj, service=TuningService())
    assert direct.to_json() == json.dumps(served_payload, sort_keys=True)


def test_duplicate_submission_dedups_over_http(served):
    base, _ = served
    payload = api.RunRequest(
        workload=WORKLOAD, scale=SCALE, scheme="baseline"
    ).to_payload()
    status1, first = _post(base, payload)
    status2, second = _post(base, payload)
    assert second["id"] == first["id"]
    assert second["deduped"]
    assert status2 == 200


def test_equivalent_requests_share_one_artifact_key(served):
    """Dedup keys come from the artifact cache keys, so two payloads
    that differ only in spelling (default vs explicit scale) collide."""
    base, _ = served
    implicit = api.RunRequest(workload=WORKLOAD, scale=SCALE)
    explicit = api.RunRequest(
        workload=WORKLOAD, scale=SCALE, scheme="baseline", distance=99
    )  # distance is ignored for non-aj schemes in the artifact key
    _, first = _post(base, implicit.to_payload())
    _, second = _post(base, explicit.to_payload())
    assert second["id"] == first["id"]


class TestHTTPErrors:
    def test_malformed_json_is_400(self, served):
        base, _ = served
        request = urllib.request.Request(
            f"{base}/v1/jobs", data=b"{nope", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_kind_is_400(self, served):
        base, _ = served
        request = urllib.request.Request(
            f"{base}/v1/jobs",
            data=json.dumps({"kind": "EvilRequest"}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        body = json.load(excinfo.value)
        assert "EvilRequest" in body["error"]

    def test_invalid_request_field_is_400(self, served):
        base, _ = served
        payload = {"kind": "RunRequest", "v": 1, "workload": WORKLOAD,
                   "scheme": "not-a-scheme"}
        request = urllib.request.Request(
            f"{base}/v1/jobs", data=json.dumps(payload).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, served):
        base, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/v1/jobs/j-nope")
        assert excinfo.value.code == 404

    def test_unknown_path_is_404(self, served):
        base, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/v1/nope")
        assert excinfo.value.code == 404

    def test_pending_result_is_409(self, tmp_path):
        # A queue with no agent: the result can never be ready.
        queue = JobQueue(tmp_path / "q")
        service = TuningService()
        server = ServeHTTPServer(
            ("127.0.0.1", 0), queue,
            dedup_key_fn=lambda r: service.request_key(r).digest(),
        )
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            base = (
                f"http://{server.server_address[0]}:"
                f"{server.server_address[1]}"
            )
            _, submitted = _post(
                base,
                api.RunRequest(
                    workload=WORKLOAD, scale=SCALE
                ).to_payload(),
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{base}/v1/results/{submitted['id']}"
                )
            assert excinfo.value.code == 409
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


@pytest.fixture()
def idle_server(tmp_path):
    """A live server with **no** agent: jobs stay queued, so priority
    and cancellation can be asserted without racing a worker."""
    queue = JobQueue(tmp_path / "q")
    service = TuningService()
    server = ServeHTTPServer(
        ("127.0.0.1", 0), queue,
        dedup_key_fn=lambda r: service.request_key(r).digest(),
    )
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    base = f"http://{server.server_address[0]}:{server.server_address[1]}"
    try:
        yield base, queue
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestPriorityAndCancelOverHTTP:
    PAYLOAD = api.RunRequest(workload=WORKLOAD, scale=SCALE).to_payload()

    def test_priority_query_param_is_recorded(self, idle_server):
        base, queue = idle_server
        _, submitted = _post(base, self.PAYLOAD, query="?priority=5")
        _, job = _get(base, f"/v1/jobs/{submitted['id']}")
        assert job["priority"] == 5
        assert queue.get(submitted["id"]).priority == 5

    def test_bad_priority_is_400(self, idle_server):
        base, _ = idle_server
        request = urllib.request.Request(
            f"{base}/v1/jobs?priority=soon",
            data=json.dumps(self.PAYLOAD).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "priority" in json.load(excinfo.value)["error"]

    def test_delete_cancels_queued_job(self, idle_server):
        base, _ = idle_server
        _, submitted = _post(base, self.PAYLOAD)
        status, body = _delete(base, submitted["id"])
        assert status == 200
        assert body["state"] == "cancelled"
        _, job = _get(base, f"/v1/jobs/{submitted['id']}")
        assert job["state"] == "cancelled"

    def test_delete_running_job_reports_cancelling(self, idle_server):
        base, queue = idle_server
        _, submitted = _post(base, self.PAYLOAD)
        job = queue.claim("a")
        queue.start(job.id, "a")
        status, body = _delete(base, submitted["id"])
        assert status == 200
        assert body["state"] == "cancelling"

    def test_delete_unknown_job_is_404(self, idle_server):
        base, _ = idle_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _delete(base, "j-nope")
        assert excinfo.value.code == 404

    def test_delete_terminal_job_is_409(self, idle_server):
        base, queue = idle_server
        _, submitted = _post(base, self.PAYLOAD)
        job = queue.claim("a")
        queue.complete(job.id, "a", {"v": 1})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _delete(base, submitted["id"])
        assert excinfo.value.code == 409
        assert "terminal" in json.load(excinfo.value)["error"]

    def test_cancelled_result_is_410(self, idle_server):
        base, _ = idle_server
        _, submitted = _post(base, self.PAYLOAD)
        _delete(base, submitted["id"])
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/v1/results/{submitted['id']}")
        assert excinfo.value.code == 410


def test_healthz_and_metrics(served):
    base, queue = served
    status, health = _get(base, "/healthz")
    assert status == 200
    assert health["ok"] is True
    assert "by_state" in health["queue"]

    with urllib.request.urlopen(f"{base}/metrics") as response:
        assert response.status == 200
        text = response.read().decode()
    assert "repro_queue_depth" in text
    assert 'repro_queue_jobs{state="done"}' in text
    # Queue counters surface with sanitized Prometheus names.
    assert "repro_serve_submitted_total" in text
