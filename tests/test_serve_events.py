"""The telemetry-facing HTTP surface: the ``/v1/jobs/<id>/events``
stream (terminal replay is byte-identical, live jobs stream chunked),
the structured access log, the Prometheus exposition's TYPE/quantile
lines, the v1 ``trace`` field over the wire, and the ``top``/
``timeline`` CLI views.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.error
import urllib.request

import pytest

import repro.api as api
from repro.obs.telemetry import (
    Telemetry,
    read_records,
    span_balance_problems,
    telemetry_dir,
)
from repro.obs.timeline import validate_chrome_trace
from repro.serve.agent import AgentWorker
from repro.serve.httpd import (
    METRICS_CONTENT_TYPE,
    ServeHTTPServer,
    render_metrics_text,
)
from repro.serve.queue import JobQueue
from repro.service.api import TuningService
from repro.service.metrics import MetricsRegistry

WORKLOAD = "micro-tiny"
SCALE = "tiny"


def start_server(queue_dir, queue, **kwargs):
    key_service = TuningService(cache_dir=queue_dir / "cache")
    server = ServeHTTPServer(
        ("127.0.0.1", 0),
        queue,
        dedup_key_fn=lambda request: key_service.request_key(
            request
        ).digest(),
        **kwargs,
    )
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    base = f"http://{server.server_address[0]}:{server.server_address[1]}"
    return server, thread, base


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """Live server + in-thread agent, telemetry and access log on."""
    queue_dir = tmp_path_factory.mktemp("serve-events")
    telemetry = Telemetry(telemetry_dir(queue_dir))
    # One registry for front end + agent: the in-process stand-in for
    # the controller's snapshot merge, so /metrics sees span histograms.
    metrics = MetricsRegistry()
    queue = JobQueue(
        queue_dir, lease=30.0, max_depth=64, telemetry=telemetry,
        metrics=metrics,
    )
    server, server_thread, base = start_server(
        queue_dir, queue,
        telemetry_dir=telemetry_dir(queue_dir), access_log=True,
    )
    worker = AgentWorker(queue_dir, poll_interval=0.02, metrics=metrics)
    stop = threading.Event()
    agent_thread = threading.Thread(
        target=worker.run_forever, kwargs={"stop": stop}, daemon=True
    )
    agent_thread.start()
    try:
        yield base, queue, queue_dir
    finally:
        stop.set()
        agent_thread.join(timeout=10.0)
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=5.0)


def _post(base, payload):
    request = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def _await_done(base, job_id, timeout=120.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(f"{base}/v1/jobs/{job_id}") as resp:
            job = json.load(resp)
        if job["state"] == "done":
            return job
        if job["state"] in ("failed", "lost"):
            raise AssertionError(f"job ended {job['state']}: {job['error']}")
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not done after {timeout}s")


_DISTINCT = iter(range(8, 10_000))


def _finished_job(base):
    """Submit a unique job (distinct aj distance -> distinct dedup key)
    and wait for it; repeated identical payloads would dedup onto one
    job and append ``dedup`` points after its root span closed."""
    request = api.RunRequest(
        workload=WORKLOAD, scale=SCALE, scheme="aj",
        distance=next(_DISTINCT),
    )
    _, submitted = _post(base, request.to_payload())
    _await_done(base, submitted["id"])
    return submitted


# ----------------------------------------------------------------------
# Terminal replay
# ----------------------------------------------------------------------
class TestTerminalReplay:
    def test_replay_is_byte_identical_across_reads(self, served):
        base, _, _ = served
        submitted = _finished_job(base)
        url = f"{base}/v1/jobs/{submitted['id']}/events"
        with urllib.request.urlopen(url) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == (
                "application/x-ndjson"
            )
            # Fixed-length response, not chunked: replayable.
            assert response.headers["Content-Length"] is not None
            first = response.read()
        with urllib.request.urlopen(url) as response:
            second = response.read()
        assert first == second
        assert first

    def test_replay_matches_journal_and_balances(self, served):
        base, _, queue_dir = served
        submitted = _finished_job(base)
        url = f"{base}/v1/jobs/{submitted['id']}/events"
        with urllib.request.urlopen(url) as response:
            records = [
                json.loads(line)
                for line in response.read().decode().splitlines()
            ]
        assert span_balance_problems(records) == []
        names = [r["name"] for r in records]
        assert names[0] == "job"
        assert names[-1] == "job"
        assert "execute" in names
        assert "engine.run" in names
        # The stream serves exactly the job's journal slice.
        journal = read_records(
            telemetry_dir(queue_dir), job=submitted["id"]
        )
        assert records == journal
        # Every record carries the job's one trace id.
        assert {r["trace"] for r in records} == {submitted["trace"]}

    def test_trace_field_round_trips_over_the_wire(self, served):
        base, _, _ = served
        request = api.SiteReportRequest(
            workload=WORKLOAD, scale=SCALE, trace="tr-caller-supplied"
        )
        _, submitted = _post(base, request.to_payload())
        assert submitted["trace"] == "tr-caller-supplied"
        job = _await_done(base, submitted["id"])
        assert job["trace"] == "tr-caller-supplied"


# ----------------------------------------------------------------------
# Live streaming
# ----------------------------------------------------------------------
class TestLiveStream:
    def test_queued_job_streams_chunked_until_timeout(self, tmp_path):
        # No agent: the job never leaves ``queued``; the stream must
        # deliver the submit-time spans and end at the timeout.
        telemetry = Telemetry(telemetry_dir(tmp_path))
        queue = JobQueue(tmp_path, telemetry=telemetry)
        server, thread, base = start_server(
            tmp_path, queue, telemetry_dir=telemetry_dir(tmp_path)
        )
        try:
            _, submitted = _post(
                base,
                api.RunRequest(
                    workload=WORKLOAD, scale=SCALE
                ).to_payload(),
            )
            url = (
                f"{base}/v1/jobs/{submitted['id']}/events?timeout=0.5"
            )
            with urllib.request.urlopen(url, timeout=10.0) as response:
                assert response.headers["Transfer-Encoding"] == "chunked"
                body = response.read().decode()
            records = [
                json.loads(line) for line in body.splitlines()
            ]
            names = [(r["ev"], r["name"]) for r in records]
            assert ("open", "job") in names
            assert ("open", "queued") in names
            # In-flight: opens may be pending, but never close-first.
            assert span_balance_problems(
                records, require_closed=False
            ) == []
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_bad_timeout_param_falls_back(self, served):
        base, _, _ = served
        submitted = _finished_job(base)
        url = (
            f"{base}/v1/jobs/{submitted['id']}/events?timeout=bogus"
        )
        with urllib.request.urlopen(url) as response:
            assert response.status == 200


# ----------------------------------------------------------------------
# Error surface
# ----------------------------------------------------------------------
class TestEventsErrors:
    def test_unknown_job_is_404(self, served):
        base, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/v1/jobs/j-nope/events")
        assert excinfo.value.code == 404

    def test_telemetry_disabled_is_404(self, tmp_path):
        queue = JobQueue(tmp_path)
        server, thread, base = start_server(tmp_path, queue)
        try:
            _, submitted = _post(
                base,
                api.RunRequest(
                    workload=WORKLOAD, scale=SCALE
                ).to_payload(),
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{base}/v1/jobs/{submitted['id']}/events"
                )
            assert excinfo.value.code == 404
            body = json.load(excinfo.value)
            assert "telemetry" in body["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Access log
# ----------------------------------------------------------------------
def test_access_log_emits_structured_json(served, caplog):
    base, _, _ = served
    with caplog.at_level(logging.INFO, logger="repro.serve.http"):
        with urllib.request.urlopen(f"{base}/healthz") as response:
            response.read()
    lines = [
        json.loads(r.message)
        for r in caplog.records
        if r.name == "repro.serve.http"
        and r.message.startswith("{")
    ]
    health = [l for l in lines if l["path"] == "/healthz"]
    assert health, f"no /healthz access line in {lines}"
    entry = health[0]
    assert entry["method"] == "GET"
    assert entry["status"] == 200
    assert entry["duration_ms"] >= 0.0


# ----------------------------------------------------------------------
# Metrics exposition
# ----------------------------------------------------------------------
class TestMetricsText:
    def test_content_type_declares_version(self, served):
        base, _, _ = served
        with urllib.request.urlopen(f"{base}/metrics") as response:
            assert response.headers["Content-Type"] == (
                METRICS_CONTENT_TYPE
            )
            assert "version=0.0.4" in response.headers["Content-Type"]

    def test_families_have_type_lines_and_quantiles(self, served):
        base, _, _ = served
        _finished_job(base)
        with urllib.request.urlopen(f"{base}/metrics") as response:
            text = response.read().decode()
        assert "# TYPE repro_queue_jobs gauge" in text
        assert "# TYPE repro_serve_submitted_total counter" in text
        # Every histogram family is typed and carries p50/p90/p99.
        assert "# TYPE repro_serve_span_job_seconds histogram" in text
        for label in ("p50", "p90", "p99"):
            assert f"repro_serve_span_job_seconds_{label} " in text
            assert (
                f"# TYPE repro_serve_span_job_seconds_{label} gauge"
                in text
            )

    def test_render_quantiles_interpolate(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "unit.seconds", (0.1, 1.0, 10.0)
        )
        for value in (0.5, 0.5, 0.5, 5.0):
            hist.observe(value)
        text = render_metrics_text(registry)
        assert "# TYPE repro_unit_seconds histogram" in text
        p50 = [
            line for line in text.splitlines()
            if line.startswith("repro_unit_seconds_p50 ")
        ]
        assert p50, text
        value = float(p50[0].split()[1])
        # Median falls inside the (0.1, 1.0] bucket.
        assert 0.1 <= value <= 1.0

    def test_empty_histogram_renders_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("unit.seconds", (0.1, 1.0))
        text = render_metrics_text(registry)
        assert "repro_unit_seconds_p50" not in text


# ----------------------------------------------------------------------
# CLI: top + timeline
# ----------------------------------------------------------------------
class TestCLIViews:
    def test_top_renders_queue_and_percentiles(self, served, capsys):
        from repro.cli import main

        base, _, queue_dir = served
        _finished_job(base)
        code = main(
            ["top", "--queue-dir", str(queue_dir), "--iterations", "1",
             "--no-clear"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repro.serve top" in out
        assert "done=" in out
        assert "workers" in out
        assert "serve.span.job_seconds" in out
        assert "p99=" in out

    def test_timeline_exports_valid_merged_document(
        self, served, tmp_path, capsys
    ):
        from repro.cli import main

        base, _, queue_dir = served
        submitted = _finished_job(base)
        out_path = tmp_path / "merged.json"
        code = main(
            ["timeline", "--queue-dir", str(queue_dir),
             "--output", str(out_path), "--job", submitted["id"]]
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert validate_chrome_trace(document) == []
        assert "perfetto" in capsys.readouterr().out

    def test_timeline_empty_queue_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["timeline", "--queue-dir", str(tmp_path / "empty-q"),
             "--output", str(tmp_path / "out.json")]
        )
        assert code == 1
        assert "no telemetry records" in capsys.readouterr().err
