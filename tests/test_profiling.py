"""Tests for profile collection and the ExecutionProfile container."""

from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.profiling.profile import ExecutionProfile
from tests.conftest import build_indirect_loop


def make_profile(period=500):
    module, space, _ = build_indirect_loop(n=400)
    machine = Machine(module, space)
    profile = collect_profile(machine, period=period)
    return module, profile


class TestCollection:
    def test_profile_has_samples_and_misses(self):
        module, profile = make_profile()
        assert profile.lbr_samples
        assert profile.load_miss_counts
        assert profile.counters.instructions > 0

    def test_sampler_disabled_after_collection(self):
        module, space, _ = build_indirect_loop(n=100)
        machine = Machine(module, space)
        collect_profile(machine)
        assert machine.sampler is None
        # A later run does not grow the profile.
        machine.run("main")

    def test_delinquent_load_is_the_indirect_target(self):
        module, profile = make_profile()
        ranked = profile.delinquent_loads(top=1, min_count=4)
        assert ranked
        inst = module.instruction_at(ranked[0])
        assert inst.dst == "value"  # T[B[i]] target load

    def test_lbr_entries_are_loop_branches(self):
        module, profile = make_profile()
        latch_pc = module.function("main").block("loop").end_pc
        hits = sum(
            1
            for sample in profile.lbr_samples
            for entry in sample
            if entry[0] == latch_pc
        )
        assert hits > 0

    def test_samples_containing_filters(self):
        module, profile = make_profile()
        latch_pc = module.function("main").block("loop").end_pc
        assert profile.samples_containing(latch_pc)
        assert profile.samples_containing(0xDEAD) == []


class TestSerialization:
    def test_json_roundtrip(self):
        module, profile = make_profile()
        restored = ExecutionProfile.from_json(profile.to_json())
        assert restored.load_miss_counts == profile.load_miss_counts
        assert restored.load_miss_latency == profile.load_miss_latency
        assert len(restored.lbr_samples) == len(profile.lbr_samples)
        assert restored.lbr_samples[0][0][0] == profile.lbr_samples[0][0][0]

    def test_merge_accumulates(self):
        _, profile_a = make_profile()
        _, profile_b = make_profile()
        merged = profile_a.merge(profile_b)
        assert len(merged.lbr_samples) == len(profile_a.lbr_samples) + len(
            profile_b.lbr_samples
        )
        for pc, count in profile_a.load_miss_counts.items():
            assert merged.load_miss_counts[pc] >= count


class TestSamplingTransparency:
    def test_lbr_pebs_do_not_perturb_timing(self):
        """The sampled binary's simulated cycles are bit-identical to the
        unsampled run — LBR/PEBS are passive hardware (§4.10)."""
        from tests.conftest import build_indirect_loop

        module, space, _ = build_indirect_loop(n=500)
        plain = Machine(module, space).run("main")

        module2, space2, _ = build_indirect_loop(n=500)
        machine = Machine(module2, space2)
        machine.enable_profiling(period=100)
        sampled = machine.run("main")
        assert sampled.counters.cycles == plain.counters.cycles
        assert sampled.counters.instructions == plain.counters.instructions
        assert machine.sampler.samples  # and it did collect data
