"""Tests for the perf-report analog and the fig3/table experiments."""

from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.profiling.report import (
    format_profile_report,
    summarize_delinquent_loads,
    summarize_loops,
)
from repro.workloads.hashjoin import HashJoinWorkload


def make_profiled():
    workload = HashJoinWorkload(4, "NPO", table_entries=1 << 14, probes=5_000)
    module, space = workload.build()
    machine = Machine(module, space)
    profile = collect_profile(machine, workload.entry)
    return module, profile


class TestProfileReport:
    def test_delinquent_summaries(self):
        module, profile = make_profiled()
        summaries = summarize_delinquent_loads(module, profile)
        assert summaries
        top = summaries[0]
        assert top.function == "main"
        assert top.block == "inner_h"
        assert top.loop_header == "inner_h"
        assert top.loop_depth == 2
        assert 0 < top.share <= 1.0
        assert top.mean_latency > 40
        # Shares sum to <= 1 (top-N of the total).
        assert sum(s.share for s in summaries) <= 1.0 + 1e-9

    def test_loop_summaries(self):
        module, profile = make_profiled()
        summaries = summarize_loops(module, profile)
        by_header = {s.header: s for s in summaries}
        assert "inner_h" in by_header
        inner = by_header["inner_h"]
        assert inner.depth == 2
        assert inner.latency_p25 <= inner.latency_p50 <= inner.latency_p75
        assert inner.latency_max >= inner.latency_p75
        assert inner.avg_trip_count is not None
        assert 2.0 <= inner.avg_trip_count <= 6.0  # epb = 4

    def test_format_renders(self):
        module, profile = make_profiled()
        text = format_profile_report(module, profile)
        assert "delinquent loads" in text
        assert "inner_h" in text
        assert "%" in text


class TestCLIReport:
    def test_report_command(self, capsys):
        from repro.cli import main

        assert main(["report", "--workload", "HJ8-tiny", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "delinquent loads" in out
        assert "loops" in out


class TestFig3AndTables:
    def test_fig3_tiny(self):
        from repro.experiments import fig3

        result = fig3.run("tiny")
        kinds = {row[4] for row in result.rows}
        assert "inner latch" in kinds
        assert "outer latch" in kinds
        assert result.summary["avg_trip_count"] >= 2.0
        assert result.summary["avg_inner_iteration_latency"] > 0

    def test_table2(self):
        from repro.experiments import table2

        result = table2.run("tiny")
        assert result.summary["miss_latency_cycles"] == 400.0
        assert len(result.rows) >= 7

    def test_table3(self):
        from repro.experiments import table3

        result = table3.run("tiny")
        assert result.summary["applications"] == 15
        # Every app must expose at least one indirect-load candidate.
        assert all(row[3] >= 1 for row in result.rows)
        # Nested apps have depth >= 2.
        by_app = {row[0]: row for row in result.rows}
        assert by_app["HJ8-NPO"][2] >= 2
        assert by_app["randAccess"][2] == 1

    def test_table4(self):
        from repro.experiments import table4

        result = table4.run("tiny")
        assert len(result.rows) == 8
        assert result.summary["max_avg_degree_error"] < 0.1
