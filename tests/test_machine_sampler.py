"""Unit tests for the LBR/PEBS profile sampler."""

import pytest

from repro.machine.lbr import LastBranchRecord
from repro.machine.sampler import ProfileSampler


@pytest.fixture()
def lbr():
    lbr = LastBranchRecord(4)
    lbr.push((0x10, 0x20, 50))
    return lbr


class TestSnapshotting:
    def test_take_advances_next_at(self, lbr):
        sampler = ProfileSampler(lbr, period=100)
        assert sampler.next_at == 100
        nxt = sampler.take(150)
        assert nxt == 250
        assert len(sampler.samples) == 1

    def test_empty_lbr_produces_no_sample(self):
        sampler = ProfileSampler(LastBranchRecord(4), period=100)
        sampler.take(100)
        assert sampler.samples == []

    def test_custom_first_at(self, lbr):
        sampler = ProfileSampler(lbr, period=100, first_at=7)
        assert sampler.next_at == 7

    def test_bad_period(self, lbr):
        with pytest.raises(ValueError):
            ProfileSampler(lbr, period=0)


class TestPEBS:
    def test_record_load_accumulates(self, lbr):
        sampler = ProfileSampler(lbr, period=100)
        sampler.record_load(0x44, 400)
        sampler.record_load(0x44, 420)
        sampler.record_load(0x88, 50)
        assert sampler.load_miss_counts == {0x44: 2, 0x88: 1}
        assert sampler.load_miss_latency[0x44] == 820

    def test_delinquent_ranking_by_latency(self, lbr):
        sampler = ProfileSampler(lbr, period=100)
        for _ in range(10):
            sampler.record_load(0xA, 40)  # frequent but cheap
        for _ in range(8):
            sampler.record_load(0xB, 400)  # dominant contributor
        ranked = sampler.delinquent_loads(top=2, min_count=8)
        assert ranked == [0xB, 0xA]

    def test_min_count_filters_noise(self, lbr):
        sampler = ProfileSampler(lbr, period=100)
        sampler.record_load(0xC, 40000)  # single huge outlier
        for _ in range(8):
            sampler.record_load(0xD, 400)
        ranked = sampler.delinquent_loads(top=10, min_count=8)
        assert ranked == [0xD]

    def test_top_limits_results(self, lbr):
        sampler = ProfileSampler(lbr, period=100)
        for pc in range(20):
            for _ in range(8):
                sampler.record_load(pc, 400 + pc)
        assert len(sampler.delinquent_loads(top=5, min_count=1)) == 5
