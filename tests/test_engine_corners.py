"""Corner-case engine tests: PHI parallel-copy semantics (swap hazards),
empty-ish blocks, deep nesting, register-operand WORK, and cost-model
accounting details."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.machine.config import ENGINES, MachineConfig
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace


def run_both(module, make_space, function="main", args=()):
    results = []
    for engine in ENGINES:
        machine = Machine(module, make_space(), engine=engine)
        results.append(machine.run(function, args))
    a = results[0]
    for b in results[1:]:
        assert a.value == b.value
        assert a.counters.as_dict() == b.counters.as_dict()
    return a


class TestPhiSemantics:
    def test_swap_hazard_parallel_copy(self):
        """x, y = y, x via PHIs must not serialize into x=y; y=x."""
        module = Module("swap")
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        x = b.phi([(entry, 1)], name="x")
        y = b.phi([(entry, 2)], name="y")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        b.add_incoming(x, loop, y)  # swap!
        b.add_incoming(y, loop, x)
        c = b.lt(i2, 5, name="c")
        b.br(c, loop, done)
        b.at(done)
        combined = b.mul(x, 10, name="t")
        result = b.add(combined, y, name="r")
        b.ret(result)
        module.finalize()
        # i runs 0..4; the swap edge-copy executes only on the 4 taken
        # back-edges, so after an even number of swaps x=1, y=2 -> 12.
        run = run_both(module, AddressSpace)
        assert run.value == 12

    def test_rotation_of_three_phis(self):
        module = Module("rot")
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        a = b.phi([(entry, 1)], name="a")
        bb = b.phi([(entry, 2)], name="bb")
        cc = b.phi([(entry, 3)], name="cc")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        b.add_incoming(a, loop, bb)
        b.add_incoming(bb, loop, cc)
        b.add_incoming(cc, loop, a)
        cond = b.lt(i2, 3, name="cond")
        b.br(cond, loop, done)
        b.at(done)
        t1 = b.mul(a, 100, name="t1")
        t2 = b.mul(bb, 10, name="t2")
        t3 = b.add(t1, t2, name="t3")
        r = b.add(t3, cc, name="r")
        b.ret(r)
        module.finalize()
        # Two taken back-edges rotate (1,2,3)->(2,3,1)->(3,1,2) -> 312.
        run = run_both(module, AddressSpace)
        assert run.value == 312

    def test_phi_incoming_can_be_other_phi_previous_value(self):
        """A PHI whose incoming is another PHI reads the *pre-edge* value."""
        module = Module("chain")
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        fib_a = b.phi([(entry, 0)], name="fa")
        fib_b = b.phi([(entry, 1)], name="fb")
        fib_next = b.add(fib_a, fib_b, name="fn")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        b.add_incoming(fib_a, loop, fib_b)
        b.add_incoming(fib_b, loop, fib_next)
        c = b.lt(i2, 10, name="c")
        b.br(c, loop, done)
        b.at(done)
        b.ret(fib_next)
        module.finalize()
        run = run_both(module, AddressSpace)
        assert run.value == 89  # fib(11)


class TestStructuralCorners:
    def test_block_with_only_terminator(self):
        module = Module("thin")
        b = IRBuilder(module)
        b.function("main")
        entry, mid, done = b.blocks("entry", "mid", "done")
        b.at(entry)
        b.jmp(mid)
        b.at(mid)
        b.jmp(done)
        b.at(done)
        b.ret(42)
        module.finalize()
        run = run_both(module, AddressSpace)
        assert run.value == 42
        # entry jmp + mid jmp + ret = 3 instructions, 3 cycles.
        assert run.counters.instructions == 3
        assert run.counters.cycles == 3
        assert run.counters.taken_branches == 2

    def test_triple_nesting(self):
        module = Module("deep")
        b = IRBuilder(module)
        b.function("main")
        entry, l1_h, l2_h, l3_h, l2_latch, l1_latch, done = b.blocks(
            "entry", "l1_h", "l2_h", "l3_h", "l2_latch", "l1_latch", "done"
        )
        b.at(entry)
        b.jmp(l1_h)

        b.at(l1_h)
        i = b.phi([(entry, 0), (l1_latch, "i2")], name="i")
        it = b.phi([(entry, 0), (l1_latch, "kt2")], name="it")
        b.jmp(l2_h)

        b.at(l2_h)
        j = b.phi([(l1_h, 0), (l2_latch, "j2")], name="j")
        jt = b.phi([(l1_h, it), (l2_latch, "kt2")], name="jt")
        b.jmp(l3_h)

        b.at(l3_h)
        k = b.phi([(l2_h, 0), (l3_h, "k2")], name="k")
        total = b.phi([(l2_h, jt), (l3_h, "kt2")], name="kt")
        total2 = b.add(total, 1, name="kt2")
        k2 = b.add(k, 1, name="k2")
        ck = b.lt(k2, 3, name="ck")
        b.br(ck, l3_h, l2_latch)

        b.at(l2_latch)
        j2 = b.add(j, 1, name="j2")
        cj = b.lt(j2, 4, name="cj")
        b.br(cj, l2_h, l1_latch)

        b.at(l1_latch)
        i2 = b.add(i, 1, name="i2")
        ci = b.lt(i2, 5, name="ci")
        b.br(ci, l1_h, done)

        b.at(done)
        b.ret(total2)
        module.finalize()
        from repro.ir.verifier import verify_module

        verify_module(module)
        run = run_both(module, AddressSpace)
        assert run.value == 5 * 4 * 3

    def test_work_with_register_amount(self):
        module = Module("wr")
        b = IRBuilder(module)
        b.function("main", params=["n"])
        b.at(b.block("entry"))
        b.work("n")
        b.ret(0)
        module.finalize()
        run = run_both(module, AddressSpace, args=(25,))
        # 25 work instructions + ret.
        assert run.counters.instructions == 26
        assert run.counters.cycles == 26

    def test_cost_model_constants(self):
        """Hand-check the cycle accounting of a straight-line block."""
        module = Module("cost")
        b = IRBuilder(module)
        b.function("main")
        b.at(b.block("entry"))
        x = b.add(1, 2)       # 1 cycle
        y = b.mul(x, 3)       # 1
        z = b.select(1, y, 0) # 1
        b.work(7)             # 7
        b.ret(z)              # 1 (branch cost)
        module.finalize()
        run = run_both(module, AddressSpace)
        assert run.counters.cycles == 11
        assert run.counters.instructions == 11
        assert run.value == 9

    def test_custom_cost_config(self):
        config = MachineConfig(alu_cost=3, branch_cost=5)
        module = Module("cc")
        b = IRBuilder(module)
        b.function("main")
        b.at(b.block("entry"))
        b.add(1, 2)
        b.ret(0)
        module.finalize()
        for engine in ENGINES:
            machine = Machine(module, AddressSpace(), config=config, engine=engine)
            result = machine.run("main")
            assert result.counters.cycles == 8  # 3 + 5
