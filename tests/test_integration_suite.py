"""Cross-cutting integration tests: every tiny workload through all
engines, both passes, with counter invariants and semantics checks."""

import pytest

from repro.machine.config import ENGINES
from repro.machine.machine import Machine
from repro.machine.pmu import PerfStat
from repro.passes.ainsworth_jones import AinsworthJonesConfig, AinsworthJonesPass
from repro.passes.pipeline import profile_and_optimize
from repro.workloads.registry import TINY_SUITE, make_workload

NAMES = sorted(TINY_SUITE)


@pytest.mark.parametrize("name", NAMES)
def test_engines_agree_on_workload(name):
    results = {}
    for engine in ENGINES:
        module, space = make_workload(name).build()
        machine = Machine(module, space, engine=engine)
        results[engine] = machine.run("main")
    a = results["reference"]
    for engine in ENGINES:
        b = results[engine]
        assert a.value == b.value, engine
        assert a.counters.as_dict() == b.counters.as_dict(), engine


@pytest.mark.parametrize("name", NAMES)
def test_engines_agree_with_tracing_armed(name):
    """Tracing disarms the memory fast path; the engines must still be
    bit-identical on counters AND on the observed event stream."""
    from repro.obs.sites import site_reports

    results = {}
    for engine in ENGINES:
        module, space = make_workload(name).build()
        AinsworthJonesPass(AinsworthJonesConfig(distance=8)).run(module)
        machine = Machine(module, space, engine=engine)
        trace = machine.enable_tracing()
        result = machine.run("main")
        results[engine] = (
            result,
            trace.event_counts(),
            {
                label: report.to_dict()
                for label, report in site_reports(trace).items()
            },
        )
    ref_result, ref_events, ref_sites = results["reference"]
    for engine in ENGINES:
        result, events, sites = results[engine]
        assert result.value == ref_result.value, engine
        assert (
            result.counters.as_dict() == ref_result.counters.as_dict()
        ), engine
        assert events == ref_events, engine
        assert sites == ref_sites, engine


@pytest.mark.parametrize("name", NAMES)
def test_aj_preserves_semantics(name):
    workload = make_workload(name)
    module, space = workload.build()
    baseline = Machine(module, space).run(workload.entry)

    module2, space2 = make_workload(name).build()
    AinsworthJonesPass(AinsworthJonesConfig(distance=8)).run(module2)
    optimized = Machine(module2, space2).run(workload.entry)
    assert optimized.value == baseline.value
    assert PerfStat(optimized.counters).check_invariants() == []


@pytest.mark.parametrize("name", NAMES)
def test_apt_get_pipeline_preserves_semantics(name):
    workload = make_workload(name)
    module, space = workload.build()
    baseline = Machine(module, space).run(workload.entry)

    outcome = profile_and_optimize(make_workload(name).builder)
    optimized = Machine(outcome.module, outcome.space).run(workload.entry)
    assert optimized.value == baseline.value
    assert PerfStat(optimized.counters).check_invariants() == []
    # APT-GET should never be a large regression on its target workloads.
    assert optimized.counters.cycles <= baseline.counters.cycles * 1.1


def test_driver_script_runs(tmp_path):
    import subprocess
    import sys

    result = subprocess.run(
        [
            sys.executable,
            "scripts/run_all_experiments.py",
            "--scale",
            "tiny",
            "--only",
            "table2,table3",
            "--out",
            str(tmp_path),
        ],
        capture_output=True,
        text=True,
        cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert (tmp_path / "table2.json").exists()
    assert (tmp_path / "table3.txt").exists()
    assert (tmp_path / "SUMMARY.txt").exists()


def test_driver_script_rejects_unknown(tmp_path):
    import subprocess
    import sys

    result = subprocess.run(
        [
            sys.executable,
            "scripts/run_all_experiments.py",
            "--only",
            "fig99",
            "--out",
            str(tmp_path),
        ],
        capture_output=True,
        text=True,
        cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        timeout=120,
    )
    assert result.returncode == 2
