"""Unit tests for the full memory hierarchy: latencies, MSHR coalescing,
late/early prefetch accounting, hardware prefetchers, inclusivity."""

import pytest

from repro.machine.pmu import Counters
from repro.mem.address import AddressSpace
from repro.mem.config import CacheConfig, MemoryConfig
from repro.mem.hierarchy import MemorySystem


def make_system(
    stride=False, next_line=False, mshr=8, llc_kib=16
) -> tuple[MemorySystem, AddressSpace, Counters]:
    space = AddressSpace()
    space.allocate("data", 1 << 16, elem_size=8)  # 512 KiB
    counters = Counters()
    config = MemoryConfig(
        l1=CacheConfig("L1D", 1024, 4, 2),
        l2=CacheConfig("L2", 4096, 4, 12),
        llc=CacheConfig("LLC", llc_kib * 1024, 8, 40),
        dram_latency=360,
        mshr_entries=mshr,
        stride_prefetcher=stride,
        next_line_prefetcher=next_line,
    )
    return MemorySystem(config, space, counters), space, counters


def addr(space: AddressSpace, index: int) -> int:
    return space.segment("data").address_of(index)


MEM_LAT = 400.0  # llc 40 + dram 360


class TestDemandPath:
    def test_cold_miss_pays_full_latency(self):
        system, space, counters = make_system()
        latency = system.load(addr(space, 0), 0, pc=1)
        assert latency == MEM_LAT
        assert counters.offcore_demand_data_rd == 1
        assert counters.llc_misses == 1

    def test_fill_then_l1_hit(self):
        system, space, counters = make_system()
        system.load(addr(space, 0), 0, pc=1)
        latency = system.load(addr(space, 0), 1000, pc=1)
        assert latency == 2
        assert counters.l1_hits == 1

    def test_same_line_different_word_hits(self):
        system, space, counters = make_system()
        system.load(addr(space, 0), 0, pc=1)
        assert system.load(addr(space, 4), 1000, pc=1) == 2  # 4*8B < 64B

    def test_l2_hit_after_l1_eviction(self):
        system, space, counters = make_system()
        # L1: 16 lines (1KiB/64B), 4 sets x 4 ways; L2 64 lines.
        for i in range(0, 40 * 8, 8):  # 40 distinct lines
            system.load(addr(space, i), i * 1000, pc=1)
        # Line 0 has left L1 but should still be in L2 or LLC.
        latency = system.load(addr(space, 0), 10**9, pc=1)
        assert latency in (12.0, 40.0)

    def test_stall_attribution(self):
        system, space, counters = make_system()
        system.load(addr(space, 0), 0, pc=1)
        assert counters.stall_cycles_dram == MEM_LAT - 2
        before = counters.stall_cycles_dram
        system.load(addr(space, 0), 1000, pc=1)  # L1 hit: no stall
        assert counters.stall_cycles_dram == before


class TestSoftwarePrefetch:
    def test_prefetch_fills_after_latency(self):
        system, space, counters = make_system()
        system.prefetch(addr(space, 0), 0, pc=2)
        assert counters.sw_prefetch_issued == 1
        assert system.inflight() == 1
        # Demand access well after completion: a hit.
        latency = system.load(addr(space, 0), 10_000, pc=1)
        assert latency == 2
        assert counters.sw_prefetch_useful == 1
        assert counters.load_hit_pre_sw_pf == 0

    def test_late_prefetch_coalesces(self):
        system, space, counters = make_system()
        system.prefetch(addr(space, 0), 0, pc=2)
        latency = system.load(addr(space, 0), 100, pc=1)
        assert latency == MEM_LAT - 100
        assert counters.load_hit_pre_sw_pf == 1
        assert counters.sw_prefetch_useful == 1
        # Coalesced: no second memory read.
        assert counters.offcore_all_data_rd == 1
        assert counters.offcore_demand_data_rd == 0

    def test_prefetch_to_unmapped_is_dropped(self):
        system, space, counters = make_system()
        system.prefetch(0x10, 0, pc=2)
        assert counters.sw_prefetch_dropped_unmapped == 1
        assert system.inflight() == 0

    def test_prefetch_redundant_when_cached(self):
        system, space, counters = make_system()
        system.load(addr(space, 0), 0, pc=1)
        system.prefetch(addr(space, 0), 1000, pc=2)
        assert counters.sw_prefetch_redundant == 1

    def test_prefetch_redundant_when_inflight(self):
        system, space, counters = make_system()
        system.prefetch(addr(space, 0), 0, pc=2)
        system.prefetch(addr(space, 0), 1, pc=2)
        assert counters.sw_prefetch_redundant == 1
        assert system.inflight() == 1

    def test_mshr_full_drops(self):
        system, space, counters = make_system(mshr=2)
        for i in range(3):
            system.prefetch(addr(space, i * 8), 0, pc=2)
        assert counters.sw_prefetch_dropped_mshr == 1
        assert system.inflight() == 2

    def test_early_prefetch_evicted_unused(self):
        system, space, counters = make_system(llc_kib=1)  # 16-line LLC
        system.prefetch(addr(space, 0), 0, pc=2)
        # Let it complete, then blow the cache with demand traffic.
        now = 1000.0
        for i in range(1, 40):
            system.load(addr(space, i * 8), now, pc=1)
            now += 500
        assert counters.sw_prefetch_early_evicted >= 1
        assert counters.sw_prefetch_useful == 0


class TestStores:
    def test_store_is_cheap_even_on_miss(self):
        system, space, counters = make_system()
        assert system.store(addr(space, 0), 0, pc=3) == 1.0
        # Write-allocate: subsequent load hits.
        assert system.load(addr(space, 0), 100, pc=1) == 2

    def test_store_consumes_prefetch_flag(self):
        system, space, counters = make_system()
        system.prefetch(addr(space, 0), 0, pc=2)
        system.store(addr(space, 0), 10_000, pc=3)
        assert counters.sw_prefetch_useful == 1


class TestHardwarePrefetchers:
    def test_stride_prefetcher_covers_streams(self):
        system, space, counters = make_system(stride=True)
        # A steady stride of one line: after training, later accesses hit.
        now = 0.0
        for i in range(0, 30):
            system.load(addr(space, i * 8), now, pc=77)
            now += 1000
        assert counters.hw_prefetch_issued > 0
        assert counters.hw_prefetch_useful > 0

    def test_random_pattern_defeats_stride(self):
        import random

        rng = random.Random(3)
        system, space, counters = make_system(stride=True)
        now = 0.0
        for _ in range(50):
            system.load(addr(space, rng.randrange(1 << 12) * 8), now, pc=77)
            now += 1000
        assert counters.hw_prefetch_useful <= 2

    def test_next_line_prefetcher(self):
        system, space, counters = make_system(next_line=True)
        system.load(addr(space, 0), 0, pc=1)
        assert counters.hw_prefetch_issued == 1
        latency = system.load(addr(space, 8), 10_000, pc=1)  # next line
        assert latency == 2.0
        assert counters.hw_prefetch_useful == 1


class TestInclusivity:
    def test_llc_eviction_invalidates_inner_levels(self):
        system, space, counters = make_system(llc_kib=1)  # 16 lines, 2 sets
        system.load(addr(space, 0), 0, pc=1)
        # Fill the LLC set that line 0 maps to until it is evicted.
        now = 1000.0
        for i in range(1, 64):
            system.load(addr(space, i * 16), now, pc=1)  # every other line
            now += 500
        assert not system.llc.contains(addr(space, 0) >> 6)
        assert not system.l1.contains(addr(space, 0) >> 6)
        assert not system.l2.contains(addr(space, 0) >> 6)

    def test_flush_clears_everything(self):
        system, space, counters = make_system()
        system.load(addr(space, 0), 0, pc=1)
        system.prefetch(addr(space, 8 * 8), 0, pc=2)
        system.flush()
        assert system.inflight() == 0
        assert system.load(addr(space, 0), 10_000, pc=1) == MEM_LAT


class TestIdealMode:
    def make_ideal(self):
        space = AddressSpace()
        space.allocate("data", 1 << 14, elem_size=8)
        counters = Counters()
        config = MemoryConfig(
            l1=CacheConfig("L1D", 1024, 4, 2),
            l2=CacheConfig("L2", 4096, 4, 12),
            llc=CacheConfig("LLC", 16 * 1024, 8, 40),
            dram_latency=360,
            ideal_prefetching=True,
        )
        return MemorySystem(config, space, counters), space, counters

    def test_every_load_served_at_l1_latency(self):
        system, space, counters = self.make_ideal()
        seg = space.segment("data")
        for index in range(0, 200, 17):
            latency = system.load(seg.address_of(index), index * 100.0, pc=1)
            assert latency == 2

    def test_classification_counters_still_tracked(self):
        system, space, counters = self.make_ideal()
        seg = space.segment("data")
        system.load(seg.address_of(0), 0.0, pc=1)
        assert counters.llc_misses == 1  # the would-be miss is recorded
        assert counters.offcore_demand_data_rd == 1

    def test_no_stall_cycles_accrue(self):
        system, space, counters = self.make_ideal()
        seg = space.segment("data")
        for index in range(0, 500, 11):
            system.load(seg.address_of(index), index * 50.0, pc=1)
        assert counters.stall_cycles_dram == 0
        assert counters.stall_cycles_llc == 0
        assert counters.stall_cycles_l2 == 0

    def test_scaled_preserves_ideal_flag(self):
        config = MemoryConfig(ideal_prefetching=True).scaled(4)
        assert config.ideal_prefetching

    def test_ideal_machine_is_upper_bound(self):
        import dataclasses

        from repro.machine.config import MachineConfig, paper_like_memory
        from repro.machine.machine import Machine
        from tests.conftest import build_indirect_loop

        module, space, expected = build_indirect_loop(n=400)
        normal = Machine(module, space).run("main")

        module2, space2, _ = build_indirect_loop(n=400)
        ideal_config = MachineConfig(
            memory=dataclasses.replace(
                paper_like_memory(), ideal_prefetching=True
            )
        )
        ideal = Machine(module2, space2, config=ideal_config).run("main")
        assert ideal.value == normal.value == expected
        assert ideal.counters.cycles < normal.counters.cycles
