"""Tests for the IR text parser: round-trips with the printer."""

import pytest

from repro.ir.parser import ParseError, parse_function_body, parse_module
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace
from tests.conftest import (
    build_indirect_loop,
    build_nested_indirect,
    build_sum_loop,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [build_sum_loop, build_indirect_loop, build_nested_indirect],
        ids=["sum", "indirect", "nested"],
    )
    def test_print_parse_print_fixpoint(self, builder):
        module, _, _ = builder()
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text

    def test_reparsed_module_executes_identically(self):
        module, space, expected = build_indirect_loop()
        reparsed = parse_module(format_module(module))
        fresh_space = build_indirect_loop()[1]
        original = Machine(module, space).run("main")
        restored = Machine(reparsed, fresh_space).run("main")
        assert restored.value == original.value == expected
        assert restored.counters.as_dict() == original.counters.as_dict()

    def test_roundtrip_after_injection(self):
        from repro.passes.ainsworth_jones import AinsworthJonesPass

        module, _, _ = build_nested_indirect()
        AinsworthJonesPass().run(module)
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text


class TestHandWritten:
    def test_simple_function(self):
        module = parse_module(
            """
            define main(n) {
            entry:
              br label %loop
            loop:
              %i = phi [entry: 0], [loop: %i2]
              %acc = phi [entry: 0], [loop: %acc2]
              %acc2 = add %acc, %i
              %i2 = add %i, 1
              %c = icmp slt %i2, n
              br %c, label %loop, label %done
            done:
              ret %acc2
            }
            """
        )
        verify_module(module)
        result = Machine(module, AddressSpace()).run("main", (10,))
        assert result.value == sum(range(10))

    def test_memory_ops_and_work(self):
        space = AddressSpace()
        seg = space.allocate("d", [7, 8], elem_size=8)
        module = parse_function_body(
            f"""
            entry:
              %a = getelementptr {seg.base}, 1, scale 8
              %v = load [%a]
              store [%a], 99
              prefetch [%a]
              work 4
              %w = load [%a]
              %s = add %v, %w
              ret %s
            """
        )
        result = Machine(module, space).run("main")
        assert result.value == 7 + 8 + 99 - 7  # 8 + 99

    def test_select_min_const_mov(self):
        module = parse_function_body(
            """
            entry:
              %c = const 5
              %m = mov %c
              %cmp = icmp sge %m, 3
              %sel = select %cmp, %m, 0
              %clamped = min %sel, 4
              ret %clamped
            """
        )
        assert Machine(module, AddressSpace()).run("main").value == 4

    def test_comments_and_blank_lines(self):
        module = parse_function_body(
            """
            entry:
              # this is a comment
              ret 7

            """
        )
        assert Machine(module, AddressSpace()).run("main").value == 7

    def test_hex_immediates(self):
        module = parse_function_body(
            """
            entry:
              %x = add 0x10, 0x20
              ret %x
            """
        )
        assert Machine(module, AddressSpace()).run("main").value == 0x30


class TestErrors:
    def test_instruction_outside_block(self):
        with pytest.raises(ParseError, match="outside"):
            parse_module("define f() {\n  ret 0\n}")

    def test_block_outside_function(self):
        with pytest.raises(ParseError):
            parse_module("entry:\n  ret 0")

    def test_unknown_opcode(self):
        with pytest.raises(ParseError, match="unknown value op"):
            parse_function_body("entry:\n  %x = frobnicate 1, 2\n  ret %x")

    def test_unbracketed_load(self):
        with pytest.raises(ParseError):
            parse_function_body("entry:\n  %x = load 5\n  ret %x")

    def test_error_reports_line_number(self):
        try:
            parse_function_body("entry:\n  bogus instruction here\n  ret 0")
        except ParseError as error:
            assert error.line_number == 3  # wrapped body shifts by one
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
