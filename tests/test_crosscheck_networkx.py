"""Independent cross-checks of the graph workloads against networkx
(available in the environment): BFS levels, SSSP distances after enough
Bellman-Ford rounds, and reachability — third-party ground truth rather
than our own reference implementations."""

import networkx as nx
import pytest

from repro.machine.machine import Machine
from repro.workloads.bfs import BFSWorkload
from repro.workloads.graphs import synthetic_dataset
from repro.workloads.sssp import SSSPWorkload

DATASET = synthetic_dataset(600, 4, seed=91)


def to_networkx(graph):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.n))
    for u in range(graph.n):
        for j in range(graph.row[u], graph.row[u + 1]):
            g.add_edge(u, graph.col[j])
    return g


class TestAgainstNetworkx:
    def test_bfs_levels(self):
        workload = BFSWorkload(DATASET)
        graph = DATASET.build()
        module, space = workload.build()
        Machine(module, space).run("main")
        dist = space.segment("dist").values

        g = to_networkx(graph)
        expected = nx.single_source_shortest_path_length(g, 0)
        for v in range(graph.n):
            if v in expected:
                assert dist[v] == expected[v], v
            else:
                assert dist[v] == -1, v

    def test_sssp_converged_distances(self):
        graph = DATASET.build()
        g = to_networkx(graph)
        # Enough rounds for Bellman-Ford to converge on this graph.
        diameter_bound = 64
        workload = SSSPWorkload(DATASET, rounds=diameter_bound)
        module, space = workload.build()
        Machine(module, space).run("main")
        dist = space.segment("dist").values
        weights = space.segment("weights").values

        weighted = nx.DiGraph()
        weighted.add_nodes_from(range(graph.n))
        for u in range(graph.n):
            for j in range(graph.row[u], graph.row[u + 1]):
                v = graph.col[j]
                w = weights[j]
                # Parallel edges: keep the lightest.
                if weighted.has_edge(u, v):
                    w = min(w, weighted[u][v]["weight"])
                weighted.add_edge(u, v, weight=w)
        expected = nx.single_source_dijkstra_path_length(weighted, 0)
        infinity = 1 << 30
        mismatches = [
            (v, dist[v], expected.get(v))
            for v in range(graph.n)
            if (v in expected) != (dist[v] < infinity)
            or (v in expected and dist[v] != expected[v])
        ]
        assert not mismatches, mismatches[:5]

    def test_reachable_count_matches(self):
        workload = BFSWorkload(DATASET)
        graph = DATASET.build()
        module, space = workload.build()
        result = Machine(module, space).run("main")
        g = to_networkx(graph)
        assert result.value == len(nx.descendants(g, 0)) + 1
