"""Tests for multi-function programs (the CALL opcode): semantics,
engine parity, clock continuity, LBR recording, verifier checks, slice
safety, and printer/parser round-trip."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import IRError, Module
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.ir.verifier import VerificationError, verify_module
from repro.machine.config import ENGINES
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace


def build_two_function_module(n=50, seed=3):
    """main: for i<n: acc += lookup(i) ; lookup(i) = T[B[i]]."""
    import random

    rng = random.Random(seed)
    space = AddressSpace()
    b_seg = space.allocate(
        "B", [rng.randrange(1 << 12) for _ in range(n + 600)], elem_size=8
    )
    t_seg = space.allocate(
        "T", [rng.randrange(1000) for _ in range(1 << 12)], elem_size=8
    )
    expected = sum(
        t_seg.values[b_seg.values[i]] for i in range(n)
    )

    module = Module("twofn")
    b = IRBuilder(module)

    b.function("lookup", params=["i"])
    b.at(b.block("entry"))
    ba = b.gep(b_seg.base, "i", 8)
    idx = b.load(ba, name="idx")
    ta = b.gep(t_seg.base, idx, 8)
    value = b.load(ta, name="value")
    b.ret(value)

    b.function("main")
    entry, loop, done = b.blocks("entry", "loop", "done")
    b.at(entry)
    b.jmp(loop)
    b.at(loop)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 0)], name="acc")
    value = b.call("lookup", [i], name="v")
    acc2 = b.add(acc, value, name="acc2")
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, loop, i2)
    b.add_incoming(acc, loop, acc2)
    cond = b.lt(i2, n, name="cond")
    b.br(cond, loop, done)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    verify_module(module, strict=True)
    return module, space, expected


class TestCallSemantics:
    def test_value_correct(self):
        module, space, expected = build_two_function_module()
        result = Machine(module, space).run("main")
        assert result.value == expected

    def test_engines_bit_identical(self):
        module, _, expected = build_two_function_module()
        results = {}
        for engine in ENGINES:
            _, space, _ = build_two_function_module()
            machine = Machine(module, space, engine=engine)
            machine.enable_profiling(period=97)
            results[engine] = (machine, machine.run("main"))
        ma, a = results["reference"]
        for engine in ENGINES:
            mb, b = results[engine]
            assert a.value == b.value == expected, engine
            assert a.counters.as_dict() == b.counters.as_dict(), engine
            assert ma.sampler.samples == mb.sampler.samples, engine

    def test_clock_continuity(self):
        """Cycles accumulate across the call boundary: the called version
        costs at least as much as an inlined equivalent."""
        module, space, _ = build_two_function_module(n=30)
        called = Machine(module, space).run("main")
        # Reference: hand-inlined loop.
        import random

        rng = random.Random(3)
        space2 = AddressSpace()
        b_seg = space2.allocate(
            "B", [rng.randrange(1 << 12) for _ in range(30 + 600)], elem_size=8
        )
        t_seg = space2.allocate(
            "T", [rng.randrange(1000) for _ in range(1 << 12)], elem_size=8
        )
        module2 = Module("inline")
        b = IRBuilder(module2)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        acc = b.phi([(entry, 0)], name="acc")
        ba = b.gep(b_seg.base, i, 8)
        idx = b.load(ba, name="idx")
        ta = b.gep(t_seg.base, idx, 8)
        value = b.load(ta, name="value")
        acc2 = b.add(acc, value, name="acc2")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        b.add_incoming(acc, loop, acc2)
        cond = b.lt(i2, 30, name="cond")
        b.br(cond, loop, done)
        b.at(done)
        b.ret(acc2)
        module2.finalize()
        inlined = Machine(module2, space2).run("main")
        assert called.counters.cycles > inlined.counters.cycles
        assert called.value == inlined.value

    def test_call_recorded_in_lbr(self):
        module, space, _ = build_two_function_module()
        machine = Machine(module, space)
        machine.enable_profiling(period=50)
        machine.run("main")
        callee_entry = module.function("lookup").entry.start_pc
        hits = sum(
            1
            for sample in machine.sampler.samples
            for entry in sample
            if entry[1] == callee_entry
        )
        assert hits > 0

    def test_recursion(self):
        module = Module("fact")
        b = IRBuilder(module)
        b.function("fact", params=["n"])
        entry, base, rec = b.blocks("entry", "base", "rec")
        b.at(entry)
        c = b.le("n", 1, name="c")
        b.br(c, base, rec)
        b.at(base)
        b.ret(1)
        b.at(rec)
        n1 = b.sub("n", 1, name="n1")
        sub = b.call("fact", [n1], name="sub")
        product = b.mul("n", sub, name="product")
        b.ret(product)
        module.finalize()
        verify_module(module)
        for engine in ENGINES:
            machine = Machine(module, AddressSpace(), engine=engine)
            assert machine.run("fact", (6,)).value == 720

    def test_missing_trampoline_raises(self):
        from repro.machine.interpreter import run_function
        from repro.machine.context import ExecutionContext
        from repro.machine.config import MachineConfig
        from repro.machine.lbr import NullLBR
        from repro.machine.pmu import Counters
        from repro.mem.hierarchy import MemorySystem

        module, space, _ = build_two_function_module(n=2)
        config = MachineConfig()
        counters = Counters()
        ctx = ExecutionContext(
            space=space,
            mem=MemorySystem(config.memory, space, counters),
            counters=counters,
            lbr=NullLBR(),
            config=config,
            sampler=None,
            invoke=None,
        )
        with pytest.raises(IRError, match="trampoline"):
            run_function(module.function("main"), ctx, ())


class TestCallVerification:
    def test_unknown_callee(self):
        module = Module("bad")
        b = IRBuilder(module)
        b.function("main")
        b.at(b.block("entry"))
        v = b.call("ghost", [])
        b.ret(v)
        module.finalize()
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(module)

    def test_wrong_arity(self):
        module = Module("bad2")
        b = IRBuilder(module)
        b.function("callee", params=["a", "b"])
        b.at(b.block("entry"))
        b.ret("a")
        b.function("main")
        b.at(b.block("entry"))
        v = b.call("callee", [1])
        b.ret(v)
        module.finalize()
        with pytest.raises(VerificationError, match="expects"):
            verify_module(module)


class TestCallAndPasses:
    def test_slice_crossing_call_is_opaque(self):
        """A load whose address comes from a call result must not be
        selected for prefetch injection."""
        from repro.analysis.loops import find_loops
        from repro.analysis.slices import extract_load_slice, find_indirect_loads

        import random

        rng = random.Random(5)
        space = AddressSpace()
        t_seg = space.allocate(
            "T", [rng.randrange(100) for _ in range(1 << 10)], elem_size=8
        )
        module = Module("opq")
        b = IRBuilder(module)
        b.function("hash", params=["x"])
        b.at(b.block("entry"))
        h = b.and_("x", (1 << 10) - 1, name="h")
        b.ret(h)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        hashed = b.call("hash", [i], name="hashed")
        ta = b.gep(t_seg.base, hashed, 8, name="ta")
        v = b.load(ta, name="v")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        c = b.lt(i2, 100, name="c")
        b.br(c, loop, done)
        b.at(done)
        b.ret(v)
        module.finalize()
        verify_module(module)

        function = module.function("main")
        load = next(
            inst for inst in function.instructions() if inst.dst == "v"
        )
        load_slice = extract_load_slice(function, load)
        assert load_slice.has_call
        loops = find_loops(function)
        from repro.passes.inject import inject_inner

        result = inject_inner(function, load, load_slice, loops[0], distance=4)
        assert not result.success
        assert "call" in result.reason

    def test_cleanup_does_not_touch_calls(self):
        from repro.passes.cleanup import dead_code_elimination

        module, _, _ = build_two_function_module(n=5)
        function = module.function("main")
        before = sum(
            1
            for inst in function.instructions()
            if inst.op is Opcode.CALL
        )
        dead_code_elimination(function)
        after = sum(
            1
            for inst in function.instructions()
            if inst.op is Opcode.CALL
        )
        assert before == after == 1


class TestCallTextFormat:
    def test_roundtrip(self):
        module, _, _ = build_two_function_module(n=4)
        text = format_module(module)
        assert "call lookup(" in text
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text

    def test_executes_after_roundtrip(self):
        module, space, expected = build_two_function_module(n=12)
        reparsed = parse_module(format_module(module))
        _, space2, _ = build_two_function_module(n=12)
        assert Machine(reparsed, space2).run("main").value == expected


class TestTranslatedCallSource:
    def test_codegen_emits_trampoline(self):
        module, space, _ = build_two_function_module(n=4)
        machine = Machine(module, space)
        source = machine.translated_source("main")
        assert "ctx.invoke('lookup'" in source
        assert "counters.cycles = cycle" in source
        assert "cycle = int(counters.cycles)" in source

    def test_single_arg_tuple_syntax(self):
        # (x,) not (x): the generated call must pass a real tuple.
        module, space, _ = build_two_function_module(n=4)
        machine = Machine(module, space)
        source = machine.translated_source("main")
        import re

        match = re.search(r"ctx\.invoke\('lookup', \(([^)]*)\), ", source)
        assert match is not None
        assert match.group(1).endswith(",")
