"""Tests for the Eq-1 distance model, Eq-2 site model, and hints."""

import pytest

from repro.core.distance import (
    MAX_DISTANCE,
    MIN_DISTANCE,
    optimal_distance,
)
from repro.core.distribution import LatencyDistribution, analyze_latency_distribution
from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import (
    DEFAULT_K,
    InjectionSite,
    choose_injection_site,
    k_for_coverage,
)


def distribution_with_peaks(ic, miss, count=100):
    d = LatencyDistribution(latencies=[ic] * count + [miss] * count)
    d.peaks = [ic, miss]
    d.peak_masses = [count, count]
    return d


class TestEquationOne:
    def test_basic_ratio(self):
        # IC 10, MC 400-10=390 -> ceil(390/10) = 39.
        estimate = optimal_distance(distribution_with_peaks(10, 400))
        assert estimate.distance == 39
        assert estimate.reliable

    def test_exact_division(self):
        estimate = optimal_distance(distribution_with_peaks(100, 500))
        assert estimate.distance == 4  # (500-100)/100

    def test_clamped_to_max(self):
        estimate = optimal_distance(distribution_with_peaks(1, 10_000))
        assert estimate.distance == MAX_DISTANCE

    def test_single_peak_defaults_to_one(self):
        d = LatencyDistribution(latencies=[30] * 100)
        d.peaks = [30]
        d.peak_masses = [100]
        estimate = optimal_distance(d)
        assert estimate.distance == MIN_DISTANCE
        assert not estimate.reliable

    def test_too_few_samples_defaults(self):
        # Paper §3.6: inner latch appears once per snapshot -> default 1.
        d = distribution_with_peaks(10, 400, count=2)
        estimate = optimal_distance(d)
        assert estimate.distance == MIN_DISTANCE
        assert estimate.is_default

    def test_empty_distribution(self):
        estimate = optimal_distance(LatencyDistribution(latencies=[]))
        assert estimate.distance == MIN_DISTANCE
        assert not estimate.reliable

    def test_end_to_end_with_detector(self):
        import random

        rng = random.Random(2)
        latencies = [10 + rng.randrange(2) for _ in range(300)]
        latencies += [410 + rng.randrange(2) for _ in range(300)]
        estimate = optimal_distance(analyze_latency_distribution(latencies))
        assert 30 <= estimate.distance <= 45


class TestEquationTwo:
    def test_short_trip_goes_outer(self):
        decision = choose_injection_site(trip_count=8, inner_distance=30)
        assert decision.site is InjectionSite.OUTER

    def test_long_trip_stays_inner(self):
        decision = choose_injection_site(trip_count=1000, inner_distance=30)
        assert decision.site is InjectionSite.INNER

    def test_boundary(self):
        # Eq-2: outer iff trip < k * distance (k = 5).
        assert (
            choose_injection_site(trip_count=150, inner_distance=30).site
            is InjectionSite.INNER
        )
        assert (
            choose_injection_site(trip_count=149, inner_distance=30).site
            is InjectionSite.OUTER
        )

    def test_outer_unavailable_forces_inner(self):
        decision = choose_injection_site(
            trip_count=2, inner_distance=30, outer_available=False
        )
        assert decision.site is InjectionSite.INNER

    def test_k_for_coverage(self):
        assert k_for_coverage(0.8) == pytest.approx(DEFAULT_K)
        assert k_for_coverage(0.9) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            k_for_coverage(1.0)

    def test_nonpositive_trip_treated_as_one(self):
        decision = choose_injection_site(trip_count=0, inner_distance=10)
        assert decision.trip_count == 1.0
        assert decision.site is InjectionSite.OUTER

    def test_threshold_property(self):
        decision = choose_injection_site(trip_count=10, inner_distance=4)
        assert decision.threshold == pytest.approx(20.0)


class TestHints:
    def test_effective_distance_prefers_outer(self):
        hint = PrefetchHint(
            load_pc=0x40,
            function="main",
            distance=12,
            site=InjectionSite.OUTER,
            outer_distance=3,
        )
        assert hint.effective_distance == 3
        hint.site = InjectionSite.INNER
        assert hint.effective_distance == 12

    def test_json_roundtrip(self):
        hints = HintSet.from_hints(
            [
                PrefetchHint(
                    load_pc=0x40,
                    function="main",
                    distance=12,
                    site=InjectionSite.OUTER,
                    outer_distance=3,
                    trip_count=2.5,
                    ic_latency=10,
                    mc_latency=390,
                    sweep=2,
                )
            ]
        )
        restored = HintSet.from_json(hints.to_json())
        assert len(restored) == 1
        hint = restored.hints[0]
        assert hint.site is InjectionSite.OUTER
        assert hint.trip_count == 2.5
        assert hint.sweep == 2

    def test_lookup_helpers(self):
        a = PrefetchHint(load_pc=1, function="f", distance=2)
        b = PrefetchHint(load_pc=2, function="g", distance=3)
        hints = HintSet.from_hints([a, b])
        assert hints.for_function("f") == [a]
        assert hints.by_pc()[2] is b
        assert len(hints) == 2
