"""Tests for the end-to-end APT-GET analysis (profile -> hints)."""

import pytest

from repro.core.aptget import AptGet, AptGetConfig
from repro.core.site import InjectionSite
from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.workloads.hashjoin import HashJoinWorkload
from repro.workloads.micro import IndirectMicrobenchmark
from tests.conftest import build_indirect_loop


def analyze(workload, config=None, period=None):
    module, space = workload.build()
    machine = Machine(module, space)
    profile = collect_profile(machine, workload.entry, period=period)
    analyzer = AptGet(config)
    return module, profile, analyzer.analyze(module, profile)


class TestSingleLoop:
    def test_indirect_loop_hint(self):
        module, space, _ = build_indirect_loop(n=2000, target_elems=1 << 15)
        machine = Machine(module, space)
        profile = collect_profile(machine, period=2_000)
        hints = AptGet().analyze(module, profile)
        assert len(hints)
        by_pc = hints.by_pc()
        target_pc = [
            inst.pc
            for inst in module.function("main").instructions()
            if inst.dst == "value"
        ][0]
        assert target_pc in by_pc
        hint = by_pc[target_pc]
        assert hint.site is InjectionSite.INNER  # no outer loop exists
        assert hint.distance >= 1
        assert hint.ic_latency > 0

    def test_distance_tracks_work_amount(self):
        # Heavier per-iteration work -> larger IC -> smaller distance.
        light = IndirectMicrobenchmark(
            inner=256, work=0, total_iterations=30_000
        )
        heavy = IndirectMicrobenchmark(
            inner=256, work=60, total_iterations=30_000
        )
        _, _, hints_light = analyze(light)
        _, _, hints_heavy = analyze(heavy)
        d_light = max(h.distance for h in hints_light)
        d_heavy = max(h.distance for h in hints_heavy)
        assert d_light > d_heavy


class TestNestedLoop:
    def test_hashjoin_picks_outer(self):
        workload = HashJoinWorkload(
            8, "NPO", table_entries=1 << 16, probes=20_000
        )
        module, profile, hints = analyze(workload)
        assert len(hints)
        # Hints come in delinquency order: the hash-table probe load first.
        main_hint = hints.hints[0]
        assert main_hint.site is InjectionSite.OUTER
        assert main_hint.trip_count == pytest.approx(8, abs=1.5)
        assert main_hint.outer_distance is not None
        assert main_hint.sweep > 1  # auto sweep follows the trip count

    def test_micro_large_trip_stays_inner(self):
        # INNER=256 >> 32 LBR entries: trip count unmeasurable (§3.6),
        # so the inner site must be used.
        workload = IndirectMicrobenchmark(inner=256, total_iterations=30_000)
        module, profile, hints = analyze(workload)
        assert len(hints)
        assert all(h.site is InjectionSite.INNER for h in hints)

    def test_sweep_cap(self):
        workload = HashJoinWorkload(
            8, "NPO", table_entries=1 << 16, probes=20_000
        )
        config = AptGetConfig(max_sweep=2)
        _, _, hints = analyze(workload, config=config)
        assert all(h.sweep <= 2 for h in hints)


class TestRobustness:
    def test_unknown_pc_ignored(self):
        module, profile, _ = analyze(
            IndirectMicrobenchmark(inner=64, total_iterations=5_000)
        )
        assert AptGet().analyze_load(module, profile, 0xDEAD) is None

    def test_non_load_pc_ignored(self):
        module, profile, _ = analyze(
            IndirectMicrobenchmark(inner=64, total_iterations=5_000)
        )
        branch_pc = module.function("main").block("inner_h").end_pc
        assert AptGet().analyze_load(module, profile, branch_pc) is None

    def test_load_outside_loop_ignored(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.nodes import Module
        from repro.mem.address import AddressSpace
        from repro.profiling.profile import ExecutionProfile

        space = AddressSpace()
        seg = space.allocate("x", [1], elem_size=8)
        module = Module("flat")
        b = IRBuilder(module)
        b.function("main")
        b.at(b.block("entry"))
        v = b.load(seg.base)
        b.ret(v)
        module.finalize()
        load_pc = module.load_pcs()[0]
        profile = ExecutionProfile(load_miss_counts={load_pc: 100})
        assert AptGet().analyze_load(module, profile, load_pc) is None

    def test_top_loads_limit(self):
        workload = IndirectMicrobenchmark(inner=64, total_iterations=20_000)
        module, profile, _ = analyze(workload)
        limited = AptGet(AptGetConfig(top_loads=1)).analyze(module, profile)
        assert len(limited) <= 1
