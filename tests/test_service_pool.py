"""Unit tests for the multiprocess job pool.

The job functions are module-level so they are picklable by the
process-pool workers.
"""

import time

import pytest

from repro.service.metrics import MetricsRegistry
from repro.service.pool import Job, JobOutcome, JobPool


def _square(x):
    return x * x


def _boom():
    raise ValueError("deliberate failure")


def _sleepy(seconds):
    time.sleep(seconds)
    return "woke"


def jobs_for(values):
    return [Job(key=str(v), fn=_square, args=(v,)) for v in values]


class TestInline:
    def test_success(self):
        outcomes = JobPool(workers=1).run(jobs_for([3]))
        assert outcomes[0].ok
        assert outcomes[0].value == 9
        assert outcomes[0].attempts == 1

    def test_failure_is_isolated_and_retried(self):
        metrics = MetricsRegistry()
        pool = JobPool(workers=1, retries=2, backoff=0.0, metrics=metrics)
        outcomes = pool.run(
            [Job(key="bad", fn=_boom), Job(key="good", fn=_square, args=(2,))]
        )
        bad, good = outcomes
        assert not bad.ok
        assert "deliberate failure" in bad.error
        assert bad.attempts == 3  # 1 try + 2 retries
        assert good.ok and good.value == 4
        assert metrics.get("service.job_retries") == 2
        assert metrics.get("service.job_failures") == 1
        assert metrics.get("service.jobs") == 2

    def test_empty(self):
        assert JobPool(workers=4).run([]) == []


class TestParallel:
    def test_results_preserve_submission_order(self):
        values = list(range(8))
        outcomes = JobPool(workers=4).run(jobs_for(values))
        assert [o.key for o in outcomes] == [str(v) for v in values]
        assert [o.value for o in outcomes] == [v * v for v in values]
        assert all(isinstance(o, JobOutcome) and o.ok for o in outcomes)

    def test_worker_exception_degrades_to_error_outcome(self):
        metrics = MetricsRegistry()
        pool = JobPool(workers=2, retries=0, metrics=metrics)
        outcomes = pool.run(
            [
                Job(key="good-1", fn=_square, args=(5,)),
                Job(key="bad", fn=_boom),
                Job(key="good-2", fn=_square, args=(6,)),
            ]
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == 25
        assert outcomes[2].value == 36
        assert "ValueError" in outcomes[1].error
        assert metrics.get("service.job_failures") == 1

    def test_timeout_yields_outcome_and_metric_rest_completes(self):
        metrics = MetricsRegistry()
        pool = JobPool(workers=2, timeout=0.2, retries=0, metrics=metrics)
        outcomes = pool.run(
            [
                Job(key="stuck", fn=_sleepy, args=(1.5,)),
                Job(key="fast", fn=_square, args=(7,)),
            ]
        )
        stuck, fast = outcomes
        assert not stuck.ok
        assert stuck.timed_out
        assert "timed out" in stuck.error
        assert fast.ok and fast.value == 49
        assert metrics.get("service.job_timeouts") == 1

    def test_timeout_retry_increments_metrics(self):
        metrics = MetricsRegistry()
        pool = JobPool(workers=2, timeout=0.1, retries=1, backoff=0.0, metrics=metrics)
        outcomes = pool.run([Job(key="stuck", fn=_sleepy, args=(1.5,))])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert metrics.get("service.job_timeouts") == 2
        assert metrics.get("service.job_retries") == 1


class TestMetricsPlumbing:
    def test_durations_observed(self):
        metrics = MetricsRegistry()
        JobPool(workers=1, metrics=metrics).run(jobs_for([1, 2]))
        histogram = metrics.to_dict()["histograms"]["service.job_seconds"]
        assert histogram["count"] == 2
        assert histogram["sum"] >= 0.0


@pytest.mark.parametrize("workers", [1, 3])
def test_inline_and_parallel_agree(workers):
    outcomes = JobPool(workers=workers).run(jobs_for([2, 4, 6]))
    assert [o.value for o in outcomes] == [4, 16, 36]
