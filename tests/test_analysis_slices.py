"""Unit tests for load-slice extraction and indirect-load detection."""

from repro.analysis.loops import find_loops
from repro.analysis.slices import (
    extract_load_slice,
    extract_value_slice,
    find_indirect_loads,
    slice_for_pc,
)
from repro.ir.opcodes import Opcode


def loads_of(module, function="main"):
    return [
        inst
        for inst in module.function(function).instructions()
        if inst.op is Opcode.LOAD
    ]


class TestLoadSlices:
    def test_direct_load_slice(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        load = loads_of(module)[0]
        load_slice = extract_load_slice(function, load)
        assert not load_slice.is_indirect
        assert [phi.dst for phi in load_slice.phis] == ["i"]
        ops = [inst.op for inst in load_slice.instructions]
        assert Opcode.GEP in ops and Opcode.MUL in ops

    def test_indirect_load_slice(self, indirect_loop):
        module, _, _ = indirect_loop
        function = module.function("main")
        target_load = loads_of(module)[1]
        load_slice = extract_load_slice(function, target_load)
        assert load_slice.is_indirect
        assert len(load_slice.intermediate_loads) == 1
        assert load_slice.phi_registers == ["i"]

    def test_dependency_order(self, indirect_loop):
        module, _, _ = indirect_loop
        function = module.function("main")
        load = loads_of(module)[1]
        load_slice = extract_load_slice(function, load)
        seen = set()
        defined = {phi.dst for phi in load_slice.phis} | load_slice.free_registers
        for inst in load_slice.instructions:
            for reg in inst.register_operands():
                assert reg in seen | defined
            seen.add(inst.dst)

    def test_nested_slice_collects_both_phis(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        t_load = loads_of(module)[-1]
        load_slice = extract_load_slice(function, t_load)
        assert set(load_slice.phi_registers) == {"iv1", "iv2"}
        assert len(load_slice.intermediate_loads) == 2

    def test_value_slice_through_init(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        # The slice of the inner phi's init (0) is empty; the slice of
        # 'p.bo' (outer-block gep) ends at the outer phi.
        value_slice = extract_value_slice(function, "p.bo")
        assert value_slice.phi_registers == ["iv1"]
        assert [inst.dst for inst in value_slice.instructions] == ["p.bo"]


class TestIndirectDetection:
    def test_finds_only_indirect(self, indirect_loop):
        module, _, _ = indirect_loop
        function = module.function("main")
        loops = find_loops(function)
        candidates = find_indirect_loads(function, loops)
        assert len(candidates) == 1
        load, load_slice, loop = candidates[0]
        assert load.dst == "value"
        assert loop.header == "loop"

    def test_feeder_loads_excluded(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        candidates = find_indirect_loads(function, loops)
        names = {load.dst for load, _, _ in candidates}
        assert names == {"t.v"}

    def test_direct_loads_optionally_included(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        loops = find_loops(function)
        assert find_indirect_loads(function, loops) == []
        relaxed = find_indirect_loads(function, loops, require_indirect=False)
        assert len(relaxed) == 1

    def test_loads_outside_loops_ignored(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.nodes import Module
        from repro.mem.address import AddressSpace

        space = AddressSpace()
        seg = space.allocate("x", [1, 2], elem_size=8)
        module = Module("s")
        b = IRBuilder(module)
        b.function("f")
        b.at(b.block("entry"))
        v = b.load(seg.base)
        b.ret(v)
        module.finalize()
        function = module.function("f")
        assert find_indirect_loads(function, find_loops(function)) == []


class TestPCResolution:
    def test_slice_for_pc(self, indirect_loop):
        module, _, _ = indirect_loop
        function = module.function("main")
        load = loads_of(module)[1]
        resolved = slice_for_pc(function, load.pc)
        assert resolved is not None
        found, load_slice = resolved
        assert found is load
        assert load_slice.is_indirect

    def test_slice_for_wrong_pc(self, indirect_loop):
        module, _, _ = indirect_loop
        function = module.function("main")
        assert slice_for_pc(function, 0xDEAD) is None


class TestSliceDependencyOrderNested:
    def test_nested_slice_order_is_executable(self, nested_indirect):
        """Cloning the slice in `instructions` order must define every
        operand before use (the property injection relies on)."""
        module, _, _ = nested_indirect
        function = module.function("main")
        load = next(
            inst
            for inst in function.instructions()
            if inst.dst == "t.v"
        )
        load_slice = extract_load_slice(function, load)
        available = set(load_slice.phi_registers) | load_slice.free_registers
        for inst in load_slice.instructions:
            for reg in inst.register_operands():
                assert reg in available, (reg, inst)
            available.add(inst.dst)

    def test_free_registers_are_function_params(self):
        from repro.ir.builder import IRBuilder
        from repro.ir.nodes import Module

        module = Module("params")
        b = IRBuilder(module)
        b.function("main", params=["base"])
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        a = b.gep("base", i, 8, name="a")
        v = b.load(a, name="v")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        c = b.lt(i2, 4, name="c")
        b.br(c, loop, done)
        b.at(done)
        b.ret(v)
        module.finalize()
        function = module.function("main")
        load = next(
            inst for inst in function.instructions() if inst.dst == "v"
        )
        load_slice = extract_load_slice(function, load)
        assert load_slice.free_registers == {"base"}
