"""Unit tests for IR data structures (instructions, blocks, modules)."""

import pytest

from repro.ir.nodes import (
    FUNC_ALIGN,
    PC_STRIDE,
    Function,
    Instruction,
    IRError,
    Module,
)
from repro.ir.opcodes import Opcode
from tests.conftest import build_sum_loop


class TestInstruction:
    def test_binary_has_dst(self):
        inst = Instruction(Opcode.ADD, dst="x", args=("a", 1))
        assert inst.has_dst
        assert not inst.is_terminator

    def test_terminators(self):
        for op in (Opcode.JMP, Opcode.BR, Opcode.RET):
            assert Instruction(op).is_terminator
        assert not Instruction(Opcode.LOAD, dst="v", args=("a",)).is_terminator

    def test_register_operands_skip_immediates(self):
        inst = Instruction(Opcode.ADD, dst="x", args=("a", 7))
        assert list(inst.register_operands()) == ["a"]

    def test_phi_operands_include_incomings(self):
        phi = Instruction(Opcode.PHI, dst="x", incomings=[("b1", "y"), ("b2", 3)])
        assert set(phi.register_operands()) == {"y"}
        assert set(phi.operands()) == {"y", 3}

    def test_replace_operands_args_and_incomings(self):
        inst = Instruction(Opcode.ADD, dst="x", args=("a", "b"))
        inst.replace_operands({"a": "z", "b": 5})
        assert inst.args == ("z", 5)
        phi = Instruction(Opcode.PHI, dst="p", incomings=[("blk", "a")])
        phi.replace_operands({"a": 9})
        assert phi.incomings == [("blk", 9)]

    def test_copy_is_deep_enough(self):
        inst = Instruction(Opcode.PHI, dst="p", incomings=[("blk", "a")])
        clone = inst.copy()
        clone.incomings.append(("blk2", "b"))
        assert len(inst.incomings) == 1

    def test_copy_does_not_share_pc(self):
        inst = Instruction(Opcode.ADD, dst="x", args=(1, 2))
        inst.pc = 0x40
        assert inst.copy().pc == -1


class TestBlocksAndFunctions:
    def test_terminator_required(self):
        function = Function("f")
        block = function.add_block("entry")
        block.instructions.append(Instruction(Opcode.ADD, dst="x", args=(1, 2)))
        with pytest.raises(IRError):
            _ = block.terminator

    def test_phis_are_prefix(self, sum_loop):
        module, _, _ = sum_loop
        loop = module.function("main").block("loop")
        assert len(loop.phis()) == 2
        assert len(loop.non_phi_instructions()) == len(loop.instructions) - 2

    def test_duplicate_block_rejected(self):
        function = Function("f")
        function.add_block("b")
        with pytest.raises(IRError):
            function.add_block("b")

    def test_predecessors(self, sum_loop):
        module, _, _ = sum_loop
        preds = module.function("main").predecessors()
        assert sorted(preds["loop"]) == ["entry", "loop"]
        assert preds["entry"] == []
        assert preds["done"] == ["loop"]

    def test_fresh_register_avoids_collisions(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        fresh = function.fresh_register("acc")
        assert function.defining_instruction(fresh) is None

    def test_insert_before_terminator(self, sum_loop):
        module, _, _ = sum_loop
        block = module.function("main").block("entry")
        new = Instruction(Opcode.CONST, dst="c", args=(1,))
        block.insert_before_terminator([new])
        assert block.instructions[-2] is new
        assert block.instructions[-1].is_terminator


class TestModulePCs:
    def test_finalize_assigns_monotonic_pcs(self, sum_loop):
        module, _, _ = sum_loop
        pcs = [inst.pc for inst in module.function("main").instructions()]
        assert pcs == sorted(pcs)
        assert all(pc % PC_STRIDE == 0 for pc in pcs)
        assert pcs[0] == FUNC_ALIGN

    def test_instruction_at_roundtrip(self, sum_loop):
        module, _, _ = sum_loop
        for inst in module.function("main").instructions():
            assert module.instruction_at(inst.pc) is inst
            assert inst in module.block_at(inst.pc).instructions

    def test_unknown_pc_raises(self, sum_loop):
        module, _, _ = sum_loop
        with pytest.raises(IRError):
            module.instruction_at(0x3)

    def test_load_pcs(self, sum_loop):
        module, _, _ = sum_loop
        loads = module.load_pcs()
        assert len(loads) == 1
        assert module.instruction_at(loads[0]).op is Opcode.LOAD

    def test_unfinalized_module_guard(self):
        module = Module("m")
        with pytest.raises(IRError):
            module.instruction_at(0)

    def test_two_functions_get_disjoint_pc_ranges(self):
        module, _, _ = build_sum_loop()
        # Add a second function and re-finalize.
        from repro.ir.builder import IRBuilder

        b = IRBuilder(module)
        b.function("aux")
        blk = b.block("entry")
        b.at(blk)
        b.ret(0)
        module.finalize()
        main_pcs = {i.pc for i in module.function("main").instructions()}
        aux_pcs = {i.pc for i in module.function("aux").instructions()}
        assert not main_pcs & aux_pcs
