"""Unit tests for CFG utilities: orders, dominators, def-use maps."""

from repro.analysis.cfg import (
    definitions_map,
    dominates,
    immediate_dominators,
    predecessors_map,
    reverse_postorder,
    successors_map,
)
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module


def build_diamond():
    """entry -> (left | right) -> join -> exit."""
    module = Module("d")
    b = IRBuilder(module)
    b.function("f", params=["c"])
    entry, left, right, join, exit_ = b.blocks(
        "entry", "left", "right", "join", "exit"
    )
    b.at(entry)
    b.br("c", left, right)
    b.at(left)
    x1 = b.add(1, 0, name="x1")
    b.jmp(join)
    b.at(right)
    x2 = b.add(2, 0, name="x2")
    b.jmp(join)
    b.at(join)
    x = b.phi([(left, x1), (right, x2)], name="x")
    b.jmp(exit_)
    b.at(exit_)
    b.ret(x)
    module.finalize()
    return module


class TestOrders:
    def test_rpo_starts_at_entry(self, sum_loop):
        module, _, _ = sum_loop
        order = reverse_postorder(module.function("main"))
        assert order[0] == "entry"
        assert set(order) == {"entry", "loop", "done"}

    def test_rpo_respects_diamond(self):
        function = build_diamond().function("f")
        order = reverse_postorder(function)
        assert order.index("entry") < order.index("left")
        assert order.index("left") < order.index("join")
        assert order.index("right") < order.index("join")
        assert order[-1] == "exit"

    def test_unreachable_blocks_excluded(self):
        module = Module("u")
        b = IRBuilder(module)
        b.function("f")
        entry, dead = b.blocks("entry", "dead")
        b.at(entry)
        b.ret(0)
        b.at(dead)
        b.ret(1)
        module.finalize()
        assert reverse_postorder(module.function("f")) == ["entry"]

    def test_successors_predecessors_agree(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        successors = successors_map(function)
        predecessors = predecessors_map(function)
        for src, dsts in successors.items():
            for dst in dsts:
                assert src in predecessors[dst]


class TestDominators:
    def test_diamond_idoms(self):
        function = build_diamond().function("f")
        idom = immediate_dominators(function)
        assert idom["entry"] is None
        assert idom["left"] == "entry"
        assert idom["right"] == "entry"
        assert idom["join"] == "entry"
        assert idom["exit"] == "join"

    def test_loop_idoms(self, sum_loop):
        module, _, _ = sum_loop
        idom = immediate_dominators(module.function("main"))
        assert idom["loop"] == "entry"
        assert idom["done"] == "loop"

    def test_dominates_reflexive_and_transitive(self):
        function = build_diamond().function("f")
        idom = immediate_dominators(function)
        assert dominates(idom, "entry", "exit")
        assert dominates(idom, "join", "join")
        assert not dominates(idom, "left", "exit")

    def test_nested_loop_dominance(self, nested_indirect):
        module, _, _ = nested_indirect
        idom = immediate_dominators(module.function("main"))
        assert dominates(idom, "outer_h", "inner_h")
        assert dominates(idom, "inner_h", "outer_latch")


class TestDefUse:
    def test_definitions_map_covers_all_dsts(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        definitions = definitions_map(function)
        for inst in function.instructions():
            if inst.dst is not None:
                assert definitions[inst.dst] is inst
