"""Unit tests for the line-stride-aware outer-sweep step (§3.5 sweep with
redundant same-line prefetches elided)."""

from repro.analysis.loops import find_loops, induction_variables
from repro.analysis.slices import extract_load_slice
from repro.core.site import InjectionSite
from repro.core.hints import HintSet, PrefetchHint
from repro.ir.opcodes import Opcode
from repro.passes.aptget_pass import AptGetPass
from repro.passes.inject import _sweep_line_step
from repro.workloads.hashjoin import HashJoinWorkload
from tests.conftest import build_nested_indirect


def setup_hj(epb=8):
    workload = HashJoinWorkload(
        epb, "NPO", table_entries=1 << 14, probes=1_000
    )
    module, space = workload.build()
    function = module.function("main")
    loops = find_loops(function)
    inner = next(l for l in loops if l.header == "inner_h")
    load = next(
        inst
        for inst in function.instructions()
        if inst.op is Opcode.LOAD and inst.dst == "candidate"
    )
    iv = next(
        v for v in induction_variables(function, inner) if v.register == "slot"
    )
    return module, function, load, iv


class TestSweepStep:
    def test_linear_bucket_scan_steps_by_line(self):
        module, function, load, iv = setup_hj()
        load_slice = extract_load_slice(function, load)
        step = _sweep_line_step(function, load, load_slice, iv)
        assert step == 8  # 8-byte entries: 8 slots per 64B line

    def test_indirect_address_steps_by_one(self):
        module, _, _ = build_nested_indirect()
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        load = next(
            inst
            for inst in function.instructions()
            if inst.op is Opcode.LOAD and inst.dst == "t.v"
        )
        iv = next(
            v
            for v in induction_variables(function, inner)
            if v.register == "iv2"
        )
        load_slice = extract_load_slice(function, load)
        assert _sweep_line_step(function, load, load_slice, iv) == 1

    def test_wide_elements_step_one(self):
        """64-byte elements: every iteration is a new line -> step 1."""
        from repro.workloads.bfs import BFSWorkload
        from repro.workloads.graphs import synthetic_dataset

        workload = BFSWorkload(synthetic_dataset(500, 4, seed=9))
        module, _ = workload.build()
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        load = next(
            inst
            for inst in function.instructions()
            if inst.op is Opcode.LOAD and inst.dst == "dv"
        )
        iv = next(
            v for v in induction_variables(function, inner) if v.register == "j"
        )
        load_slice = extract_load_slice(function, load)
        assert _sweep_line_step(function, load, load_slice, iv) == 1

    def test_pass_emits_single_prefetch_per_bucket(self):
        workload = HashJoinWorkload(
            8, "NPO", table_entries=1 << 14, probes=1_000
        )
        module, _ = workload.build()
        load_pc = next(
            inst.pc
            for inst in module.function("main").instructions()
            if inst.op is Opcode.LOAD and inst.dst == "candidate"
        )
        hints = HintSet.from_hints(
            [
                PrefetchHint(
                    load_pc=load_pc,
                    function="main",
                    distance=4,
                    site=InjectionSite.OUTER,
                    outer_distance=4,
                    sweep=8,
                )
            ]
        )
        report = AptGetPass(hints).run(module)
        assert report.injection_count == 1
        assert report.injected[0]["prefetches"] == 1  # line-deduped

    def test_pass_sweeps_indirect_fully(self):
        module, _, _ = build_nested_indirect(outer=30, inner=8)
        load_pc = next(
            inst.pc
            for inst in module.function("main").instructions()
            if inst.dst == "t.v"
        )
        hints = HintSet.from_hints(
            [
                PrefetchHint(
                    load_pc=load_pc,
                    function="main",
                    distance=4,
                    site=InjectionSite.OUTER,
                    outer_distance=4,
                    sweep=4,
                )
            ]
        )
        report = AptGetPass(hints).run(module)
        assert report.injected[0]["prefetches"] == 4
