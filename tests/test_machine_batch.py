"""Tests for the batched multi-config runner (`repro.machine.batch`):
bit-identity against per-cell sequential runs, divergence analysis and
fallback triggers, shared-space validation, and the CALL/RET plumbing."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import IRError, Module
from repro.ir.verifier import verify_module
from repro.machine.batch import (
    BatchCell,
    BatchDivergence,
    BatchMachine,
    analyze_modules,
    run_batch,
)
from repro.machine.config import MachineConfig, paper_like_memory
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.workloads.registry import make_workload


DISTANCES = (2, 4, 8, 16)


def fast_config(memory=None) -> MachineConfig:
    return MachineConfig(memory=memory or paper_like_memory(), engine="fast")


def build_kernel(n=80, distance=None, branchy=False):
    """A small gather loop (optionally with a prefetch at ``distance``)."""
    space = AddressSpace()
    b_seg = space.allocate("B", [(i * 7) % n for i in range(n)], elem_size=8)
    t_seg = space.allocate("T", [i * 3 + 1 for i in range(n)], elem_size=8)
    module = Module("kernel")
    b = IRBuilder(module)
    b.function("main")
    entry, loop, done = b.blocks("entry", "loop", "done")
    b.at(entry)
    b.jmp(loop)
    b.at(loop)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 0)], name="acc")
    ba = b.gep(b_seg.base, i, 8)
    idx = b.load(ba, name="idx")
    ta = b.gep(t_seg.base, idx, 8)
    if distance is not None:
        adv = b.add(i, distance, name="adv")
        clamped = b.min(adv, n - 1, name="clamped")
        pa = b.gep(b_seg.base, clamped, 8)
        pidx = b.load(pa, name="pidx")
        pt = b.gep(t_seg.base, pidx, 8)
        b.prefetch(pt)
    value = b.load(ta, name="value")
    if branchy:
        big = b.lt(50, value, name="big")
        bonus = b.select(big, 2, 1, name="bonus")
        acc2 = b.add(acc, bonus, name="acc2")
    else:
        acc2 = b.add(acc, value, name="acc2")
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, loop, i2)
    b.add_incoming(acc, loop, acc2)
    cond = b.lt(i2, n, name="cond")
    b.br(cond, loop, done)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    verify_module(module, strict=True)
    return module, space


def assert_identical(outcome, cells, function="main", args=()):
    """Every batch result must be bit-identical to a fresh sequential
    run of the same cell (fresh module+space so caches start cold)."""
    rebuilt = [
        Machine(module, space, config=cell.config).run(function, args=args)
        for cell, (module, space) in zip(cells.cells_spec, cells.rebuilds)
    ]
    for index, (seq, bat) in enumerate(zip(rebuilt, outcome.results)):
        assert bat.value == seq.value, f"cell {index} value"
        assert bat.counters.as_dict() == seq.counters.as_dict(), (
            f"cell {index} counters"
        )


class _CellSet:
    """Cells plus an identical rebuild for the sequential comparison."""

    def __init__(self, builders_and_configs):
        self.cells_spec = []
        self.rebuilds = []
        for build, config in builders_and_configs:
            module, space = build()
            self.cells_spec.append(BatchCell(module, space, config))
            self.rebuilds.append(build())

    @property
    def cells(self):
        return self.cells_spec


class TestUniformBatches:
    def test_cache_scale_sweep_bit_identical(self):
        memory = paper_like_memory()
        cells = _CellSet(
            [
                (lambda: build_kernel(), fast_config(memory.scaled(s)))
                for s in (1, 2, 4, 8)
            ]
        )
        outcome = run_batch(cells.cells)
        assert outcome.batched
        assert_identical(outcome, cells)

    def test_identical_cells_still_batch(self):
        cells = _CellSet([(build_kernel, fast_config()) for _ in range(3)])
        outcome = run_batch(cells.cells)
        assert outcome.batched
        assert_identical(outcome, cells)

    def test_branchy_kernel_uniform_control_flow(self):
        memory = paper_like_memory()
        cells = _CellSet(
            [
                (
                    lambda: build_kernel(branchy=True),
                    fast_config(memory.scaled(s)),
                )
                for s in (1, 4)
            ]
        )
        outcome = run_batch(cells.cells)
        assert outcome.batched
        assert_identical(outcome, cells)


class TestDivergentImmediates:
    def test_distance_sweep_bit_identical(self):
        cells = _CellSet(
            [
                (lambda d=d: build_kernel(distance=d), fast_config())
                for d in DISTANCES
            ]
        )
        outcome = run_batch(cells.cells)
        assert outcome.batched
        assert_identical(outcome, cells)

    def test_aj_injected_distance_sweep(self):
        def build(d):
            module, space = make_workload("micro-tiny").build()
            AinsworthJonesPass(AinsworthJonesConfig(distance=d)).run(module)
            return module, space

        cells = _CellSet(
            [(lambda d=d: build(d), fast_config()) for d in DISTANCES]
        )
        outcome = run_batch(cells.cells)
        assert outcome.batched
        assert_identical(outcome, cells)

    def test_divergent_registers_detected(self):
        modules = []
        for d in (4, 8):
            module, _ = build_kernel(distance=d)
            modules.append(module)
        plans = analyze_modules(modules)
        divergent = plans["main"].divergent
        # The prefetch slice computed from the distance is divergent...
        assert "adv" in divergent
        assert "clamped" in divergent
        assert "pidx" in divergent
        # ...but the demand stream and induction variable stay uniform.
        assert "i" not in divergent
        assert "idx" not in divergent
        assert "acc2" not in divergent


class TestFallbacks:
    def test_single_cell_runs_sequentially(self):
        module, space = build_kernel()
        outcome = run_batch([BatchCell(module, space, fast_config())])
        assert not outcome.batched
        assert outcome.reason == "single cell"
        assert len(outcome.results) == 1

    def test_structural_misalignment_falls_back(self):
        def build(d):
            module, space = make_workload("micro-tiny").build()
            AinsworthJonesPass(AinsworthJonesConfig(distance=d)).run(module)
            return module, space

        # AJ folds the loop increment into the advance at distance==1,
        # so the d=1 module has one fewer instruction: misaligned.
        cells = _CellSet(
            [(lambda d=d: build(d), fast_config()) for d in (1, 2)]
        )
        outcome = run_batch(cells.cells)
        assert not outcome.batched
        assert "instruction counts differ" in outcome.reason
        assert_identical(outcome, cells)

    def test_divergent_branch_condition_falls_back(self):
        def build(limit):
            module = Module("m")
            b = IRBuilder(module)
            b.function("main")
            entry, loop, done = b.blocks("entry", "loop", "done")
            b.at(entry)
            b.jmp(loop)
            b.at(loop)
            i = b.phi([(entry, 0)], name="i")
            i2 = b.add(i, 1, name="i2")
            b.add_incoming(i, loop, i2)
            cond = b.lt(i2, limit, name="cond")
            b.br(cond, loop, done)
            b.at(done)
            b.ret(i2)
            module.finalize()
            return module, AddressSpace()

        cells = _CellSet(
            [(lambda n=n: build(n), fast_config()) for n in (10, 20)]
        )
        outcome = run_batch(cells.cells)
        assert not outcome.batched
        assert "divergent branch condition" in outcome.reason
        assert_identical(outcome, cells)
        assert [r.value for r in outcome.results] == [10, 20]

    def test_divergent_store_falls_back(self):
        def build(value):
            space = AddressSpace()
            seg = space.allocate("S", [0] * 8, elem_size=8)
            module = Module("m")
            b = IRBuilder(module)
            b.function("main")
            b.at(b.block("entry"))
            b.store(seg.base, value)
            loaded = b.load(seg.base, name="loaded")
            b.ret(loaded)
            module.finalize()
            return module, space

        cells = _CellSet(
            [(lambda v=v: build(v), fast_config()) for v in (7, 9)]
        )
        outcome = run_batch(cells.cells)
        assert not outcome.batched
        assert "divergent store" in outcome.reason
        assert_identical(outcome, cells)

    def test_divergent_work_amount_falls_back(self):
        def build(amount):
            module = Module("m")
            b = IRBuilder(module)
            b.function("main")
            b.at(b.block("entry"))
            b.work(amount)
            b.ret(0)
            module.finalize()
            return module, AddressSpace()

        cells = _CellSet(
            [(lambda a=a: build(a), fast_config()) for a in (5, 6)]
        )
        outcome = run_batch(cells.cells)
        assert not outcome.batched
        assert "divergent WORK amount" in outcome.reason
        assert_identical(outcome, cells)

    def test_cost_param_mismatch_falls_back(self):
        module_a, space_a = build_kernel()
        module_b, space_b = build_kernel()
        memory = paper_like_memory()
        outcome = run_batch(
            [
                BatchCell(module_a, space_a, fast_config(memory)),
                BatchCell(
                    module_b,
                    space_b,
                    MachineConfig(memory=memory, engine="fast", alu_cost=2),
                ),
            ]
        )
        assert not outcome.batched
        assert "alu_cost differs" in outcome.reason

    def test_space_mismatch_falls_back(self):
        def build(values):
            space = AddressSpace()
            seg = space.allocate("B", list(values), elem_size=8)
            module = Module("m")
            b = IRBuilder(module)
            b.function("main")
            b.at(b.block("entry"))
            loaded = b.load(seg.base, name="loaded")
            b.ret(loaded)
            module.finalize()
            return module, space

        cells = _CellSet(
            [
                (lambda: build([1, 2, 3]), fast_config()),
                (lambda: build([1, 2, 4]), fast_config()),
            ]
        )
        outcome = run_batch(cells.cells)
        assert not outcome.batched
        assert "initial contents differ" in outcome.reason
        assert_identical(outcome, cells)


class TestCalls:
    def _build(self, distance):
        space = AddressSpace()
        seg = space.allocate(
            "T", [(i * 5) % 97 for i in range(128)], elem_size=8
        )
        module = Module("m")
        b = IRBuilder(module)
        b.function("probe", params=["i"])
        b.at(b.block("entry"))
        adv = b.add("i", distance, name="adv")
        clamped = b.min(adv, 127, name="clamped")
        pa = b.gep(seg.base, clamped, 8)
        b.prefetch(pa)
        ta = b.gep(seg.base, "i", 8)
        value = b.load(ta, name="value")
        offset = b.add(value, distance, name="offset")
        b.ret(offset)

        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        acc = b.phi([(entry, 0)], name="acc")
        value = b.call("probe", [i], name="value")
        masked = b.mul(value, 0, name="masked")
        acc2 = b.add(acc, masked, name="acc2")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        b.add_incoming(acc, loop, acc2)
        cond = b.lt(i2, 64, name="cond")
        b.br(cond, loop, done)
        b.at(done)
        b.ret(acc2)
        module.finalize()
        verify_module(module, strict=True)
        return module, space

    def test_divergent_callee_return_bit_identical(self):
        # probe's return value depends on the per-cell distance, so the
        # interprocedural fixpoint must mark the CALL dst divergent; the
        # caller then masks it so control flow stays uniform.
        cells = _CellSet(
            [(lambda d=d: self._build(d), fast_config()) for d in (3, 9)]
        )
        plans = analyze_modules([c.module for c in cells.cells])
        assert plans["probe"].ret_divergent
        assert "value" in plans["main"].divergent
        outcome = run_batch(cells.cells)
        assert outcome.batched
        assert_identical(outcome, cells)


class TestBatchMachineSurface:
    def test_unknown_function_raises(self):
        module_a, space_a = build_kernel()
        module_b, space_b = build_kernel()
        machine = BatchMachine(
            [
                BatchCell(module_a, space_a, fast_config()),
                BatchCell(module_b, space_b, fast_config()),
            ]
        )
        with pytest.raises(IRError, match="no function"):
            machine.run("nope")

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchMachine([])

    def test_run_twice_continues_clocks(self):
        """Counters accumulate across runs exactly as Machine's do."""
        module_a, space_a = build_kernel()
        module_b, space_b = build_kernel()
        memory = paper_like_memory()
        machine = BatchMachine(
            [
                BatchCell(module_a, space_a, fast_config(memory)),
                BatchCell(module_b, space_b, fast_config(memory.scaled(4))),
            ]
        )
        first = machine.run()
        second = machine.run()
        # Second run sees warm caches: strictly fewer or equal cycles.
        for f, s in zip(first, second):
            assert s.counters.cycles <= f.counters.cycles

        seq_module, seq_space = build_kernel()
        seq = Machine(seq_module, seq_space, config=fast_config(memory))
        seq_first = seq.run()
        seq_second = seq.run()
        assert first[0].counters.as_dict() == seq_first.counters.as_dict()
        assert second[0].counters.as_dict() == seq_second.counters.as_dict()
