"""The stable v1 ``repro.api`` surface: payload round-trips (property
tested), typed execute() dispatch, engine knobs, deprecation shims, and
the engine-aware artifact-key regression test (two engines must be able
to share one cache directory without clobbering each other)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.machine.config import ENGINES
from repro.service.api import TuningService

FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", min_size=1, max_size=20
)
_scales = st.sampled_from(["tiny", "small", "full"])
_engines = st.none() | st.sampled_from(list(ENGINES))


def _roundtrip(obj):
    """to_payload -> json -> from_payload must reproduce the object."""
    rebuilt = type(obj).from_payload(json.loads(json.dumps(obj.to_payload())))
    assert rebuilt == obj
    assert type(obj).from_json(obj.to_json()) == obj


class TestRequestRoundTrips:
    @FAST
    @given(workload=_names, scale=_scales, engine=_engines)
    def test_profile_request(self, workload, scale, engine):
        _roundtrip(
            api.ProfileRequest(workload=workload, scale=scale, engine=engine)
        )

    @FAST
    @given(
        workload=_names,
        scale=_scales,
        engine=_engines,
        scheme=st.sampled_from(["baseline", "aj", "apt-get"]),
        distance=st.integers(min_value=1, max_value=512),
    )
    def test_run_request(self, workload, scale, engine, scheme, distance):
        _roundtrip(
            api.RunRequest(
                workload=workload,
                scale=scale,
                scheme=scheme,
                distance=distance,
                engine=engine,
            )
        )

    @FAST
    @given(
        workload=_names,
        scale=_scales,
        engine=_engines,
        fixed=st.none() | st.integers(min_value=1, max_value=512),
    )
    def test_site_report_request(self, workload, scale, engine, fixed):
        _roundtrip(
            api.SiteReportRequest(
                workload=workload,
                scale=scale,
                fixed_distance=fixed,
                engine=engine,
            )
        )

    @FAST
    @given(
        scale=_scales,
        engine=_engines,
        aj=st.integers(min_value=1, max_value=512),
        workloads=st.none() | st.lists(_names, max_size=4).map(tuple),
        jobs=st.none() | st.integers(min_value=1, max_value=8),
    )
    def test_suite_request(self, scale, engine, aj, workloads, jobs):
        request = api.SuiteRequest(
            scale=scale,
            aj_distance=aj,
            workloads=workloads,
            jobs=jobs,
            engine=engine,
        )
        _roundtrip(request)
        # Lists normalize to tuples so JSON round-trips compare equal.
        if workloads is not None:
            assert isinstance(
                api.SuiteRequest(workloads=list(workloads)).workloads, tuple
            )

    def test_request_validation(self):
        with pytest.raises(ValueError):
            api.RunRequest(workload="x", scheme="turbo")
        with pytest.raises(ValueError):
            api.ProfileRequest(workload="x", engine="jit")
        # Keyword-only: positional construction is a v1 contract violation.
        with pytest.raises(TypeError):
            api.ProfileRequest("BFS")  # noqa: B018


class TestExecute:
    def test_run_result_round_trips(self):
        service = TuningService()
        result = api.run("micro-tiny", "tiny", service=service)
        assert isinstance(result, api.RunResult)
        assert result.engine in ENGINES
        assert result.cycles > 0
        _roundtrip(result)
        assert result.scheme_run().result.value == result.value

    def test_profile_result_round_trips(self):
        service = TuningService()
        result = api.profile("micro-tiny", "tiny", service=service)
        _roundtrip(result)
        assert len(result.hint_set()) >= 1
        assert result.execution_profile().counters.cycles > 0

    def test_site_report_result_round_trips(self):
        service = TuningService()
        result = api.site_report("micro-tiny", "tiny", service=service)
        _roundtrip(result)
        reports = result.reports()
        assert reports and all(r.issued >= 0 for r in reports.values())

    def test_suite_result_round_trips(self):
        service = TuningService()
        result = api.compare_suite(
            "tiny", workloads=("micro-tiny",), service=service
        )
        _roundtrip(result)
        comparisons = result.comparisons()
        assert comparisons["micro-tiny"].error is None
        assert set(comparisons["micro-tiny"].runs) == {
            "baseline", "aj", "apt-get"
        }

    def test_execute_dispatch_on_service(self):
        service = TuningService()
        result = service.execute(
            api.RunRequest(workload="micro-tiny", scale="tiny")
        )
        assert isinstance(result, api.RunResult)

    def test_execute_rejects_unknown_request(self):
        with pytest.raises(TypeError):
            api.execute(object(), service=TuningService())

    def test_engines_agree_through_api(self):
        service = TuningService()
        runs = {
            engine: api.run(
                "micro-tiny", "tiny", engine=engine, service=service
            )
            for engine in ENGINES
        }
        reference = runs["reference"]
        for engine, result in runs.items():
            assert result.value == reference.value, engine
            assert result.counters == reference.counters, engine


class TestDeprecationShims:
    def test_name_keyword_warns_but_works(self):
        service = TuningService()
        with pytest.warns(DeprecationWarning, match="name="):
            _, hints = service.profile(name="micro-tiny", scale="tiny")
        assert len(hints) >= 1
        with pytest.warns(DeprecationWarning):
            run = service.baseline(name="micro-tiny", scale="tiny")
        assert run.scheme == "baseline"

    def test_name_and_workload_together_rejected(self):
        with pytest.raises(TypeError):
            TuningService().profile("micro-tiny", name="micro-tiny")

    def test_workload_missing_rejected(self):
        with pytest.raises(TypeError):
            TuningService().profile()


class TestEngineAwareCacheKeys:
    def test_two_engines_share_one_cache_dir(self, tmp_path):
        """Engine-aware keys: fast and reference runs in the same cache
        directory must produce distinct artifacts (no clobbering), and a
        rehydrating service must hit both."""
        first = TuningService(cache_dir=tmp_path)
        fast = first.run("micro-tiny", "tiny", engine="fast")
        entries_after_fast = first.store.stats()["entries"]
        reference = first.run("micro-tiny", "tiny", engine="reference")
        entries_after_both = first.store.stats()["entries"]
        assert entries_after_both == 2 * entries_after_fast
        # Bit-identical engines: same payload under different keys.
        assert (
            fast.result.counters.as_dict()
            == reference.result.counters.as_dict()
        )

        warm = TuningService(cache_dir=tmp_path)
        warm.run("micro-tiny", "tiny", engine="fast")
        warm.run("micro-tiny", "tiny", engine="reference")
        counters = warm.metrics.counters()
        assert counters.get("cache.hits", 0) == 2
        assert counters.get("cache.misses", 0) == 0

    def test_keys_name_engine_and_mem_fingerprint(self):
        service = TuningService()
        key = service._key("run", "w", "tiny", scheme="baseline")
        params = dict(key.params)
        assert params["engine"] == service.config.engine
        assert isinstance(params["mem"], str) and len(params["mem"]) >= 8

    def test_mem_geometry_changes_key(self):
        from dataclasses import replace

        from repro.machine.config import MachineConfig, paper_like_memory

        base = TuningService()
        scaled = TuningService(
            machine_config=MachineConfig(memory=paper_like_memory().scaled(4))
        )
        key_a = base._key("run", "w", "tiny", scheme="baseline")
        key_b = scaled._key("run", "w", "tiny", scheme="baseline")
        assert key_a != key_b
        assert dict(key_a.params)["mem"] != dict(key_b.params)["mem"]


class TestTopLevelReExports:
    def test_v1_surface_importable_from_repro(self):
        import repro

        for name in (
            "ProfileRequest", "RunRequest", "SiteReportRequest",
            "SuiteRequest", "RunResult", "execute", "get_service",
            "TuningService", "ENGINES", "API_VERSION",
        ):
            assert hasattr(repro, name), name
