"""The stable v1 ``repro.api`` surface: payload round-trips (property
tested), typed execute() dispatch, engine knobs, deprecation shims, and
the engine-aware artifact-key regression test (two engines must be able
to share one cache directory without clobbering each other)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.machine.config import ENGINES
from repro.service.api import TuningService

FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", min_size=1, max_size=20
)
_scales = st.sampled_from(["tiny", "small", "full"])
_engines = st.none() | st.sampled_from(list(ENGINES))


def _roundtrip(obj):
    """to_payload -> json -> from_payload must reproduce the object."""
    rebuilt = type(obj).from_payload(json.loads(json.dumps(obj.to_payload())))
    assert rebuilt == obj
    assert type(obj).from_json(obj.to_json()) == obj


class TestRequestRoundTrips:
    @FAST
    @given(workload=_names, scale=_scales, engine=_engines)
    def test_profile_request(self, workload, scale, engine):
        _roundtrip(
            api.ProfileRequest(workload=workload, scale=scale, engine=engine)
        )

    @FAST
    @given(
        workload=_names,
        scale=_scales,
        engine=_engines,
        scheme=st.sampled_from(["baseline", "aj", "apt-get"]),
        distance=st.integers(min_value=1, max_value=512),
    )
    def test_run_request(self, workload, scale, engine, scheme, distance):
        _roundtrip(
            api.RunRequest(
                workload=workload,
                scale=scale,
                scheme=scheme,
                distance=distance,
                engine=engine,
            )
        )

    @FAST
    @given(
        workload=_names,
        scale=_scales,
        engine=_engines,
        fixed=st.none() | st.integers(min_value=1, max_value=512),
    )
    def test_site_report_request(self, workload, scale, engine, fixed):
        _roundtrip(
            api.SiteReportRequest(
                workload=workload,
                scale=scale,
                fixed_distance=fixed,
                engine=engine,
            )
        )

    @FAST
    @given(
        scale=_scales,
        engine=_engines,
        aj=st.integers(min_value=1, max_value=512),
        workloads=st.none() | st.lists(_names, max_size=4).map(tuple),
        jobs=st.none() | st.integers(min_value=1, max_value=8),
    )
    def test_suite_request(self, scale, engine, aj, workloads, jobs):
        request = api.SuiteRequest(
            scale=scale,
            aj_distance=aj,
            workloads=workloads,
            jobs=jobs,
            engine=engine,
        )
        _roundtrip(request)
        # Lists normalize to tuples so JSON round-trips compare equal.
        if workloads is not None:
            assert isinstance(
                api.SuiteRequest(workloads=list(workloads)).workloads, tuple
            )

    @FAST
    @given(
        workload=_names,
        scale=_scales,
        engine=_engines,
        schemes=st.sets(
            st.sampled_from(list(api.SWEEP_SCHEMES)), min_size=1
        ),
        distances=st.lists(
            st.integers(min_value=1, max_value=128), min_size=1, max_size=6
        ),
        cache_scales=st.lists(
            st.integers(min_value=1, max_value=8), min_size=1, max_size=4
        ),
    )
    def test_sweep_request(
        self, workload, scale, engine, schemes, distances, cache_scales
    ):
        request = api.SweepRequest(
            workload=workload,
            scale=scale,
            schemes=tuple(schemes),
            distances=tuple(distances),
            cache_scales=tuple(cache_scales),
            engine=engine,
        )
        _roundtrip(request)
        # Axes canonicalize: sorted, deduped, tuples.
        assert request.schemes == tuple(sorted(schemes))
        assert request.distances == (
            tuple(sorted(set(distances))) if "aj" in schemes else ()
        )
        assert request.cache_scales == tuple(sorted(set(cache_scales)))
        # The expanded grid is exactly one cell per axis combination.
        cells = request.cells()
        per_scheme = {s: 0 for s in request.schemes}
        for scheme, distance, cache_scale in cells:
            per_scheme[scheme] += 1
            assert (distance is None) == (scheme != "aj")
            assert cache_scale in request.cache_scales
        for scheme, count in per_scheme.items():
            expected = len(request.cache_scales) * (
                len(request.distances) if scheme == "aj" else 1
            )
            assert count == expected

    def test_sweep_request_axis_order_is_irrelevant(self):
        a = api.SweepRequest(
            workload="w",
            schemes=("baseline", "aj"),
            distances=(8, 4, 4),
            cache_scales=(2, 1),
        )
        b = api.SweepRequest(
            workload="w",
            schemes=("aj", "baseline"),
            distances=(4, 8),
            cache_scales=(1, 2),
        )
        assert a == b
        assert a.cells() == b.cells()

    def test_sweep_request_validation(self):
        with pytest.raises(ValueError, match="bare string"):
            api.SweepRequest(workload="w", schemes="aj")
        with pytest.raises(ValueError, match="unknown sweep scheme"):
            api.SweepRequest(workload="w", schemes=("turbo",))
        with pytest.raises(ValueError):
            api.SweepRequest(workload="w", schemes=())
        with pytest.raises(ValueError):  # aj without distances
            api.SweepRequest(
                workload="w", schemes=("aj",), distances=()
            )
        with pytest.raises(ValueError):  # scales must be >= 1
            api.SweepRequest(workload="w", cache_scales=(0,))
        # Distances are irrelevant without "aj": they collapse to ().
        request = api.SweepRequest(
            workload="w", schemes=("baseline",), distances=(4, 8)
        )
        assert request.distances == ()

    def test_request_validation(self):
        with pytest.raises(ValueError):
            api.RunRequest(workload="x", scheme="turbo")
        with pytest.raises(ValueError):
            api.ProfileRequest(workload="x", engine="jit")
        # Keyword-only: positional construction is a v1 contract violation.
        with pytest.raises(TypeError):
            api.ProfileRequest("BFS")  # noqa: B018


class TestExecute:
    def test_run_result_round_trips(self):
        service = TuningService()
        result = api.run("micro-tiny", "tiny", service=service)
        assert isinstance(result, api.RunResult)
        assert result.engine in ENGINES
        assert result.cycles > 0
        _roundtrip(result)
        assert result.scheme_run().result.value == result.value

    def test_profile_result_round_trips(self):
        service = TuningService()
        result = api.profile("micro-tiny", "tiny", service=service)
        _roundtrip(result)
        assert len(result.hint_set()) >= 1
        assert result.execution_profile().counters.cycles > 0

    def test_site_report_result_round_trips(self):
        service = TuningService()
        result = api.site_report("micro-tiny", "tiny", service=service)
        _roundtrip(result)
        reports = result.reports()
        assert reports and all(r.issued >= 0 for r in reports.values())

    def test_suite_result_round_trips(self):
        service = TuningService()
        result = api.compare_suite(
            "tiny", workloads=("micro-tiny",), service=service
        )
        _roundtrip(result)
        comparisons = result.comparisons()
        assert comparisons["micro-tiny"].error is None
        assert set(comparisons["micro-tiny"].runs) == {
            "baseline", "aj", "apt-get"
        }

    def test_execute_dispatch_on_service(self):
        service = TuningService()
        result = service.execute(
            api.RunRequest(workload="micro-tiny", scale="tiny")
        )
        assert isinstance(result, api.RunResult)

    def test_execute_rejects_unknown_request(self):
        with pytest.raises(TypeError):
            api.execute(object(), service=TuningService())

    def test_engines_agree_through_api(self):
        service = TuningService()
        runs = {
            engine: api.run(
                "micro-tiny", "tiny", engine=engine, service=service
            )
            for engine in ENGINES
        }
        reference = runs["reference"]
        for engine, result in runs.items():
            assert result.value == reference.value, engine
            assert result.counters == reference.counters, engine


class TestSweep:
    GRID = dict(schemes=("aj", "baseline"), distances=(2, 4), cache_scales=(1,))

    def test_sweep_result_round_trips(self):
        service = TuningService()
        result = api.sweep(
            "micro-tiny", "tiny", service=service, **self.GRID
        )
        assert isinstance(result, api.SweepResult)
        _roundtrip(result)
        # One cell per grid point, each carrying a rehydratable run.
        assert len(result.cells) == 3  # aj x {2,4} + baseline
        run = result.scheme_run("aj", distance=4)
        assert run.scheme == "aj-4"
        assert run.result.counters.cycles > 0
        cycles = result.cycles()
        assert set(cycles) == {
            ("aj", 2, 1), ("aj", 4, 1), ("baseline", None, 1)
        }

    def test_missing_cell_raises_keyerror(self):
        service = TuningService()
        result = api.sweep(
            "micro-tiny", "tiny", service=service, **self.GRID
        )
        with pytest.raises(KeyError):
            result.cell("aj", distance=99)

    def test_sweep_cells_match_single_runs(self):
        """Batched sweep cells are bit-identical with the sequential
        single-config API on the same configuration."""
        service = TuningService()
        result = api.sweep(
            "micro-tiny", "tiny", service=service,
            schemes=("aj",), distances=(4,), cache_scales=(1,),
        )
        single = api.run(
            "micro-tiny", "tiny", scheme="aj", distance=4,
            service=TuningService(),
        )
        swept = result.scheme_run("aj", distance=4)
        assert swept.result.value == single.value
        assert swept.result.counters.as_dict() == dict(single.counters)

    def test_sweep_cells_share_artifacts_with_single_runs(self, tmp_path):
        """Per-cell artifacts reuse the sequential run keys: a sweep
        primes the cache for single runs and vice versa."""
        service = TuningService(cache_dir=tmp_path)
        api.run(
            "micro-tiny", "tiny", scheme="aj", distance=4, service=service
        )
        payload = service.sweep(
            "micro-tiny", "tiny",
            schemes=("aj",), distances=(4, 8), cache_scales=(1,),
        )
        by_distance = {cell["distance"]: cell for cell in payload["cells"]}
        assert by_distance[4]["cached"]  # served from the single run
        assert not by_distance[8]["cached"]

    def test_sweep_dedup_key_is_order_insensitive(self):
        service = TuningService()
        a = api.SweepRequest(
            workload="w", schemes=("baseline", "aj"),
            distances=(8, 2), cache_scales=(2, 1),
        )
        b = api.SweepRequest(
            workload="w", schemes=("aj", "baseline"),
            distances=(2, 8, 8), cache_scales=(1, 2),
        )
        assert service.request_key(a) == service.request_key(b)
        different = api.SweepRequest(
            workload="w", schemes=("baseline", "aj"),
            distances=(8, 4), cache_scales=(2, 1),
        )
        assert service.request_key(a) != service.request_key(different)

    def test_second_sweep_is_fully_cached(self, tmp_path):
        first = TuningService(cache_dir=tmp_path)
        first.sweep("micro-tiny", "tiny", **self.GRID)
        warm = TuningService(cache_dir=tmp_path)
        payload = warm.sweep("micro-tiny", "tiny", **self.GRID)
        assert payload["execution"]["computed_cells"] == 0
        assert payload["execution"]["cached_cells"] == len(payload["cells"])
        assert all(cell["cached"] for cell in payload["cells"])


class TestLegacyNameKeywordRemoved:
    """The pre-v1 ``name=`` shims are retired: hard errors, not warnings."""

    def test_name_keyword_raises_with_migration_hint(self):
        service = TuningService()
        with pytest.raises(ValueError, match="pass workload="):
            service.profile(name="micro-tiny", scale="tiny")
        with pytest.raises(ValueError, match="legacy name="):
            service.baseline(name="micro-tiny", scale="tiny")

    def test_error_names_the_replacement_call(self):
        with pytest.raises(ValueError, match="'micro-tiny'"):
            TuningService().profile(name="micro-tiny")

    def test_name_and_workload_together_rejected(self):
        with pytest.raises(ValueError, match="name="):
            TuningService().profile("micro-tiny", name="micro-tiny")

    def test_workload_missing_rejected(self):
        with pytest.raises(TypeError, match="workload"):
            TuningService().profile()

    def test_no_deprecation_warning_machinery_left(self):
        import warnings

        service = TuningService()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run = service.baseline(workload="micro-tiny", scale="tiny")
        assert run.scheme == "baseline"


class TestEngineAwareCacheKeys:
    def test_two_engines_share_one_cache_dir(self, tmp_path):
        """Engine-aware keys: fast and reference runs in the same cache
        directory must produce distinct artifacts (no clobbering), and a
        rehydrating service must hit both."""
        first = TuningService(cache_dir=tmp_path)
        fast = first.run("micro-tiny", "tiny", engine="fast")
        entries_after_fast = first.store.stats()["entries"]
        reference = first.run("micro-tiny", "tiny", engine="reference")
        entries_after_both = first.store.stats()["entries"]
        assert entries_after_both == 2 * entries_after_fast
        # Bit-identical engines: same payload under different keys.
        assert (
            fast.result.counters.as_dict()
            == reference.result.counters.as_dict()
        )

        warm = TuningService(cache_dir=tmp_path)
        warm.run("micro-tiny", "tiny", engine="fast")
        warm.run("micro-tiny", "tiny", engine="reference")
        counters = warm.metrics.counters()
        assert counters.get("cache.hits", 0) == 2
        assert counters.get("cache.misses", 0) == 0

    def test_keys_name_engine_and_mem_fingerprint(self):
        service = TuningService()
        key = service._key("run", "w", "tiny", scheme="baseline")
        params = dict(key.params)
        assert params["engine"] == service.config.engine
        assert isinstance(params["mem"], str) and len(params["mem"]) >= 8

    def test_mem_geometry_changes_key(self):
        from dataclasses import replace

        from repro.machine.config import MachineConfig, paper_like_memory

        base = TuningService()
        scaled = TuningService(
            machine_config=MachineConfig(memory=paper_like_memory().scaled(4))
        )
        key_a = base._key("run", "w", "tiny", scheme="baseline")
        key_b = scaled._key("run", "w", "tiny", scheme="baseline")
        assert key_a != key_b
        assert dict(key_a.params)["mem"] != dict(key_b.params)["mem"]


class TestTopLevelReExports:
    def test_v1_surface_importable_from_repro(self):
        import repro

        for name in (
            "ProfileRequest", "RunRequest", "SiteReportRequest",
            "SuiteRequest", "RunResult", "execute", "get_service",
            "TuningService", "ENGINES", "API_VERSION",
        ):
            assert hasattr(repro, name), name
