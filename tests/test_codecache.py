"""The persistent AOT code cache: round-trips, keying, invalidation,
fallback, and the service/CLI integration."""

from __future__ import annotations

import pytest

from repro.machine import codecache
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.service.api import TuningService
from repro.service.store import config_fingerprint

from tests.conftest import build_indirect_loop, build_nested_indirect, tiny_memory


@pytest.fixture()
def cache_dir(tmp_path):
    path = str(tmp_path / "codecache")
    yield path
    codecache.forget(path)


def _config(cache: str | None) -> MachineConfig:
    return MachineConfig(memory=tiny_memory(), code_cache=cache)


def _observe(module, space, config, engine):
    machine = Machine(module, space, config=config, engine=engine)
    machine.enable_profiling(period=251)
    result = machine.run("main")
    return (
        result.value,
        result.counters.as_dict(),
        [tuple(s) for s in machine.sampler.samples],
        dict(machine.sampler.load_miss_counts),
    )


@pytest.mark.parametrize("engine", ["turbo", "translate"])
def test_roundtrip_bit_identical(cache_dir, engine):
    module, space, expected = build_nested_indirect()
    fresh = _observe(module, space, _config(None), engine)
    cold = _observe(module, space, _config(cache_dir), engine)
    warm = _observe(module, space, _config(cache_dir), engine)
    assert fresh[0] == expected
    assert cold == fresh
    assert warm == fresh
    cache = codecache.resolve(cache_dir)
    assert cache.misses == 1
    assert cache.hits == 1
    assert cache.invalidated == 0
    assert cache.store.stats()["by_kind"] == {"codecache": 1}


def test_turbo_warm_load_rebuilds_superblocks(cache_dir):
    module, space, _ = build_nested_indirect()
    config = _config(cache_dir)
    cold = Machine(module, space, config=config, engine="turbo")
    cold.run("main")
    warm = Machine(module, space, config=config, engine="turbo")
    warm.run("main")
    fused_cold = cold._compiled[("turbo", "main")].superblocks()
    fused_warm = warm._compiled[("turbo", "main")].superblocks()
    assert len(fused_warm) == len(fused_cold) > 0
    for a, b in zip(fused_cold, fused_warm):
        assert (a.header, a.header_index, a.path, a.depth) == (
            b.header, b.header_index, b.path, b.depth
        )
        assert (a.bound_cycles, a.bound_retired) == (
            b.bound_cycles, b.bound_retired
        )
        assert a.source_plain == b.source_plain
        assert a.source_profiled == b.source_profiled


def test_fast_engine_is_not_cached(cache_dir):
    module, space, expected = build_indirect_loop()
    result = Machine(
        module, space, config=_config(cache_dir), engine="fast"
    ).run("main")
    assert result.value == expected
    cache = codecache.resolve(cache_dir)
    assert cache.hits == cache.misses == 0
    assert cache.store.stats()["entries"] == 0


def test_code_cache_is_nonsemantic_for_fingerprints(cache_dir):
    assert config_fingerprint(_config(None)) == config_fingerprint(
        _config(cache_dir)
    )


def test_resolve_disabled_spellings(tmp_path):
    for spelling in (None, "", "off", "OFF", "0", "none", "disabled"):
        assert codecache.resolve(spelling) is None
    path = str(tmp_path / "cc")
    try:
        cache = codecache.resolve(path)
        assert cache is not None
        assert codecache.resolve(path) is cache  # one cache per path
    finally:
        codecache.forget(path)


def test_env_default(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CODE_CACHE", raising=False)
    assert MachineConfig(memory=tiny_memory()).code_cache is None
    monkeypatch.setenv("REPRO_CODE_CACHE", str(tmp_path))
    assert MachineConfig(memory=tiny_memory()).code_cache == str(tmp_path)
    monkeypatch.setenv("REPRO_CODE_CACHE", "off")
    config = MachineConfig(memory=tiny_memory())
    assert config.code_cache == "off"
    assert codecache.resolve(config.code_cache) is None


def test_stale_ir_is_detected_not_executed(cache_dir):
    """An entry whose embedded IR fingerprint does not match the
    function must be invalidated before any of its code runs."""
    # n is a literal in the loop bound, so the two modules have
    # different IR fingerprints while sharing block/value names.
    module_a, space_a, expected_a = build_indirect_loop(n=200)
    module_b, space_b, _ = build_indirect_loop(n=150)
    config = _config(cache_dir)
    cache = codecache.resolve(cache_dir)

    Machine(module_b, space_b, config=config, engine="turbo").run("main")
    key_b = cache.key(module_b.function("main"), config, "turbo")
    key_a = cache.key(module_a.function("main"), config, "turbo")
    assert key_a.digest() != key_b.digest()
    stale = cache.store.get(key_b)
    assert stale is not None
    cache.store.put(key_a, stale)  # plant B's module under A's key

    result = Machine(module_a, space_a, config=config, engine="turbo").run(
        "main"
    )
    assert result.value == expected_a
    assert cache.invalidated == 1
    # The fallback recompile re-put a valid entry: next load hits.
    hits = cache.hits
    Machine(module_a, space_a, config=config, engine="turbo").run("main")
    assert cache.hits == hits + 1
    assert cache.invalidated == 1


@pytest.mark.parametrize(
    "tamper",
    [
        lambda p: p.update(cache_tag="cpython-00"),
        lambda p: p.update(schema=-1),
        lambda p: p.update(engine="translate"),
        lambda p: p["superblocks"][1].update(code_plain="!!not-base64!!"),
        lambda p: p["superblocks"][1].update(bound_retired=0),
        lambda p: p["superblocks"][1].update(header="no_such_block"),
        lambda p: p.update(superblocks=[]),
    ],
)
def test_tampered_payloads_fall_back(cache_dir, tamper):
    module, space, expected = build_indirect_loop()
    config = _config(cache_dir)
    cache = codecache.resolve(cache_dir)
    Machine(module, space, config=config, engine="turbo").run("main")
    key = cache.key(module.function("main"), config, "turbo")
    payload = cache.store.get(key)
    assert payload is not None
    assert payload["superblocks"][1] is not None  # the fused loop header
    tamper(payload)
    cache.store.put(key, payload)
    result = Machine(module, space, config=config, engine="turbo").run("main")
    assert result.value == expected
    assert cache.invalidated == 1


def test_put_failure_does_not_break_runs(cache_dir, monkeypatch):
    module, space, expected = build_indirect_loop()
    config = _config(cache_dir)
    cache = codecache.resolve(cache_dir)

    def broken_put(key, payload):
        raise OSError("disk full")

    monkeypatch.setattr(cache.store, "put", broken_put)
    result = Machine(module, space, config=config, engine="turbo").run("main")
    assert result.value == expected
    assert cache.put_errors == 1
    assert cache.store.stats()["entries"] == 0


def test_corrupt_disk_entry_quarantines_then_recompiles(cache_dir):
    module, space, expected = build_indirect_loop()
    config = _config(cache_dir)
    cache = codecache.resolve(cache_dir)
    Machine(module, space, config=config, engine="turbo").run("main")
    key = cache.key(module.function("main"), config, "turbo")
    path = cache.store._entry_path(key)
    path.write_text("{torn json")
    result = Machine(module, space, config=config, engine="turbo").run("main")
    assert result.value == expected
    # The store layer quarantined it before the codecache saw a payload:
    # a miss, not an invalidation.
    assert cache.invalidated == 0
    assert cache.misses == 2
    assert cache.store.stats()["quarantined"] == 1


def test_service_auto_enables_and_flushes_metrics(tmp_path):
    cache_dir = tmp_path / "svc-cache"
    try:
        service = TuningService(cache_dir=cache_dir)
        assert service.config.code_cache == str(cache_dir)
        assert service.code_cache is not None
        service.run("micro-tiny", "tiny", scheme="baseline", engine="turbo")
        service.flush_metrics()
        flushed = service.store.read_metrics()
        assert flushed.get("codecache.misses", 0) >= 1
        stats = service.cache_stats()
        assert stats["by_kind"].get("codecache", 0) >= 1
        assert stats["codecache"]["misses"] >= 1

        # A second service over the same directory is warm.
        warm = TuningService(cache_dir=cache_dir)
        warm.clear_cache()  # drop run artifacts; codecache entries share
        # the store root, so re-populate below is a true cold/warm probe
        Machine_runs = warm.run(
            "micro-tiny", "tiny", scheme="baseline", engine="turbo"
        )
        assert Machine_runs is not None
    finally:
        codecache.forget(cache_dir)


def test_service_explicit_off_wins(tmp_path):
    service = TuningService(
        cache_dir=tmp_path / "c",
        machine_config=MachineConfig(memory=tiny_memory(), code_cache="off"),
    )
    assert service.code_cache is None


def test_in_memory_service_has_no_code_cache():
    service = TuningService()
    assert service.code_cache is None
    assert service.config.code_cache is None


def test_cli_cache_stats_has_codecache_row(tmp_path, capsys):
    from repro.cli import main as cli_main

    cache_dir = tmp_path / "cli-cache"
    try:
        service = TuningService(cache_dir=cache_dir)
        service.run("micro-tiny", "tiny", scheme="baseline", engine="turbo")
        service.flush_metrics()
        assert cli_main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "code cache:" in out
        assert "codecache=1" in out
        assert "codecache.misses: 1" in out
    finally:
        codecache.forget(cache_dir)


def test_oracle_axis_smoke():
    from repro.qa.generate import GeneratorConfig, generate_spec
    from repro.qa.oracle import OracleConfig, check_codecache

    spec = generate_spec(7, GeneratorConfig())
    config = OracleConfig(schemes=("none",), traced_modes=(False,))
    report = check_codecache(spec, config)
    assert report["cells"] == 2  # turbo + translate
    assert report["hits"] >= 2


def test_oracle_selftest_smoke():
    from repro.qa.generate import GeneratorConfig, generate_spec
    from repro.qa.oracle import OracleConfig, check_codecache_selftest

    spec = generate_spec(7, GeneratorConfig())
    config = OracleConfig(traced_modes=(False,))
    assert check_codecache_selftest(spec, config) >= 2
