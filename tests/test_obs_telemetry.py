"""Service telemetry: journal durability, span balance through the job
queue's whole lifecycle (retries, revives, lease reclaims), the
zero-interference contract (results byte-identical with telemetry on and
off), and the merged service+simulator Perfetto document.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.obs.telemetry import (
    JobContext,
    JournalTail,
    Telemetry,
    annotate,
    build_phase,
    job_scope,
    merged_timeline,
    phase,
    read_records,
    render_records,
    run_phase,
    sim_trace_path,
    span_balance_problems,
)
from repro.obs.timeline import validate_chrome_trace
from repro.serve.queue import JobQueue


class FakeClock:
    """Deterministic queue/telemetry clock (same pattern as the queue
    tests): every record's ``t`` is reproducible."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tele(tmp_path, clock):
    return Telemetry(tmp_path / "telemetry", pid=111, clock=clock)


def traced_queue(tmp_path, clock, **kwargs):
    tele = Telemetry(tmp_path / "telemetry", pid=111, clock=clock)
    queue = JobQueue(
        tmp_path / "q", clock=clock, telemetry=tele, **kwargs
    )
    return queue, tele


# ----------------------------------------------------------------------
# Journal mechanics
# ----------------------------------------------------------------------
class TestJournal:
    def test_events_round_trip(self, tmp_path, tele):
        tele.open_span("tr-1", "s1", "job", job="j-1", kind="RunRequest")
        tele.point("tr-1", "retry", span="s1", job="j-1", attempt=2)
        tele.close_span("tr-1", "s1", "job", job="j-1")
        records = read_records(tmp_path / "telemetry")
        assert [r["ev"] for r in records] == ["open", "point", "close"]
        assert records[0]["attrs"] == {"kind": "RunRequest"}
        assert all(r["trace"] == "tr-1" for r in records)
        # seq increases per pid; t comes from the injected clock.
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[0]["t"] == 1000.0

    def test_torn_tail_is_skipped(self, tmp_path, tele):
        tele.open_span("tr-1", "s1", "job")
        tele.close_span("tr-1", "s1", "job")
        # SIGKILL mid-append: the last line has no trailing newline.
        with open(tele.path, "a") as handle:
            handle.write('{"ev": "open", "trace": "tr-1", "na')
        records = read_records(tmp_path / "telemetry")
        assert len(records) == 2

    def test_corrupt_line_is_skipped(self, tmp_path, tele):
        tele.open_span("tr-1", "s1", "job")
        with open(tele.path, "a") as handle:
            handle.write("not json at all\n")
        tele2 = Telemetry(tmp_path / "telemetry", pid=222)
        tele2.close_span("tr-1", "s1", "job")
        records = read_records(tmp_path / "telemetry")
        assert [r["ev"] for r in records] == ["open", "close"]

    def test_tail_only_returns_new_records(self, tmp_path, tele):
        tail = JournalTail(tmp_path / "telemetry")
        tele.open_span("tr-1", "s1", "job")
        assert [r["ev"] for r in tail.poll()] == ["open"]
        assert tail.poll() == []
        tele.close_span("tr-1", "s1", "job")
        assert [r["ev"] for r in tail.poll()] == ["close"]

    def test_multi_pid_merge_is_time_ordered(self, tmp_path, clock):
        a = Telemetry(tmp_path / "telemetry", pid=1, clock=clock)
        b = Telemetry(tmp_path / "telemetry", pid=2, clock=clock)
        a.open_span("tr-1", "s1", "queued")
        clock.advance(1.0)
        b.close_span("tr-1", "s1", "queued")
        clock.advance(1.0)
        a.open_span("tr-1", "s2", "claimed")
        records = read_records(tmp_path / "telemetry")
        assert [(r["ev"], r["pid"]) for r in records] == [
            ("open", 1), ("close", 2), ("open", 1),
        ]

    def test_filters(self, tmp_path, tele):
        tele.open_span("tr-1", "a", "job", job="j-1")
        tele.open_span("tr-2", "b", "job", job="j-2")
        assert len(read_records(tmp_path / "telemetry", job="j-1")) == 1
        assert len(read_records(tmp_path / "telemetry", trace="tr-2")) == 1
        assert read_records(tmp_path / "telemetry", trace="tr-9") == []

    def test_render_is_deterministic(self, tmp_path, tele):
        tele.open_span("tr-1", "s1", "job", zebra=1, apple=2)
        tele.close_span("tr-1", "s1", "job")
        records = read_records(tmp_path / "telemetry")
        text = render_records(records)
        assert text == render_records(read_records(tmp_path / "telemetry"))
        assert text.endswith("\n")
        # Keys are sorted within each line (canonical form).
        first = text.splitlines()[0]
        assert first.index('"apple"') < first.index('"zebra"')


# ----------------------------------------------------------------------
# Balance checking
# ----------------------------------------------------------------------
class TestSpanBalance:
    def test_balanced_tree_passes(self):
        records = [
            {"ev": "open", "span": "j"},
            {"ev": "open", "span": "j:x1.0"},
            {"ev": "close", "span": "j:x1.0"},
            {"ev": "close", "span": "j"},
        ]
        assert span_balance_problems(records) == []

    def test_unclosed_span_is_reported(self):
        records = [{"ev": "open", "span": "j"}]
        assert span_balance_problems(records) != []
        assert span_balance_problems(records, require_closed=False) == []

    def test_close_before_open_is_reported(self):
        records = [{"ev": "close", "span": "j"}, {"ev": "open", "span": "j"}]
        assert any(
            "precedes" in p for p in span_balance_problems(records)
        )

    def test_revived_job_double_open_close_is_legal(self):
        records = [
            {"ev": "open", "span": "j"},
            {"ev": "close", "span": "j"},
            {"ev": "open", "span": "j"},
            {"ev": "close", "span": "j"},
        ]
        assert span_balance_problems(records) == []


# ----------------------------------------------------------------------
# Queue lifecycle spans
# ----------------------------------------------------------------------
def drain(queue, clock=None, *, fail_first=0, agent="agent-t"):
    """Claim+run jobs to completion, failing the first ``fail_first``
    attempts; returns the executed job ids in order.  With a ``clock``,
    skips over retry backoff windows."""
    done = []
    while True:
        job = queue.claim(agent)
        if job is None:
            if clock is not None and queue.stats()["by_state"]["queued"]:
                clock.advance(60.0)  # leap over the retry backoff
                continue
            return done
        queue.start(job.id, agent)
        if fail_first > 0:
            fail_first -= 1
            queue.fail(job.id, agent, "boom: synthetic\nValueError: nope")
        else:
            queue.complete(job.id, agent, {"ok": True})
            done.append(job.id)


class TestQueueLifecycleSpans:
    def test_happy_path_is_balanced_and_named(self, tmp_path, clock):
        queue, tele = traced_queue(tmp_path, clock)
        job, _ = queue.submit(
            "RunRequest", {"kind": "RunRequest"}, dedup_key="k1"
        )
        assert job.trace_id and job.trace_id.startswith("tr-")
        drain(queue)
        records = read_records(tmp_path / "telemetry", job=job.id)
        assert span_balance_problems(records) == []
        names = [r["name"] for r in records]
        assert names == [
            "job", "queued", "queued", "claimed", "claimed",
            "running", "running", "job",
        ]
        closing = records[-1]
        assert closing["ev"] == "close"
        assert closing["attrs"]["state"] == "done"

    def test_caller_trace_id_is_honoured(self, tmp_path, clock):
        queue, _ = traced_queue(tmp_path, clock)
        job, _ = queue.submit(
            "RunRequest", {}, dedup_key="k1", trace_id="tr-mine"
        )
        assert job.trace_id == "tr-mine"
        records = read_records(tmp_path / "telemetry", job=job.id)
        assert all(r["trace"] == "tr-mine" for r in records)

    def test_dedup_emits_point_and_shares_trace(self, tmp_path, clock):
        queue, _ = traced_queue(tmp_path, clock)
        first, _ = queue.submit("RunRequest", {}, dedup_key="k1")
        again, deduped = queue.submit("RunRequest", {}, dedup_key="k1")
        assert deduped and again.id == first.id
        assert again.trace_id == first.trace_id
        records = read_records(tmp_path / "telemetry", job=first.id)
        assert [r["name"] for r in records if r["ev"] == "point"] == [
            "dedup"
        ]

    def test_retry_and_terminal_failure_stay_balanced(
        self, tmp_path, clock
    ):
        queue, _ = traced_queue(tmp_path, clock, max_attempts=2)
        job, _ = queue.submit("RunRequest", {}, dedup_key="k1")
        drain(queue, clock, fail_first=2)
        assert queue.get(job.id).state == "failed"
        records = read_records(tmp_path / "telemetry", job=job.id)
        assert span_balance_problems(records) == []
        points = [r["name"] for r in records if r["ev"] == "point"]
        assert points == ["retry"]
        closing = records[-1]
        assert closing["attrs"]["state"] == "failed"
        # The brief error (the traceback's last line) rides the close.
        assert "ValueError" in closing["attrs"]["error"]

    def test_lease_reclaim_spans(self, tmp_path, clock):
        queue, _ = traced_queue(tmp_path, clock, lease=5.0, max_attempts=2)
        job, _ = queue.submit("RunRequest", {}, dedup_key="k1")
        claimed = queue.claim("agent-dead")
        assert claimed.id == job.id
        clock.advance(20.0)  # lease expires; next claim reaps first
        drain(queue, clock)
        assert queue.get(job.id).state == "done"
        records = read_records(tmp_path / "telemetry", job=job.id)
        assert span_balance_problems(records) == []
        points = [r["name"] for r in records if r["ev"] == "point"]
        assert "lease-reclaim" in points

    def test_lost_job_closes_root(self, tmp_path, clock):
        queue, _ = traced_queue(tmp_path, clock, lease=5.0, max_attempts=1)
        job, _ = queue.submit("RunRequest", {}, dedup_key="k1")
        queue.claim("agent-dead")
        clock.advance(20.0)
        queue.requeue_lapsed()
        assert queue.get(job.id).state == "lost"
        records = read_records(tmp_path / "telemetry", job=job.id)
        assert span_balance_problems(records) == []
        assert records[-1]["attrs"]["state"] == "lost"

    def test_revived_job_reopens_root(self, tmp_path, clock):
        queue, _ = traced_queue(tmp_path, clock, max_attempts=1)
        job, _ = queue.submit("RunRequest", {}, dedup_key="k1")
        drain(queue, clock, fail_first=1)
        assert queue.get(job.id).state == "failed"
        revived, _ = queue.submit("RunRequest", {}, dedup_key="k1")
        assert revived.id == job.id
        drain(queue)
        assert queue.get(job.id).state == "done"
        records = read_records(tmp_path / "telemetry", job=job.id)
        assert span_balance_problems(records) == []
        roots = [
            r for r in records
            if r.get("span") == job.id and r["ev"] != "point"
        ]
        assert [r["ev"] for r in roots] == [
            "open", "close", "open", "close",
        ]
        points = [r["name"] for r in records if r["ev"] == "point"]
        assert "resubmit" in points

    def test_untraced_queue_writes_no_journal(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", clock=clock)
        queue.submit("RunRequest", {}, dedup_key="k1")
        drain(queue)
        assert read_records(tmp_path / "telemetry") == []


# ----------------------------------------------------------------------
# Execution-phase scopes
# ----------------------------------------------------------------------
class TestPhases:
    def test_phases_are_noops_outside_a_job(self):
        with phase("engine.build") as extra:
            assert extra is None
        annotate("artifact-cache", hit=True)  # must not raise

    def test_job_scope_nests_phases(self, tmp_path, tele):
        with job_scope(
            tele, trace="tr-1", job="j-1", attempts=2, agent="a"
        ):
            with phase("engine.build", workload="w") as extra:
                extra["graph_cache_hits"] = 1
            annotate("artifact-cache", hit=False)
        records = read_records(tmp_path / "telemetry")
        assert span_balance_problems(records) == []
        names = [r["name"] for r in records]
        assert names == [
            "execute", "engine.build", "engine.build",
            "artifact-cache", "execute",
        ]
        build_open = records[1]
        assert build_open["parent"] == "j-1:x2.0"
        assert build_open["span"] == "j-1:x2.1"
        build_close = records[2]
        assert build_close["attrs"]["graph_cache_hits"] == 1
        assert "seconds" in build_close["attrs"]

    def test_job_scope_failure_closes_execute(self, tmp_path, tele):
        with pytest.raises(ValueError):
            with job_scope(tele, trace="tr-1", job="j-1") as extra:
                extra["error"] = "nope"
                raise ValueError("nope")
        records = read_records(tmp_path / "telemetry")
        assert span_balance_problems(records) == []
        assert records[-1]["attrs"]["error"] == "nope"

    def test_run_phase_reports_engine_stats(self, tmp_path, tele):
        from repro.workloads.registry import make_workload
        from repro.machine.machine import Machine

        workload = make_workload("micro-tiny", "tiny")
        with job_scope(tele, trace="tr-1", job="j-1"):
            with build_phase(workload.name, scheme="baseline"):
                module, space = workload.build()
            machine = Machine(module, space)
            with run_phase(machine, scheme="baseline"):
                machine.run(workload.entry)
        records = read_records(tmp_path / "telemetry")
        assert span_balance_problems(records) == []
        run_close = [
            r for r in records
            if r["name"] == "engine.run" and r["ev"] == "close"
        ][0]
        assert run_close["attrs"]["compiled_functions"] >= 1
        assert run_close["attrs"]["compile_seconds"] >= 0.0
        build_close = [
            r for r in records
            if r["name"] == "engine.build" and r["ev"] == "close"
        ][0]
        assert "graph_cache_hits" in build_close["attrs"]

    def test_turbo_run_phase_reports_superblock_stats(
        self, tmp_path, tele
    ):
        from repro.machine.config import MachineConfig
        from repro.machine.machine import Machine
        from repro.workloads.registry import make_workload

        workload = make_workload("micro-tiny", "tiny")
        module, space = workload.build()
        machine = Machine(
            module, space, config=MachineConfig(engine="turbo")
        )
        with job_scope(tele, trace="tr-1", job="j-1"):
            with run_phase(machine):
                machine.run(workload.entry)
        records = read_records(tmp_path / "telemetry")
        run_open = [
            r for r in records
            if r["name"] == "engine.run" and r["ev"] == "open"
        ][0]
        assert run_open["attrs"]["engine"] == "turbo"
        run_close = [
            r for r in records
            if r["name"] == "engine.run" and r["ev"] == "close"
        ][0]
        assert "bulk_calls" in run_close["attrs"]
        assert "guard_declines" in run_close["attrs"]


# ----------------------------------------------------------------------
# Zero interference: telemetry observes, never changes results.
# ----------------------------------------------------------------------
class TestZeroInterference:
    @pytest.mark.parametrize(
        "request_obj",
        [
            api.RunRequest(workload="micro-tiny", scale="tiny"),
            api.SiteReportRequest(workload="micro-tiny", scale="tiny"),
        ],
        ids=lambda r: type(r).__name__,
    )
    def test_results_identical_with_telemetry_on_and_off(
        self, tmp_path, request_obj
    ):
        from repro.service.api import TuningService

        plain = api.execute(request_obj, service=TuningService())
        tele = Telemetry(tmp_path / "telemetry", pid=111)
        with job_scope(tele, trace="tr-1", job="j-1"):
            traced = api.execute(request_obj, service=TuningService())
        assert plain.to_json() == traced.to_json()
        # ...and the traced run actually journaled engine phases.
        names = {
            r["name"] for r in read_records(tmp_path / "telemetry")
        }
        assert "engine.run" in names
        assert "store.put" in names


# ----------------------------------------------------------------------
# The merged Perfetto document
# ----------------------------------------------------------------------
class TestMergedTimeline:
    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError):
            merged_timeline(tmp_path / "telemetry")

    def test_service_only_document_validates(self, tmp_path, clock):
        queue, _ = traced_queue(tmp_path, clock)
        job, _ = queue.submit("RunRequest", {}, dedup_key="k1")
        drain(queue)
        document = merged_timeline(tmp_path / "telemetry", job=job.id)
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["sim_traces"] == []
        names = {e["name"] for e in document["traceEvents"]}
        assert {"job", "queued", "claimed", "running"} <= names

    def test_sim_trace_embeds_after_engine_run(self, tmp_path, tele):
        tele.open_span("tr-1", "j-1", "job", job="j-1", t=100.0)
        tele.open_span("tr-1", "j-1:x1.0", "engine.run", job="j-1",
                       t=101.0)
        tele.close_span("tr-1", "j-1:x1.0", "engine.run", job="j-1",
                        t=102.0)
        tele.close_span("tr-1", "j-1", "job", job="j-1", t=103.0)
        sim = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": "prefetches"}},
                {"name": "pf", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 5.0, "dur": 3.0, "args": {}},
            ]
        }
        tele.put_sim_trace("tr-1", sim)
        assert sim_trace_path(tele.directory, "tr-1").exists()
        document = merged_timeline(tmp_path / "telemetry")
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["sim_traces"] == ["tr-1"]
        embedded = [
            e for e in document["traceEvents"] if e["name"] == "pf"
        ][0]
        # engine.run opened 1s after t0 -> sim ts shifted by 1e6 µs.
        assert embedded["ts"] == pytest.approx(1e6 + 5.0)

    def test_document_is_json_serializable(self, tmp_path, clock):
        queue, _ = traced_queue(tmp_path, clock)
        queue.submit("RunRequest", {}, dedup_key="k1")
        drain(queue)
        document = merged_timeline(tmp_path / "telemetry")
        json.dumps(document)  # must not raise


# ----------------------------------------------------------------------
# JobContext internals
# ----------------------------------------------------------------------
class TestJobContext:
    def test_span_ids_are_deterministic(self, tele):
        ctx = JobContext(tele, trace="tr-1", job="j-1", attempts=3)
        first = ctx.open("execute")
        second = ctx.open("engine.build")
        assert first == "j-1:x3.0"
        assert second == "j-1:x3.1"
        ctx.close(second, "engine.build")
        third = ctx.open("engine.run")
        assert third == "j-1:x3.2"

    def test_points_attach_to_stack_top(self, tmp_path, tele):
        ctx = JobContext(tele, trace="tr-1", job="j-1", attempts=1)
        sid = ctx.open("execute")
        ctx.point("artifact-cache", hit=True)
        ctx.close(sid, "execute")
        records = read_records(tmp_path / "telemetry")
        point = [r for r in records if r["ev"] == "point"][0]
        assert point["span"] == sid
