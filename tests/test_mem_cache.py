"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.mem.cache import (
    FLAG_NONE,
    FLAG_SW_PREFETCHED_UNUSED,
    SetAssociativeCache,
)
from repro.mem.config import CacheConfig


def small_cache(sets=4, assoc=2, on_evict=None) -> SetAssociativeCache:
    config = CacheConfig("t", sets * assoc * 64, assoc, 4)
    return SetAssociativeCache(config, on_evict=on_evict)


class TestBasics:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(10) is None
        cache.insert(10)
        assert cache.lookup(10) == FLAG_NONE
        assert cache.contains(10)

    def test_config_geometry(self):
        config = CacheConfig("g", 8 * 1024, 8, 4)
        assert config.lines == 128
        assert config.sets == 16

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("b", 100, 8, 4)  # not multiple of 64
        with pytest.raises(ValueError):
            CacheConfig("b", 3 * 64, 2, 4)  # non-power-of-two sets

    def test_flags_roundtrip(self):
        cache = small_cache()
        cache.insert(3, FLAG_SW_PREFETCHED_UNUSED)
        assert cache.lookup(3) == FLAG_SW_PREFETCHED_UNUSED
        cache.set_flags(3, FLAG_NONE)
        assert cache.lookup(3) == FLAG_NONE

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(5)
        cache.invalidate(5)
        assert not cache.contains(5)
        cache.invalidate(5)  # idempotent

    def test_flush_and_occupancy(self):
        cache = small_cache()
        for line in range(8):
            cache.insert(line)
        assert cache.occupancy() == 8
        cache.flush()
        assert cache.occupancy() == 0
        assert cache.resident_lines() == []


class TestLRU:
    def test_eviction_order_is_lru(self):
        cache = small_cache(sets=1, assoc=2)
        cache.insert(0)
        cache.insert(1)
        cache.insert(2)  # evicts 0
        assert not cache.contains(0)
        assert cache.contains(1) and cache.contains(2)

    def test_hit_refreshes_lru(self):
        cache = small_cache(sets=1, assoc=2)
        cache.insert(0)
        cache.insert(1)
        cache.lookup(0)  # 0 becomes MRU
        cache.insert(2)  # evicts 1, not 0
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_reinsert_updates_flags_without_eviction(self):
        cache = small_cache(sets=1, assoc=2)
        cache.insert(0)
        cache.insert(1)
        cache.insert(0, FLAG_SW_PREFETCHED_UNUSED)
        assert cache.contains(1)
        assert cache.lookup(0) == FLAG_SW_PREFETCHED_UNUSED

    def test_sets_are_independent(self):
        cache = small_cache(sets=4, assoc=1)
        cache.insert(0)  # set 0
        cache.insert(1)  # set 1
        cache.insert(4)  # set 0 again -> evicts 0 only
        assert not cache.contains(0)
        assert cache.contains(1)
        assert cache.contains(4)

    def test_eviction_callback_gets_line_and_flags(self):
        evicted = []
        cache = small_cache(
            sets=1, assoc=1, on_evict=lambda line, flags: evicted.append((line, flags))
        )
        cache.insert(7, FLAG_SW_PREFETCHED_UNUSED)
        cache.insert(8)
        assert evicted == [(7, FLAG_SW_PREFETCHED_UNUSED)]
