"""Tests for the strict (dominance-checking) verifier mode."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Instruction, Module
from repro.ir.opcodes import Opcode
from repro.ir.verifier import VerificationError, verify_module
from tests.conftest import build_nested_indirect, build_sum_loop


class TestStrictAcceptsValidPrograms:
    def test_canonical_programs(self):
        for builder in (build_sum_loop, build_nested_indirect):
            module, _, _ = builder()
            verify_module(module, strict=True)

    def test_after_injection_passes(self):
        from repro.core.hints import HintSet, PrefetchHint
        from repro.core.site import InjectionSite
        from repro.passes.ainsworth_jones import AinsworthJonesPass
        from repro.passes.aptget_pass import AptGetPass

        module, _, _ = build_nested_indirect()
        AinsworthJonesPass().run(module)
        verify_module(module, strict=True)

        module2, _, _ = build_nested_indirect()
        load_pc = next(
            inst.pc
            for inst in module2.function("main").instructions()
            if inst.dst == "t.v"
        )
        AptGetPass(
            HintSet.from_hints(
                [
                    PrefetchHint(
                        load_pc=load_pc,
                        function="main",
                        distance=3,
                        site=InjectionSite.OUTER,
                        outer_distance=3,
                        sweep=3,
                    )
                ]
            )
        ).run(module2)
        verify_module(module2, strict=True)

    def test_all_workloads(self):
        from repro.workloads.registry import TINY_SUITE, make_workload

        for name in TINY_SUITE:
            module, _ = make_workload(name).build()
            verify_module(module, strict=True)


class TestStrictRejectsViolations:
    def test_use_before_def_same_block(self):
        module = Module("ubd")
        b = IRBuilder(module)
        b.function("f")
        block = b.block("entry")
        b.at(block)
        block.instructions.append(
            Instruction(Opcode.ADD, dst="x", args=("y", 1))
        )
        block.instructions.append(
            Instruction(Opcode.ADD, dst="y", args=(1, 1))
        )
        block.instructions.append(Instruction(Opcode.RET, args=("x",)))
        module.finalize()
        verify_module(module)  # plain mode misses the ordering
        with pytest.raises(VerificationError, match="before its definition"):
            verify_module(module, strict=True)

    def test_use_not_dominated_across_branches(self):
        # x defined only on the left arm but used at the join.
        module = Module("dom")
        b = IRBuilder(module)
        b.function("f", params=["c"])
        entry, left, right, join = b.blocks("entry", "left", "right", "join")
        b.at(entry)
        b.br("c", left, right)
        b.at(left)
        x = b.add(1, 2, name="x")
        b.jmp(join)
        b.at(right)
        b.jmp(join)
        b.at(join)
        b.ret(x)
        module.finalize()
        verify_module(module)  # plain mode: x *is* defined somewhere
        with pytest.raises(VerificationError, match="not dominated"):
            verify_module(module, strict=True)

    def test_phi_incoming_checked_on_edge(self):
        # A phi may consume a value defined in the incoming block even
        # though that block does not dominate the phi's block...
        module = Module("phi-edge")
        b = IRBuilder(module)
        b.function("f", params=["c"])
        entry, left, right, join = b.blocks("entry", "left", "right", "join")
        b.at(entry)
        b.br("c", left, right)
        b.at(left)
        x1 = b.add(1, 2, name="x1")
        b.jmp(join)
        b.at(right)
        x2 = b.add(3, 4, name="x2")
        b.jmp(join)
        b.at(join)
        x = b.phi([(left, x1), (right, x2)], name="x")
        b.ret(x)
        module.finalize()
        verify_module(module, strict=True)  # valid

        # ...but not a value from the *other* arm.
        phi = module.function("f").block("join").phis()[0]
        phi.incomings = [("left", "x2"), ("right", "x2")]
        with pytest.raises(VerificationError, match="phi incoming"):
            verify_module(module, strict=True)
