"""Tests for the Machine facade and MachineConfig/MemoryConfig plumbing."""

import pytest

from repro.ir.nodes import IRError
from repro.machine.config import MachineConfig, paper_like_memory
from repro.machine.machine import ENGINES, Machine
from repro.mem.config import CacheConfig, MemoryConfig
from tests.conftest import build_indirect_loop, build_sum_loop


class TestMachine:
    def test_rejects_unknown_engine(self, sum_loop):
        module, space, _ = sum_loop
        with pytest.raises(ValueError):
            Machine(module, space, engine="jit")
        assert set(ENGINES) == {"turbo", "fast", "translate", "reference"}

    def test_interpret_alias_warns_and_maps_to_reference(self, sum_loop):
        module, space, _ = sum_loop
        with pytest.warns(DeprecationWarning):
            machine = Machine(module, space, engine="interpret")
        assert machine.engine == "reference"

    def test_engine_defaults_from_config(self, sum_loop):
        module, space, _ = sum_loop
        config = MachineConfig(engine="reference")
        machine = Machine(module, space, config=config)
        assert machine.engine == "reference"
        assert Machine(module, space).engine == MachineConfig().engine

    def test_config_normalizes_engine_alias(self):
        assert MachineConfig(engine="interpret").engine == "reference"
        with pytest.raises(ValueError):
            MachineConfig(engine="jit")

    def test_rejects_unknown_function(self, sum_loop):
        module, space, _ = sum_loop
        with pytest.raises(IRError):
            Machine(module, space).run("ghost")

    def test_auto_finalizes_module(self):
        module, space, _ = build_sum_loop()
        module.finalized = False
        machine = Machine(module, space)
        assert module.finalized
        machine.run("main")

    def test_run_returns_delta_not_totals(self, sum_loop):
        module, space, _ = sum_loop
        machine = Machine(module, space)
        first = machine.run("main")
        second = machine.run("main")
        assert second.counters.instructions == first.counters.instructions
        assert machine.counters.instructions == 2 * first.counters.instructions

    def test_flush_caches_restores_cold_start(self):
        module, space, _ = build_indirect_loop(n=100)
        machine = Machine(module, space)
        first = machine.run("main")
        warm = machine.run("main")
        cold = machine.run("main", flush_caches=True)
        assert warm.counters.cycles < first.counters.cycles
        assert cold.counters.cycles > warm.counters.cycles

    def test_profiling_toggle(self, sum_loop):
        module, space, _ = sum_loop
        machine = Machine(module, space)
        sampler = machine.enable_profiling(period=50)
        machine.run("main")
        assert sampler.samples
        machine.disable_profiling()
        assert machine.sampler is None
        count = len(sampler.samples)
        machine.run("main")
        assert len(sampler.samples) == count

    def test_run_result_perf_properties(self, sum_loop):
        module, space, _ = sum_loop
        result = Machine(module, space).run("main")
        assert result.cycles == result.counters.cycles
        assert result.perf.ipc > 0


class TestConfigs:
    def test_paper_like_memory_geometry(self):
        memory = paper_like_memory()
        assert memory.l1.latency < memory.l2.latency < memory.llc.latency
        assert memory.l1.size_bytes < memory.l2.size_bytes < memory.llc.size_bytes
        assert memory.dram_latency > memory.llc.latency

    def test_effective_pebs_threshold_defaults_to_llc(self):
        config = MachineConfig()
        assert (
            config.effective_pebs_threshold()
            == config.memory.llc.latency + 1
        )
        override = MachineConfig(pebs_latency_threshold=99)
        assert override.effective_pebs_threshold() == 99

    def test_with_memory(self):
        memory = MemoryConfig(
            l1=CacheConfig("L1D", 1024, 4, 2),
            l2=CacheConfig("L2", 4096, 4, 12),
            llc=CacheConfig("LLC", 16 * 1024, 8, 40),
        )
        config = MachineConfig().with_memory(memory)
        assert config.memory is memory
        assert config.alu_cost == MachineConfig().alu_cost

    def test_scaled_memory(self):
        memory = paper_like_memory()
        scaled = memory.scaled(4)
        assert scaled.llc.size_bytes == memory.llc.size_bytes // 4
        assert scaled.llc.latency == memory.llc.latency
        assert scaled.mshr_entries == memory.mshr_entries

    def test_scaled_never_below_one_set(self):
        memory = paper_like_memory()
        scaled = memory.scaled(1_000_000)
        assert scaled.l1.lines >= scaled.l1.associativity


class TestConditionalInjection:
    def test_min_latency_share_filters_minor_loads(self):
        from repro.core.aptget import AptGet, AptGetConfig
        from repro.machine.machine import Machine as M
        from repro.profiling.collect import collect_profile
        from repro.workloads.micro import IndirectMicrobenchmark

        workload = IndirectMicrobenchmark(
            inner=64, total_iterations=20_000, target_elems=1 << 17
        )
        module, space = workload.build()
        machine = M(module, space)
        profile = collect_profile(machine, "main")
        all_hints = AptGet(AptGetConfig()).analyze(module, profile)
        filtered = AptGet(AptGetConfig(min_latency_share=0.5)).analyze(
            module, profile
        )
        assert len(filtered) <= len(all_hints)
        assert len(filtered) >= 1  # the dominant T load survives
        dominant = profile.delinquent_loads(top=1)[0]
        assert filtered.hints[0].load_pc == dominant
