"""Integration tests for the TuningService façade: cache-backed
parallel suite comparison, determinism, failure isolation, and the CLI
surface (`experiment --jobs/--cache-dir`, `cache stats|clear`)."""

import json

import pytest

import repro.service.api as service_api
from repro.cli import main
from repro.service.api import TuningService, configure_service, get_service


@pytest.fixture(autouse=True)
def _isolate_global_service():
    """Tests below reconfigure the process-global service; restore it."""
    saved = service_api._SERVICE
    yield
    service_api._SERVICE = saved


def suite_table(comparisons) -> str:
    """Canonical, full-precision rendering of a suite comparison."""
    return json.dumps(
        {
            name: {
                "error": comp.error,
                "baseline_cycles": comp.runs["baseline"].cycles,
                "aj_speedup": comp.speedup("aj"),
                "apt_speedup": comp.speedup("apt-get"),
                "apt_instructions": (
                    comp.runs["apt-get"].result.counters.instructions
                ),
                "apt_mpki": comp.mpki("apt-get"),
            }
            if not comp.error
            else {"error": comp.error}
            for name, comp in comparisons.items()
        },
        sort_keys=True,
    )


class TestParallelDeterminism:
    def test_jobs1_and_jobs4_byte_identical(self):
        sequential = TuningService(jobs=1).compare_suite("tiny")
        parallel = TuningService(jobs=4).compare_suite("tiny")
        assert suite_table(sequential) == suite_table(parallel)

    def test_cold_then_warm_identical_with_cache_hits(self, tmp_path):
        cold_service = TuningService(cache_dir=tmp_path, jobs=2)
        cold = cold_service.compare_suite("tiny")
        assert cold_service.metrics.get("cache.hits") == 0
        # Fresh service over the same store: a second process, in effect.
        warm_service = TuningService(cache_dir=tmp_path, jobs=2)
        warm = warm_service.compare_suite("tiny")
        assert suite_table(cold) == suite_table(warm)
        assert warm_service.metrics.get("cache.hits") > 0
        assert warm_service.metrics.get("cache.misses") == 0
        assert warm_service.metrics.get("service.jobs") == 0  # no recompute
        # Both runs folded their counters into the persistent metrics.
        persisted = warm_service.store.read_metrics()
        assert persisted["cache.hits"] >= warm_service.metrics.get("cache.hits")


class TestFailureIsolation:
    def test_raising_worker_yields_error_row_rest_completes(self):
        service = TuningService(jobs=2, retries=0, backoff=0.0)
        comparisons = service.compare_suite(
            "tiny", names=["micro-tiny", "no-such-workload"]
        )
        failed = comparisons["no-such-workload"]
        assert failed.error and "no-such-workload" in failed.error
        assert failed.runs == {}
        survivor = comparisons["micro-tiny"]
        assert survivor.error is None
        assert survivor.speedup("apt-get") > 0
        assert service.metrics.get("service.errors") == 1
        assert service.metrics.get("service.job_failures") == 1

    def test_error_row_renders_in_fig6_table(self):
        configure_service(retries=0, backoff=0.0)
        service = get_service()
        # Seed the global service's store with a failed workload's row.
        comparisons = service.compare_suite(
            "tiny", names=["micro-tiny", "no-such-workload"]
        )
        from repro.experiments.result import format_table

        rows = []
        for name, comp in comparisons.items():
            rows.append(
                [name, "error", "error"]
                if comp.error
                else [name, 1.0, round(comp.speedup("apt-get"), 3)]
            )
        text = format_table(["workload", "aj", "apt"], rows)
        assert "no-such-workload" in text and "error" in text

    def test_timed_out_worker_yields_error_row_and_metric(self):
        service = TuningService(jobs=2, timeout=0.05, retries=0, backoff=0.0)
        comparisons = service.compare_suite("tiny", names=["micro-tiny"])
        failed = comparisons["micro-tiny"]
        assert failed.error and "timed out" in failed.error
        assert service.metrics.get("service.job_timeouts") >= 1
        assert service.metrics.get("service.errors") == 1


class TestFreshObjects:
    def test_suite_cache_hits_are_not_aliased(self):
        service = TuningService()
        first = service.compare_suite("tiny", names=["micro-tiny"])
        apt = first["micro-tiny"].runs["apt-get"]
        # The historical hazard: callers mutate cached runs in place.
        apt.profile = None
        apt.result.counters.cycles = -1.0
        for hint in apt.hints or []:
            hint.distance = -7
        second = service.compare_suite("tiny", names=["micro-tiny"])
        fresh = second["micro-tiny"].runs["apt-get"]
        assert fresh.profile is not None
        assert fresh.result.counters.cycles > 0
        assert all(h.distance != -7 for h in fresh.hints or [])

    def test_analyze_matches_profile_hints(self):
        service = TuningService()
        _, hints = service.profile("micro-tiny", "tiny")
        analyzed = service.analyze("micro-tiny", "tiny")
        assert analyzed.to_json() == hints.to_json()
        assert analyzed is not hints


class TestSiteReport:
    def test_cached_and_persisted(self, tmp_path):
        service = TuningService(cache_dir=tmp_path)
        first = service.site_report("micro-tiny", scale="tiny")
        assert first, "no sites traced"
        hits_before = service.metrics.get("cache.hits")
        second = service.site_report("micro-tiny", scale="tiny")
        assert service.metrics.get("cache.hits") > hits_before
        assert {k: v.to_dict() for k, v in first.items()} == {
            k: v.to_dict() for k, v in second.items()
        }
        # Persisted under the "sites" artifact kind...
        assert service.store.stats()["by_kind"].get("sites") == 1
        # ...and readable by a brand-new service against the same dir.
        rehydrated = TuningService(cache_dir=tmp_path).site_report(
            "micro-tiny", scale="tiny"
        )
        assert {k: v.to_dict() for k, v in rehydrated.items()} == {
            k: v.to_dict() for k, v in first.items()
        }

    def test_feeds_metrics_registry(self):
        service = TuningService()
        reports = service.site_report("micro-tiny", scale="tiny")
        issued = sum(r.issued for r in reports.values())
        assert service.metrics.get("obs.prefetch.issued") == issued
        timely_hist = service.metrics.get("obs.site.timely_fraction")
        assert isinstance(timely_hist, dict)
        assert timely_hist["count"] >= 1

    def test_fixed_distance_variant_is_distinct(self):
        service = TuningService()
        eq1 = service.site_report("micro-tiny", scale="tiny")
        fixed = service.site_report(
            "micro-tiny", scale="tiny", fixed_distance=4
        )
        # Different artifact (different params), lower timeliness.
        def timely(reports):
            used = sum(r.used for r in reports.values())
            return (
                sum(r.timely for r in reports.values()) / used if used else 0
            )

        assert timely(eq1) > timely(fixed)


class TestEnvironmentDefaults:
    def test_get_service_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        monkeypatch.setenv("REPRO_JOBS", "3")
        service_api._SERVICE = None
        service = get_service()
        assert service.jobs == 3
        assert str(service.store.root).endswith("envcache")
        assert get_service() is service  # memoized


class TestCLI:
    def test_experiment_jobs_cache_dir_roundtrip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "experiment", "fig6", "--scale", "tiny",
            "--jobs", "2", "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "fig6" in cold_out
        assert "cache:" in cold_out

        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        # Byte-identical table; only the trailing cache line differs.
        table = lambda out: out.split("cache:")[0]  # noqa: E731
        assert table(warm_out) == table(cold_out)

        def cache_line(out):
            line = next(l for l in out.splitlines() if l.startswith("cache:"))
            hits, misses, jobs, _ = (
                int(part.strip().split(" ")[0])
                for part in line.removeprefix("cache:").split(",")
            )
            return hits, misses, jobs

        assert cache_line(cold_out)[0] == 0  # cold: no hits
        warm_hits, warm_misses, warm_jobs = cache_line(warm_out)
        assert warm_hits > 0
        assert warm_misses == 0
        assert warm_jobs == 0  # served entirely from cache

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "entries:" in stats_out
        hits_line = next(
            line for line in stats_out.splitlines() if "cache.hits" in line
        )
        assert int(hits_line.split(":")[1]) > 0

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out
