"""Tests for the apt-get-prefetch command line."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "BFS-LBE" in out
    assert "micro-tiny" in out
    assert "fig6" in out


def test_run_baseline(capsys):
    assert main(["run", "--workload", "micro-tiny"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out
    assert "[baseline]" in out


def test_run_aj(capsys):
    assert main(
        ["run", "--workload", "micro-tiny", "--scheme", "aj", "--distance", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "A&J injected" in out


def test_profile_analyze_run_workflow(tmp_path, capsys):
    profile_path = tmp_path / "p.json"
    hints_path = tmp_path / "h.json"
    assert main(
        ["profile", "--workload", "micro-tiny", "-o", str(profile_path)]
    ) == 0
    assert profile_path.exists()
    assert main(
        [
            "analyze",
            "--workload",
            "micro-tiny",
            "--profile",
            str(profile_path),
            "-o",
            str(hints_path),
        ]
    ) == 0
    hints = json.loads(hints_path.read_text())
    assert hints["hints"]
    assert main(
        [
            "run",
            "--workload",
            "micro-tiny",
            "--scheme",
            "apt-get",
            "--hints",
            str(hints_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "APT-GET injected" in out


def test_run_apt_get_self_profiling(capsys):
    assert main(["run", "--workload", "micro-tiny", "--scheme", "apt-get"]) == 0
    out = capsys.readouterr().out
    assert "profiled:" in out


def test_experiment_with_json_output(tmp_path, capsys):
    out_path = tmp_path / "t1.json"
    assert main(
        ["experiment", "table1", "--scale", "tiny", "-o", str(out_path)]
    ) == 0
    payload = json.loads(out_path.read_text())
    assert payload["experiment"] == "table1"
    assert payload["rows"]


def test_experiment_unknown(capsys):
    assert main(["experiment", "fig99", "--scale", "tiny"]) == 2


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        main(["run", "--workload", "nope"])


def test_disasm_baseline(capsys):
    from repro.cli import main as _main

    assert _main(["disasm", "--workload", "micro-tiny"]) == 0
    out = capsys.readouterr().out
    assert "define main()" in out
    assert "prefetch" not in out


def test_disasm_after_aj(capsys):
    from repro.cli import main as _main

    assert _main(
        ["disasm", "--workload", "micro-tiny", "--scheme", "aj"]
    ) == 0
    out = capsys.readouterr().out
    assert "prefetch [" in out


def test_run_with_raw_events(capsys):
    assert main(["run", "--workload", "micro-tiny", "--events"]) == 0
    out = capsys.readouterr().out
    assert "raw events:" in out
    assert "offcore_all_data_rd" in out


def test_list_includes_new_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("ideal", "profiling_overhead", "fig3", "table4"):
        assert name in out


def test_experiment_ideal_tiny(capsys):
    assert main(["experiment", "ideal", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "ideal speedup" in out


def test_run_surfaces_prefetch_counters(capsys):
    assert main(
        ["run", "--workload", "micro-tiny", "--scheme", "aj", "--distance", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "software prefetches:" in out
    assert "sw_prefetch_issued" in out
    assert "prefetch_accuracy" in out
    assert "prefetch_timeliness" in out


def test_run_baseline_omits_prefetch_block(capsys):
    assert main(["run", "--workload", "micro-tiny"]) == 0
    out = capsys.readouterr().out
    assert "software prefetches:" not in out


def test_run_with_trace_export(tmp_path, capsys):
    from repro.obs.timeline import validate_chrome_trace

    trace_path = tmp_path / "trace.json"
    assert main(
        [
            "run",
            "--workload",
            "micro-tiny",
            "--scheme",
            "apt-get",
            "--trace",
            str(trace_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "prefetch span(s)" in out
    assert "timely%" in out  # per-site summary table
    document = json.loads(trace_path.read_text())
    assert validate_chrome_trace(document) == []
    assert document["otherData"]["workload"] == "micro-low-i64"


def test_run_engine_flag(capsys):
    for engine in ("fast", "translate", "reference"):
        assert main(
            ["run", "--workload", "micro-tiny", "--scale", "tiny",
             "--engine", engine]
        ) == 0
    # The deprecated alias still parses (argparse accepts it as a choice).
    assert main(
        ["run", "--workload", "micro-tiny", "--scale", "tiny",
         "--engine", "interpret"]
    ) == 0


def test_engine_flag_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "micro-tiny", "--engine", "jit"])


def test_profile_and_disasm_take_engine_and_scale(tmp_path, capsys):
    profile_path = tmp_path / "p.json"
    assert main(
        ["profile", "--workload", "micro-tiny", "--scale", "tiny",
         "--engine", "reference", "-o", str(profile_path)]
    ) == 0
    assert profile_path.exists()
    assert main(
        ["disasm", "--workload", "micro-tiny", "--scale", "tiny",
         "--engine", "fast"]
    ) == 0


def test_engines_match_through_cli(capsys):
    """The --engine knob must not change reported numbers."""
    outputs = {}
    for engine in ("fast", "reference"):
        assert main(
            ["run", "--workload", "micro-tiny", "--scale", "tiny",
             "--engine", engine]
        ) == 0
        outputs[engine] = capsys.readouterr().out
    assert outputs["fast"] == outputs["reference"]


def test_report_legacy_fixed_distance_alias(capsys):
    import repro.service.api as service_api

    saved = service_api._SERVICE
    try:
        service_api.configure_service()
        assert main(
            ["report", "--workload", "micro-tiny", "--sites",
             "--scale", "tiny", "--fixed-distance", "6"]
        ) == 0
    finally:
        service_api._SERVICE = saved
    out = capsys.readouterr().out
    assert "fixed distance 6" in out


def test_report_sites(capsys):
    import repro.service.api as service_api

    saved = service_api._SERVICE
    try:
        service_api.configure_service()  # fresh in-memory cache
        assert main(
            ["report", "--workload", "micro-tiny", "--sites", "--scale", "tiny"]
        ) == 0
    finally:
        service_api._SERVICE = saved
    out = capsys.readouterr().out
    assert "Eq-1 distances" in out
    assert "fixed distance 4" in out
    assert "overall timely fraction" in out
    assert "timely%" in out


def test_parse_sweep_axes():
    from repro.cli import parse_sweep_axes

    axes = parse_sweep_axes(
        ["schemes=aj,baseline", "distances=4,8", "cache-scales=1,2"]
    )
    assert axes == {
        "schemes": ("aj", "baseline"),
        "distances": (4, 8),
        "cache_scales": (1, 2),
    }
    # Repeating an axis extends it; no flags means no axes.
    assert parse_sweep_axes(["distances=4", "distances=8"]) == {
        "distances": (4, 8)
    }
    assert parse_sweep_axes(None) == {}
    with pytest.raises(ValueError, match="bad --sweep flag"):
        parse_sweep_axes(["colours=red"])
    with pytest.raises(ValueError, match="names no values"):
        parse_sweep_axes(["distances="])
    with pytest.raises(ValueError, match="must be ints"):
        parse_sweep_axes(["distances=four"])


def test_sweep_command(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    assert main([
        "sweep", "--workload", "micro-tiny", "--scale", "tiny",
        "--sweep", "schemes=aj,baseline", "--sweep", "distances=2,4",
        "--cache-dir", str(tmp_path / "cache"), "--output", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "aj" in out and "baseline" in out
    assert "batch" in out  # at least one cell came from the batched pass
    payload = json.loads(out_path.read_text())
    assert payload["kind"] == "SweepResult"
    assert len(payload["cells"]) == 3

    # Re-running against the same cache dir serves every cell cached.
    assert main([
        "sweep", "--workload", "micro-tiny", "--scale", "tiny",
        "--sweep", "schemes=aj,baseline", "--sweep", "distances=2,4",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    out = capsys.readouterr().out
    assert "cache" in out


def test_sweep_command_bad_axis_exits_2(capsys):
    assert main([
        "sweep", "--workload", "micro-tiny", "--scale", "tiny",
        "--sweep", "colours=red",
    ]) == 2
    assert "bad --sweep flag" in capsys.readouterr().err


def test_report_sweep_table(capsys):
    import repro.service.api as service_api

    saved = service_api._SERVICE
    try:
        service_api.configure_service()
        assert main([
            "report", "--workload", "micro-tiny", "--scale", "tiny",
            "--sweep", "schemes=aj", "--sweep", "distances=2,4",
        ]) == 0
    finally:
        service_api._SERVICE = saved
    out = capsys.readouterr().out
    assert "sweep on engine" in out
    assert "aj" in out
