"""Site labelling + rollup tests: labels must survive the pass and
module re-finalization, reports must round-trip through JSON, and the
headline acceptance property — Eq-1 distances beat a naive fixed
distance on timeliness — must hold on real workloads."""

import pytest

from repro.core.site import InjectionSite, site_label
from repro.experiments.runner import (
    hints_with_distance,
    hints_with_site,
    profile_workload,
)
from repro.machine.machine import Machine
from repro.obs.sites import (
    MARGIN_BUCKETS,
    SiteReport,
    format_site_reports,
    site_reports,
    site_table,
)
from repro.passes.aptget_pass import AptGetPass
from repro.workloads.registry import make_workload


def test_site_label_format():
    assert site_label("main", 0x40, InjectionSite.INNER) == "main@0x40/inner"
    assert site_label("f", 8, "outer") == "f@0x8/outer"


def test_site_table_from_stamped_module():
    workload = make_workload("micro-tiny")
    _, hints = profile_workload(workload)
    module, _ = make_workload("micro-tiny").build()
    AptGetPass(hints).run(module)
    prefetch_sites, load_sites = site_table(module)
    assert prefetch_sites, "pass stamped no PREFETCH sites"
    assert load_sites, "pass stamped no delinquent-load sites"
    # Stamped PCs are live in the re-finalized module, and the labels
    # carry the hint's function name.
    pcs = {
        inst.pc for inst in module.function(workload.entry).instructions()
    }
    assert set(prefetch_sites) <= pcs
    assert set(load_sites) <= pcs
    for label in prefetch_sites.values():
        assert "/" in label and "@" in label


def test_site_report_roundtrip():
    report = SiteReport(
        label="f@0x40/inner",
        issued=10,
        timely=5,
        late=2,
        early_evicted=1,
        unused=2,
        uncovered_misses=3,
        margin_sum=70.0,
        margin_min=-10.0,
        margin_max=40.0,
    )
    clone = SiteReport.from_dict(report.to_dict())
    assert clone == report
    assert clone.used == 7
    assert clone.accuracy == pytest.approx(0.7)
    assert clone.coverage == pytest.approx(0.7)
    assert clone.timely_fraction == pytest.approx(5 / 7)
    assert clone.margin_mean == pytest.approx(10.0)
    assert len(clone.margin_hist) == len(MARGIN_BUCKETS) + 1


def test_format_site_reports_smoke():
    assert "no software prefetch" in format_site_reports({})
    report = SiteReport(label="f@0x40/inner", issued=4, timely=3, late=1)
    report.margin_hist[5] = 4
    text = format_site_reports({report.label: report})
    assert "f@0x40/inner" in text
    assert "margin" in text


def _overall_timely(name, hints):
    workload = make_workload(name)
    module, space = workload.build()
    AptGetPass(hints).run(module)
    machine = Machine(module, space)
    trace = machine.enable_tracing()
    machine.run(workload.entry)
    reports = site_reports(trace)
    used = sum(r.used for r in reports.values())
    timely = sum(r.timely for r in reports.values())
    assert used, f"{name}: no prefetches consumed"
    return timely / used


@pytest.mark.parametrize("name", ["HJ8-tiny", "BFS-tiny"])
def test_eq1_beats_fixed_distance_on_timeliness(name):
    """Acceptance: profile-guided (Eq-1 distance + Eq-2 site) prefetching
    must raise the timely fraction over naive inner-site injection with a
    fixed distance of 4 on the hashjoin and BFS workloads."""
    _, hints = profile_workload(make_workload(name))
    eq1 = _overall_timely(name, hints)
    naive = hints_with_distance(
        hints_with_site(hints, InjectionSite.INNER), 4
    )
    fixed = _overall_timely(name, naive)
    assert eq1 > fixed, f"{name}: eq1={eq1:.3f} <= fixed4={fixed:.3f}"
