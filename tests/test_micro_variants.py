"""End-to-end tests for the §3.5 generality variants (non-canonical IVs,
break-style multi-exit loops) and the §3.6 LBR-depth limitation."""

import pytest

from repro.analysis.loops import find_loops, induction_variables
from repro.ir.opcodes import Opcode
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.passes.pipeline import profile_and_optimize
from repro.workloads.micro_variants import (
    BreakConditionMicrobenchmark,
    NonCanonicalMicrobenchmark,
)


class TestNonCanonicalIV:
    def make(self):
        return NonCanonicalMicrobenchmark(
            outer=1_200, span=4_096, target_elems=1 << 17
        )

    def test_structure(self):
        module, _ = self.make().build()
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        ivs = induction_variables(function, inner)
        by_register = {iv.register: iv for iv in ivs}
        assert by_register["j"].step_op is Opcode.MUL
        assert by_register["bit"].step_op is Opcode.ADD

    def test_pipeline_optimizes(self):
        workload = self.make()
        module, space = workload.build()
        baseline = Machine(module, space).run("main")
        outcome = profile_and_optimize(workload.builder)
        assert len(outcome.hints) >= 1
        assert outcome.report.injection_count >= 1
        verify_module(outcome.module)
        optimized = Machine(outcome.module, outcome.space).run("main")
        assert optimized.value == baseline.value
        assert optimized.counters.sw_prefetch_issued > 0
        assert optimized.counters.cycles < baseline.counters.cycles


class TestBreakCondition:
    def make(self):
        return BreakConditionMicrobenchmark(
            outer=800, inner=48, target_elems=1 << 17
        )

    def test_loop_has_two_exits(self):
        module, _ = self.make().build()
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        assert len(inner.exit_edges()) == 2
        assert inner.body == {"inner_h", "inner_body"}

    def test_semantics_match_reference(self):
        workload = self.make()
        module, space = workload.build()
        result = Machine(module, space).run("main")
        bo = space.segment("BO").values
        bi = space.segment("BI").values
        t = space.segment("T").values
        expected = 0
        for i in range(workload.outer):
            for j in range(workload.inner):
                value = t[bo[i] + bi[j]]
                if value == 0:
                    break
                expected += value
        assert result.value == expected

    def test_pipeline_optimizes(self):
        workload = self.make()
        module, space = workload.build()
        baseline = Machine(module, space).run("main")
        outcome = profile_and_optimize(workload.builder)
        assert outcome.report.injection_count >= 1
        verify_module(outcome.module)
        optimized = Machine(outcome.module, outcome.space).run("main")
        assert optimized.value == baseline.value
        assert optimized.counters.cycles < baseline.counters.cycles

    def test_clamp_still_extracted_from_counted_exit(self):
        """The counted exit (j < INNER) provides the clamp even though a
        second, data-dependent exit exists."""
        from repro.analysis.loops import loop_bound

        module, _ = self.make().build()
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        iv = next(
            v for v in induction_variables(function, inner) if v.register == "j"
        )
        bound = loop_bound(function, inner, iv)
        assert bound is not None
        assert bound.bound == 48


class TestLBRDepthLimitation:
    def test_many_branch_loop_defaults_to_distance_one(self):
        """§3.6: a loop body with ~32 taken branches pushes its own latch
        out of the LBR window -> at most one latch entry per snapshot ->
        no latency measurements -> default distance 1."""
        import random

        from repro.core.aptget import AptGet
        from repro.ir.builder import IRBuilder
        from repro.ir.nodes import Module
        from repro.mem.address import AddressSpace
        from repro.profiling.collect import collect_profile

        rng = random.Random(23)
        space = AddressSpace()
        n = 4_000
        b_seg = space.allocate(
            "B", [rng.randrange(1 << 15) for _ in range(n + 600)], elem_size=8
        )
        t_seg = space.allocate("T", 1 << 15, elem_size=8)

        module = Module("branchy")
        b = IRBuilder(module)
        b.function("main")
        entry = b.block("entry")
        loop = b.block("loop")
        # 34 trampoline blocks, each ending in an unconditional (taken)
        # jump, flooding the 32-entry LBR every iteration.
        hops = [b.block(f"hop{k}") for k in range(34)]
        latch = b.block("latch")
        done = b.block("done")

        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        acc = b.phi([(entry, 0)], name="acc")
        ba = b.gep(b_seg.base, i, 8, name="ba")
        idx = b.load(ba, name="idx")
        ta = b.gep(t_seg.base, idx, 8, name="ta")
        value = b.load(ta, name="value")
        acc2 = b.add(acc, value, name="acc2")
        b.jmp(hops[0])
        for k, hop in enumerate(hops):
            b.at(hop)
            b.work(1)
            b.jmp(hops[k + 1] if k + 1 < len(hops) else latch)
        b.at(latch)
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, latch, i2)
        b.add_incoming(acc, latch, acc2)
        cond = b.lt(i2, n, name="cond")
        b.br(cond, loop, done)
        b.at(done)
        b.ret(acc2)
        module.finalize()

        machine = Machine(module, space)
        profile = collect_profile(machine, "main")
        delinquent = profile.delinquent_loads(top=1, min_count=4)
        assert delinquent
        analysis = AptGet().analyze_load(module, profile, delinquent[0])
        assert analysis is not None
        # At most one latch entry fits per 32-deep snapshot.
        assert analysis.inner_estimate.samples < 8
        assert analysis.hint.distance == 1
        assert analysis.inner_estimate.is_default


class TestCallWorkMicrobenchmark:
    def make(self):
        from repro.workloads.micro_variants import CallWorkMicrobenchmark

        return CallWorkMicrobenchmark(inner=32, outer=300)

    def test_semantics_match_reference(self):
        workload = self.make()
        module, space = workload.build()
        result = Machine(module, space).run("main")
        bo = space.segment("BO").values
        bi = space.segment("BI").values
        t = space.segment("T").values
        expected = sum(
            t[bo[i] + bi[j]] & 0xFFFF
            for i in range(workload.outer)
            for j in range(workload.inner)
        )
        assert result.value == expected

    def test_pipeline_optimizes_across_calls(self):
        """Profiling sees through the call-bearing loop; the delinquent
        load in main is still found and optimized."""
        workload = self.make()
        module, space = workload.build()
        baseline = Machine(module, space).run("main")
        outcome = profile_and_optimize(workload.builder)
        assert outcome.report.injection_count >= 1
        verify_module(outcome.module, strict=True)
        optimized = Machine(outcome.module, outcome.space).run("main")
        assert optimized.value == baseline.value
        assert optimized.counters.cycles < baseline.counters.cycles
