"""Error paths of the stable ``repro.api`` v1 surface.

Payloads cross process boundaries, so every malformed shape must come
back as a ``ValueError`` naming the problem — never a bare
``TypeError``/``AttributeError`` out of dataclass plumbing — and
``execute`` must reject unknown request types explicitly.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api


def _payload(**overrides) -> dict:
    payload = {
        "kind": "RunRequest",
        "v": api.API_VERSION,
        "workload": "BFS",
        "scale": "small",
        "scheme": "baseline",
        "distance": 32,
        "engine": None,
    }
    payload.update(overrides)
    return payload


def test_round_trip_is_the_baseline():
    request = api.RunRequest(workload="BFS", scale="small")
    assert api.RunRequest.from_json(request.to_json()) == request


@pytest.mark.parametrize("bad", [None, 7, "x", ["kind"], (1, 2)])
def test_non_dict_payload_rejected(bad):
    with pytest.raises(ValueError, match="JSON object"):
        api.RunRequest.from_payload(bad)


def test_wrong_kind_rejected():
    with pytest.raises(ValueError, match="ProfileRequest.*RunRequest"):
        api.RunRequest.from_payload(_payload(kind="ProfileRequest"))


@pytest.mark.parametrize("version", [0, 2, "1", None])
def test_unknown_payload_version_rejected(version):
    with pytest.raises(ValueError, match="unsupported payload version"):
        api.RunRequest.from_payload(_payload(v=version))


def test_unexpected_field_rejected_with_known_fields_named():
    with pytest.raises(ValueError, match="unexpected field.*bogus"):
        api.RunRequest.from_payload(_payload(bogus=1))
    with pytest.raises(ValueError, match="workload"):
        # The known-field list is part of the message (debuggability).
        api.RunRequest.from_payload(_payload(bogus=1))


def test_missing_required_field_is_a_value_error():
    payload = _payload()
    del payload["workload"]
    with pytest.raises(ValueError, match="malformed RunRequest payload"):
        api.RunRequest.from_payload(payload)


def test_bad_json_text_raises_from_json():
    with pytest.raises(json.JSONDecodeError):
        api.RunRequest.from_json("{not json")


def test_request_validation_still_fires_through_payloads():
    with pytest.raises(ValueError, match="unknown scheme"):
        api.RunRequest.from_payload(_payload(scheme="psychic"))
    with pytest.raises(ValueError, match="engine must be one of"):
        api.RunRequest.from_payload(_payload(engine="quantum"))


def test_every_request_type_shares_the_hardened_path():
    for cls in (
        api.ProfileRequest,
        api.RunRequest,
        api.SiteReportRequest,
        api.SuiteRequest,
    ):
        with pytest.raises(ValueError, match="JSON object"):
            cls.from_payload("nope")
        with pytest.raises(ValueError, match="unexpected field"):
            payload = json.loads(
                cls(workload="BFS").to_json()
                if cls is not api.SuiteRequest
                else cls().to_json()
            )
            payload["extra"] = True
            cls.from_payload(payload)


def test_execute_rejects_unknown_request_kind():
    with pytest.raises(TypeError, match="unknown request type.*str"):
        api.execute("RunRequest")
    with pytest.raises(TypeError, match="ProfileRequest"):
        # The accepted request types are named in the message.
        api.execute(object())
