"""Model-validation tests: the analytical pieces measured against the
simulator's ground truth on controlled kernels (Eq-1's inputs, peak
positions, trip-count measurement, distance optimality)."""

import pytest

from repro.core.aptget import AptGet
from repro.experiments.runner import (
    profile_workload,
    run_baseline,
    run_with_hints,
    hints_with_distance,
)
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.workloads.hashjoin import HashJoinWorkload
from repro.workloads.micro import IndirectMicrobenchmark


def analyze_micro(inner=256, work=0, iterations=30_000):
    workload = IndirectMicrobenchmark(
        inner=inner, work=work, total_iterations=iterations
    )
    module, space = workload.build()
    machine = Machine(module, space)
    profile = collect_profile(machine, "main")
    target_pc = workload.delinquent_load_pc(module)
    analysis = AptGet().analyze_load(module, profile, target_pc)
    assert analysis is not None
    return workload, analysis


class TestPeakPositions:
    def test_miss_peak_sits_dram_latency_above_a_lower_peak(self):
        """The distribution's extreme peaks must be separated by roughly
        the memory latency (400 cycles on the default machine)."""
        _, analysis = analyze_micro()
        distribution = analysis.inner_distribution
        assert len(distribution.peaks) >= 2
        memory_latency = (
            MachineConfig().memory.llc.latency
            + MachineConfig().memory.dram_latency
        )
        separation = distribution.miss_latency - distribution.ic_latency
        assert separation == pytest.approx(memory_latency, rel=0.35)

    def test_ic_grows_with_work(self):
        _, light = analyze_micro(work=0)
        _, heavy = analyze_micro(work=40)
        assert (
            heavy.inner_distribution.ic_latency
            > light.inner_distribution.ic_latency
        )

    def test_distance_inversely_tracks_ic(self):
        _, light = analyze_micro(work=0)
        _, heavy = analyze_micro(work=40)
        assert light.hint.distance > heavy.hint.distance


class TestTripCountMeasurement:
    @pytest.mark.parametrize("epb", [2, 4, 8])
    def test_bucket_size_recovered(self, epb):
        workload = HashJoinWorkload(
            epb, "NPO", table_entries=1 << 15, probes=8_000
        )
        module, space = workload.build()
        machine = Machine(module, space)
        profile = collect_profile(machine, "main")
        pcs = profile.delinquent_loads(top=1, min_count=4)
        analysis = AptGet().analyze_load(module, profile, pcs[0])
        assert analysis is not None
        assert analysis.trip_count == pytest.approx(epb, abs=1.0)


class TestDistanceOptimality:
    def test_eq1_distance_within_factor_two_of_sweep_best(self):
        """On the canonical microbenchmark, the profiled distance must be
        within 2x of the empirically best distance (the property behind
        Fig 8)."""
        workload = IndirectMicrobenchmark(
            inner=256, complexity="low", total_iterations=20_000
        )
        baseline = run_baseline(
            IndirectMicrobenchmark(
                inner=256, complexity="low", total_iterations=20_000
            )
        )
        _, hints = profile_workload(workload)
        assert len(hints)
        profiled = max(h.distance for h in hints)

        best_speedup, best_distance = 0.0, 1
        for distance in (1, 2, 4, 8, 16, 32, 64):
            swept = run_with_hints(
                IndirectMicrobenchmark(
                    inner=256, complexity="low", total_iterations=20_000
                ),
                hints_with_distance(hints, distance),
            )
            speedup = baseline.cycles / swept.cycles
            if speedup > best_speedup:
                best_speedup, best_distance = speedup, distance
        assert best_distance / 2 <= profiled <= best_distance * 4
