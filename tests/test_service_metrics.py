"""Unit tests for the service metrics registry."""

from repro.service.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounters:
    def test_inc_and_get(self):
        metrics = MetricsRegistry()
        assert metrics.get("cache.hits") == 0
        metrics.inc("cache.hits")
        metrics.inc("cache.hits", 4)
        assert metrics.get("cache.hits") == 5

    def test_counters_snapshot_sorted(self):
        metrics = MetricsRegistry()
        metrics.inc("b")
        metrics.inc("a", 2)
        assert metrics.counters() == {"a": 2, "b": 1}
        assert list(metrics.counters()) == ["a", "b"]


class TestHistograms:
    def test_observe_tracks_sum_count_min_max(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        data = histogram.to_dict()
        assert data["count"] == 3
        assert data["sum"] == 0.05 + 0.5 + 5.0
        assert data["min"] == 0.05
        assert data["max"] == 5.0
        assert data["buckets"] == {"0.1": 1, "1.0": 1, "+inf": 1}

    def test_registry_observe_uses_default_buckets(self):
        metrics = MetricsRegistry()
        metrics.observe("service.job_seconds", 0.2)
        data = metrics.to_dict()["histograms"]["service.job_seconds"]
        assert data["count"] == 1
        assert len(data["buckets"]) == len(DEFAULT_BUCKETS) + 1

    def test_bucket_placement_matches_linear_scan(self):
        """The bisect-based observe must bucket exactly like the old
        first-bound->= linear scan, including on bucket edges."""
        buckets = (0.1, 1.0, 10.0)
        histogram = Histogram("h", buckets=buckets)
        values = [0.0, 0.1, 0.10001, 1.0, 3.0, 10.0, 11.0, -1.0]
        for value in values:
            histogram.observe(value)

        def linear_bucket(value):
            for index, bound in enumerate(buckets):
                if value <= bound:
                    return index
            return len(buckets)

        expected = [0] * (len(buckets) + 1)
        for value in values:
            expected[linear_bucket(value)] += 1
        assert histogram.bucket_counts == expected

    def test_registry_get_returns_histogram_snapshot(self):
        metrics = MetricsRegistry()
        metrics.observe("service.job_seconds", 0.2)
        data = metrics.get("service.job_seconds")
        assert isinstance(data, dict)
        assert data["count"] == 1
        # Counters still take precedence and missing names stay 0.
        metrics.inc("cache.hits")
        assert metrics.get("cache.hits") == 1
        assert metrics.get("nope") == 0


class TestReporting:
    def test_to_dict_and_report(self):
        metrics = MetricsRegistry()
        metrics.inc("cache.hits", 3)
        metrics.observe("service.job_seconds", 0.25)
        snapshot = metrics.to_dict()
        assert snapshot["counters"]["cache.hits"] == 3
        report = metrics.report()
        assert "cache.hits: 3" in report
        assert "service.job_seconds" in report
        assert "count=1" in report

    def test_event_does_not_raise(self):
        metrics = MetricsRegistry()
        metrics.event("cache.hit", kind="profile", workload="micro-tiny")
