"""Unit tests for the service metrics registry."""

import pytest

from repro.service.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounters:
    def test_inc_and_get(self):
        metrics = MetricsRegistry()
        assert metrics.get("cache.hits") == 0
        metrics.inc("cache.hits")
        metrics.inc("cache.hits", 4)
        assert metrics.get("cache.hits") == 5

    def test_counters_snapshot_sorted(self):
        metrics = MetricsRegistry()
        metrics.inc("b")
        metrics.inc("a", 2)
        assert metrics.counters() == {"a": 2, "b": 1}
        assert list(metrics.counters()) == ["a", "b"]


class TestHistograms:
    def test_observe_tracks_sum_count_min_max(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        data = histogram.to_dict()
        assert data["count"] == 3
        assert data["sum"] == 0.05 + 0.5 + 5.0
        assert data["min"] == 0.05
        assert data["max"] == 5.0
        assert data["buckets"] == {"0.1": 1, "1.0": 1, "+inf": 1}

    def test_registry_observe_uses_default_buckets(self):
        metrics = MetricsRegistry()
        metrics.observe("service.job_seconds", 0.2)
        data = metrics.to_dict()["histograms"]["service.job_seconds"]
        assert data["count"] == 1
        assert len(data["buckets"]) == len(DEFAULT_BUCKETS) + 1

    def test_bucket_placement_matches_linear_scan(self):
        """The bisect-based observe must bucket exactly like the old
        first-bound->= linear scan, including on bucket edges."""
        buckets = (0.1, 1.0, 10.0)
        histogram = Histogram("h", buckets=buckets)
        values = [0.0, 0.1, 0.10001, 1.0, 3.0, 10.0, 11.0, -1.0]
        for value in values:
            histogram.observe(value)

        def linear_bucket(value):
            for index, bound in enumerate(buckets):
                if value <= bound:
                    return index
            return len(buckets)

        expected = [0] * (len(buckets) + 1)
        for value in values:
            expected[linear_bucket(value)] += 1
        assert histogram.bucket_counts == expected

    def test_registry_get_returns_histogram_snapshot(self):
        metrics = MetricsRegistry()
        metrics.observe("service.job_seconds", 0.2)
        data = metrics.get("service.job_seconds")
        assert isinstance(data, dict)
        assert data["count"] == 1
        # Counters still take precedence and missing names stay 0.
        metrics.inc("cache.hits")
        assert metrics.get("cache.hits") == 1
        assert metrics.get("nope") == 0


class TestReporting:
    def test_to_dict_and_report(self):
        metrics = MetricsRegistry()
        metrics.inc("cache.hits", 3)
        metrics.observe("service.job_seconds", 0.25)
        snapshot = metrics.to_dict()
        assert snapshot["counters"]["cache.hits"] == 3
        report = metrics.report()
        assert "cache.hits: 3" in report
        assert "service.job_seconds" in report
        assert "count=1" in report

    def test_event_does_not_raise(self):
        metrics = MetricsRegistry()
        metrics.event("cache.hit", kind="profile", workload="micro-tiny")


class TestHistogramMergeDict:
    def test_merge_identical_layouts_is_exact(self):
        buckets = (0.1, 1.0)
        left = Histogram("h", buckets=buckets)
        right = Histogram("h", buckets=buckets)
        for value in (0.05, 0.5, 2.0):
            left.observe(value)
        for value in (0.07, 5.0):
            right.observe(value)
        left.merge_dict(right.to_dict())
        data = left.to_dict()
        assert data["count"] == 5
        assert data["sum"] == pytest.approx(0.05 + 0.5 + 2.0 + 0.07 + 5.0)
        assert data["min"] == 0.05
        assert data["max"] == 5.0
        assert data["buckets"] == {"0.1": 2, "1.0": 1, "+inf": 2}

    def test_merge_empty_snapshot_is_a_noop(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        before = histogram.to_dict()
        histogram.merge_dict(Histogram("h", buckets=(1.0,)).to_dict())
        assert histogram.to_dict() == before

    def test_merge_into_empty_adopts_min_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        other = Histogram("h", buckets=(1.0,))
        other.observe(0.25)
        histogram.merge_dict(other.to_dict())
        assert histogram.to_dict()["min"] == 0.25
        assert histogram.to_dict()["max"] == 0.25

    def test_foreign_bound_lands_in_containing_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        # A snapshot taken with bound 0.5: its count belongs in <=1.0.
        histogram.merge_dict(
            {"count": 3, "sum": 0.9, "min": 0.2, "max": 0.4,
             "buckets": {"0.5": 3}}
        )
        assert histogram.to_dict()["buckets"] == {
            "1.0": 3, "10.0": 0, "+inf": 0,
        }


class TestMergeSnapshot:
    def test_counters_add_and_histograms_fold(self):
        left = MetricsRegistry()
        left.inc("cache.hits", 2)
        left.observe("service.job_seconds", 0.2)
        right = MetricsRegistry()
        right.inc("cache.hits", 3)
        right.inc("cache.misses")
        right.observe("service.job_seconds", 0.4)
        left.merge_snapshot(right.to_dict())
        assert left.get("cache.hits") == 5
        assert left.get("cache.misses") == 1
        assert left.get("service.job_seconds")["count"] == 2

    def test_unknown_histogram_adopts_snapshot_bounds(self):
        registry = MetricsRegistry()
        registry.merge_snapshot(
            {"histograms": {"h": {"count": 1, "sum": 2.0, "min": 2.0,
                                  "max": 2.0, "buckets": {"5.0": 1}}}}
        )
        assert registry.get("h")["buckets"] == {"5.0": 1, "+inf": 0}


class TestSnapshotFiles:
    def test_write_then_read_round_trips(self, tmp_path):
        from repro.service.metrics import (
            read_snapshot,
            snapshot_path,
            write_snapshot,
        )

        registry = MetricsRegistry()
        registry.inc("serve.done", 4)
        registry.observe("service.job_seconds", 0.3)
        path = write_snapshot(registry, tmp_path, pid=1234)
        assert path == snapshot_path(tmp_path, pid=1234)
        assert path.name == "metrics-1234.json"
        snapshot = read_snapshot(path)
        assert snapshot == registry.to_dict()

    def test_rewrite_replaces_not_accumulates(self, tmp_path):
        from repro.service.metrics import read_snapshot, write_snapshot

        registry = MetricsRegistry()
        registry.inc("serve.done")
        write_snapshot(registry, tmp_path, pid=1)
        registry.inc("serve.done")
        path = write_snapshot(registry, tmp_path, pid=1)
        assert read_snapshot(path)["counters"]["serve.done"] == 2
        assert len(list(tmp_path.glob("*.json"))) == 1  # no temp litter

    def test_corrupt_snapshot_reads_as_none(self, tmp_path):
        from repro.service.metrics import read_snapshot

        path = tmp_path / "metrics-9.json"
        path.write_text("{torn")
        assert read_snapshot(path) is None
        path.write_text('"not a dict"')
        assert read_snapshot(path) is None

    def test_merge_snapshots_folds_every_process(self, tmp_path):
        from repro.service.metrics import merge_snapshots, write_snapshot

        for pid, hits in ((1, 2), (2, 5)):
            registry = MetricsRegistry()
            registry.inc("cache.hits", hits)
            registry.observe("service.job_seconds", 0.1 * pid)
            write_snapshot(registry, tmp_path, pid=pid)
        (tmp_path / "metrics-3.json").write_text("{torn")  # skipped

        merged = merge_snapshots(tmp_path)
        assert merged.get("cache.hits") == 7
        data = merged.get("service.job_seconds")
        assert data["count"] == 2
        assert data["min"] == 0.1
        assert data["max"] == 0.2

    def test_merge_snapshots_missing_dir_is_empty(self, tmp_path):
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots(tmp_path / "nope")
        assert merged.to_dict()["counters"] == {}
