"""Graph-generation memoization through the repro.service store.

Suite runs used to regenerate identical graphs once per job; Dataset
.build() now keys each generated graph by (workload, size, seed, and
the generator parameters) in a content-addressed in-process store.
"""

from __future__ import annotations

import pytest

from repro.workloads.graph500 import _RMATDataset
from repro.workloads.graphs import (
    clear_graph_cache,
    dataset,
    graph_store,
    synthetic_dataset,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_graph_cache()
    yield
    clear_graph_cache()


def test_second_build_hits_cache_and_is_equal():
    ds = synthetic_dataset(2_000, 4.0, seed=7)
    first = ds.build()
    assert graph_store().metrics.get("graph_cache.misses") == 1
    second = ds.build()
    assert graph_store().metrics.get("graph_cache.hits") == 1
    assert second is not first  # a hit decodes fresh objects
    assert second.row is not first.row
    assert (second.name, second.n, second.row, second.col) == (
        first.name,
        first.n,
        first.row,
        first.col,
    )


def test_cached_graph_matches_direct_generation():
    ds = dataset("p2p-Gnutella31")
    ds.build()  # prime
    cached = ds.build()
    direct = ds._generate()
    assert (cached.n, cached.row, cached.col) == (
        direct.n,
        direct.row,
        direct.col,
    )


def test_different_seed_misses():
    a = synthetic_dataset(1_000, 2.0, seed=1)
    b = synthetic_dataset(1_000, 2.0, seed=2)
    ga = a.build()
    gb = b.build()
    assert graph_store().metrics.get("graph_cache.misses") == 2
    assert graph_store().metrics.get("graph_cache.hits") == 0
    assert (ga.row, ga.col) != (gb.row, gb.col)


def test_rmat_dataset_keys_on_scale_and_edgefactor():
    small = _RMATDataset(6, 4, seed=3)
    bigger = _RMATDataset(7, 4, seed=3)
    g_small = small.build()
    g_bigger = bigger.build()
    assert graph_store().metrics.get("graph_cache.misses") == 2
    assert g_small.n == 1 << 6 and g_bigger.n == 1 << 7
    replay = small.build()
    assert graph_store().metrics.get("graph_cache.hits") == 1
    assert (replay.row, replay.col) == (g_small.row, g_small.col)


def test_mutating_a_hit_does_not_poison_the_cache():
    ds = synthetic_dataset(500, 2.0, seed=9)
    ds.build()
    victim = ds.build()
    victim.col[:] = [0] * len(victim.col)
    clean = ds.build()
    assert clean.col != victim.col or not victim.col
    assert clean.col == ds._generate().col
