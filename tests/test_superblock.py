"""Turbo-tier tests: nest-fusion shape, steady-state bulk stepping,
observation-point guards, the tracing bypass, and the adaptive
short-trip fallback.

Cross-engine bit-identicality over random programs lives in the
``repro.qa`` oracle and ``tests/test_machine_engines.py``; this file
pins down the *structural* behaviour of the superblock compiler and the
dispatch-loop contract around it.
"""

from __future__ import annotations

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.machine.config import MachineConfig
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.machine import Machine
from repro.machine.superblock import (
    _ADAPT_WARMUP,
    TurboCompiledFunction,
    compile_turbo,
)
from repro.mem.address import AddressSpace
from tests.conftest import (
    build_indirect_loop,
    build_nested_indirect,
    build_sum_loop,
)


def build_diamond_outer_short_inner(
    outer: int = 200, inner: int = 1
) -> tuple[Module, AddressSpace, int]:
    """An outer loop whose body is a branch diamond (unfusable) around
    a short-trip inner loop (fusable): the shape that exercises the
    adaptive bypass — the inner superblock is entered once per outer
    iteration and never gets to amortize its prologue."""
    space = AddressSpace()
    data = space.allocate("data", [3] * 1024, elem_size=8)
    module = Module("diamond_outer")
    b = IRBuilder(module)
    b.function("main")
    (
        entry,
        outer_h,
        left,
        right,
        merge,
        inner_h,
        outer_latch,
        done,
    ) = b.blocks(
        "entry",
        "outer_h",
        "left",
        "right",
        "merge",
        "inner_h",
        "outer_latch",
        "done",
    )
    b.at(entry)
    b.jmp(outer_h)
    b.at(outer_h)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 0)], name="acc")
    half = b.lt(i, outer // 2, name="half")
    b.br(half, left, right)
    b.at(left)
    lv = b.add(acc, 1, name="lv")
    b.jmp(merge)
    b.at(right)
    rv = b.add(acc, 2, name="rv")
    b.jmp(merge)
    b.at(merge)
    base = b.phi([(left, lv), (right, rv)], name="base")
    b.jmp(inner_h)
    b.at(inner_h)
    j = b.phi([(merge, 0)], name="j")
    acc_i = b.phi([(merge, base)], name="acc.i")
    a = b.gep(data.base, j, 8, name="a")
    v = b.load(a, name="v")
    acc_i2 = b.add(acc_i, v, name="acc.i2")
    j2 = b.add(j, 1, name="j2")
    b.add_incoming(j, inner_h, j2)
    b.add_incoming(acc_i, inner_h, acc_i2)
    jc = b.lt(j2, inner, name="jc")
    b.br(jc, inner_h, outer_latch)
    b.at(outer_latch)
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, outer_latch, i2)
    b.add_incoming(acc, outer_latch, acc_i2)
    ic = b.lt(i2, outer, name="ic")
    b.br(ic, outer_h, done)
    b.at(done)
    b.ret(acc_i2)
    module.finalize()
    expected = 0
    for k in range(outer):
        expected += 1 if k < outer // 2 else 2
        expected += 3 * inner
    return module, space, expected


class TestFusionShape:
    def test_plain_loop_fuses_to_depth_one(self):
        module, _, _ = build_sum_loop()
        tcf = compile_turbo(module.functions["main"])
        assert isinstance(tcf, TurboCompiledFunction)
        fused = tcf.superblocks()
        assert [sb.header for sb in fused] == ["loop"]
        assert fused[0].depth == 1
        assert fused[0].bound_cycles > 0
        assert fused[0].bound_retired > 0

    def test_nest_fuses_to_depth_two_and_keeps_inner(self):
        module, _, _ = build_nested_indirect()
        tcf = compile_turbo(module.functions["main"])
        by_header = {sb.header: sb for sb in tcf.superblocks()}
        # The outer unit absorbs the fused inner loop; the inner loop
        # also keeps a standalone superblock at its own header, where
        # a run resumed after a mid-nest sample re-enters bulk mode.
        assert by_header["outer_h"].depth == 2
        assert by_header["inner_h"].depth == 1
        assert set(by_header["inner_h"].path) <= set(
            by_header["outer_h"].path
        )
        stats = tcf.stats()
        assert stats["superblocks"] == 2
        assert stats["max_fusion_depth"] == 2

    def test_diamond_body_is_rejected_but_inner_fuses(self):
        module, _, _ = build_diamond_outer_short_inner()
        tcf = compile_turbo(module.functions["main"])
        assert [sb.header for sb in tcf.superblocks()] == ["inner_h"]

    def test_generated_source_shape(self):
        module, _, _ = build_sum_loop()
        tcf = compile_turbo(module.functions["main"])
        sb = tcf.superblocks()[0]
        assert "def __superblock(R, st, fp):" in sb.source_plain
        # The entry guard and the hoisted observation-point limits.
        assert "_gc = st.next_sample" in sb.source_plain
        assert "_gm = st.max_instructions" in sb.source_plain
        assert "return -1" in sb.source_plain
        # The profiled variant records branches; the plain one must not.
        assert "lbr_push" in sb.source_profiled
        assert "lbr_push" not in sb.source_plain


@pytest.mark.parametrize(
    "builder",
    [build_sum_loop, build_indirect_loop, build_nested_indirect,
     build_diamond_outer_short_inner],
    ids=["sum", "indirect", "nested", "diamond"],
)
class TestBulkSteppingIsExact:
    def _run(self, builder, engine, profile_period=None, config=None):
        module, space, expected = builder()
        machine = Machine(module, space, config=config, engine=engine)
        if profile_period is not None:
            machine.enable_profiling(period=profile_period)
        result = machine.run("main")
        return machine, result, expected

    def test_matches_reference(self, builder):
        machine_t, result_t, expected = self._run(builder, "turbo")
        machine_r, result_r, _ = self._run(builder, "reference")
        assert result_t.value == result_r.value == expected
        assert (
            machine_t.counters.as_dict() == machine_r.counters.as_dict()
        )

    def test_matches_reference_with_sampler(self, builder):
        # A short period forces the guard to bail near every sample so
        # the observation fires at the exact per-block boundary.
        machine_t, result_t, _ = self._run(builder, "turbo", profile_period=300)
        machine_r, result_r, _ = self._run(
            builder, "reference", profile_period=300
        )
        assert result_t.value == result_r.value
        assert (
            machine_t.counters.as_dict() == machine_r.counters.as_dict()
        )
        assert machine_t.sampler.samples == machine_r.sampler.samples
        assert (
            machine_t.sampler.load_miss_counts
            == machine_r.sampler.load_miss_counts
        )


class TestDispatchContract:
    def test_execution_limit_raises_like_reference(self):
        module, _, _ = build_sum_loop(n=1000)
        config = MachineConfig(max_instructions=500)
        for engine in ("turbo", "reference"):
            machine = Machine(
                module, build_sum_loop(n=1000)[1], config=config, engine=engine
            )
            with pytest.raises(ExecutionLimitExceeded):
                machine.run("main")

    def test_tracing_bypasses_bulk_stepping(self):
        module, space, expected = build_indirect_loop()
        machine = Machine(module, space, engine="turbo")
        machine.enable_tracing()
        tcf = machine._compile("main")
        calls = 0
        sb = tcf.superblocks()[0]
        original = sb.run_plain

        def counting(R, st, fp):
            nonlocal calls
            calls += 1
            return original(R, st, fp)

        sb.run_plain = counting
        try:
            result = machine.run("main")
        finally:
            sb.run_plain = original
        assert result.value == expected
        assert calls == 0, "bulk stepping must be disabled while tracing"

    def test_bulk_stepping_engages_without_tracing(self):
        module, space, expected = build_indirect_loop()
        machine = Machine(module, space, engine="turbo")
        tcf = machine._compile("main")
        calls = 0
        sb = tcf.superblocks()[0]
        original = sb.run_plain

        def counting(R, st, fp):
            nonlocal calls
            calls += 1
            return original(R, st, fp)

        sb.run_plain = counting
        try:
            result = machine.run("main")
        finally:
            sb.run_plain = original
        assert result.value == expected
        assert calls > 0

    def test_adaptive_bypass_stops_short_trip_bulk_calls(self):
        # 200 outer iterations enter the 1-trip inner superblock once
        # each; after the warmup window the dispatch loop must clear
        # the slot and stop paying the bulk-call prologue.
        module, space, expected = build_diamond_outer_short_inner(
            outer=200, inner=1
        )
        machine = Machine(module, space, engine="turbo")
        tcf = machine._compile("main")
        calls = 0
        sb = tcf.superblocks()[0]
        original = sb.run_plain

        def counting(R, st, fp):
            nonlocal calls
            calls += 1
            return original(R, st, fp)

        sb.run_plain = counting
        try:
            result = machine.run("main")
        finally:
            sb.run_plain = original
        assert result.value == expected
        assert calls == _ADAPT_WARMUP

    def test_adaptive_bypass_is_per_run(self):
        # The cleared slot is run-local state: a fresh run warms up
        # again (and stays bit-identical either way).
        module, space, expected = build_diamond_outer_short_inner(
            outer=200, inner=1
        )
        machine = Machine(module, space, engine="turbo")
        first = machine.run("main")
        second = machine.run("main")
        assert first.value == second.value == expected
