"""Tests for the injection mechanics: inner/outer slice cloning, distance
advance, clamping, and semantic preservation."""

import pytest

from repro.analysis.loops import find_loops, innermost_loop_of
from repro.analysis.slices import extract_load_slice
from repro.ir.opcodes import Opcode
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.passes.inject import inject_inner, inject_outer
from tests.conftest import (
    build_indirect_loop,
    build_nested_indirect,
    build_sum_loop,
)


def target_load(module, dst, function="main"):
    function = module.function(function)
    load = next(
        inst
        for inst in function.instructions()
        if inst.op is Opcode.LOAD and inst.dst == dst
    )
    return function, load


def prefetch_count(module):
    return sum(
        1
        for function in module.functions.values()
        for inst in function.instructions()
        if inst.op is Opcode.PREFETCH
    )


class TestInnerInjection:
    def test_injects_and_preserves_semantics(self):
        module, space, expected = build_indirect_loop()
        function, load = target_load(module, "value")
        loops = find_loops(function)
        loop = innermost_loop_of(loops, "loop")
        load_slice = extract_load_slice(function, load)
        result = inject_inner(function, load, load_slice, loop, distance=16)
        assert result.success
        assert result.site == "inner"
        module.finalize()
        verify_module(module)
        assert prefetch_count(module) == 1
        run = Machine(module, space).run("main")
        assert run.value == expected
        assert run.counters.sw_prefetch_issued > 0

    def test_clamp_uses_loop_bound(self):
        module, _, _ = build_indirect_loop(n=200)
        function, load = target_load(module, "value")
        loops = find_loops(function)
        load_slice = extract_load_slice(function, load)
        inject_inner(
            function, load, load_slice, loops[0], distance=16
        )
        block = function.block("loop")
        mins = [i for i in block.instructions if i.op is Opcode.MIN]
        assert len(mins) == 1
        # min(advanced, n - 1) against the CMP_LT bound.
        assert 199 in mins[0].args

    def test_minimal_clone_reuses_independent_values(self):
        module, _, _ = build_nested_indirect()
        function, load = target_load(module, "t.v")
        loops = find_loops(function)
        inner = innermost_loop_of(loops, "inner_h")
        load_slice = extract_load_slice(function, load)
        before = len(list(function.instructions()))
        result = inject_inner(
            function, load, load_slice, inner, distance=4, minimal_clone=True
        )
        added_minimal = result.added_instructions

        module2, _, _ = build_nested_indirect()
        function2, load2 = target_load(module2, "t.v")
        loops2 = find_loops(function2)
        inner2 = innermost_loop_of(loops2, "inner_h")
        slice2 = extract_load_slice(function2, load2)
        result2 = inject_inner(
            function2, load2, slice2, inner2, distance=4, minimal_clone=False
        )
        assert result2.added_instructions > added_minimal
        del before

    def test_semantics_preserved_nested(self):
        module, space, expected = build_nested_indirect()
        function, load = target_load(module, "t.v")
        loops = find_loops(function)
        inner = innermost_loop_of(loops, "inner_h")
        load_slice = extract_load_slice(function, load)
        assert inject_inner(function, load, load_slice, inner, distance=3)
        module.finalize()
        verify_module(module)
        assert Machine(module, space).run("main").value == expected

    def test_rejects_zero_distance(self):
        module, _, _ = build_indirect_loop()
        function, load = target_load(module, "value")
        loops = find_loops(function)
        load_slice = extract_load_slice(function, load)
        result = inject_inner(function, load, load_slice, loops[0], distance=0)
        assert not result.success

    def test_rejects_slice_without_iv(self):
        # A load whose address is a plain constant has no IV dependence.
        from repro.ir.builder import IRBuilder
        from repro.ir.nodes import Module
        from repro.mem.address import AddressSpace

        space = AddressSpace()
        seg = space.allocate("x", [7] * 4, elem_size=8)
        module = Module("c")
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        v = b.load(seg.base, name="v")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        c = b.lt(i2, 10, name="c")
        b.br(c, loop, done)
        b.at(done)
        b.ret("v")
        module.finalize()
        function = module.function("main")
        loops = find_loops(function)
        load = next(
            inst for inst in function.instructions() if inst.op is Opcode.LOAD
        )
        load_slice = extract_load_slice(function, load)
        result = inject_inner(function, load, load_slice, loops[0], distance=4)
        assert not result.success

    def test_non_canonical_multiplicative_iv(self):
        """§3.5: support i *= 2 style induction."""
        import random

        from repro.ir.builder import IRBuilder
        from repro.ir.nodes import Module
        from repro.mem.address import AddressSpace

        rng = random.Random(3)
        space = AddressSpace()
        n = 1 << 12
        b_seg = space.allocate(
            "B", [rng.randrange(n) for _ in range(n + 600)], elem_size=8
        )
        t_seg = space.allocate(
            "T", [rng.randrange(100) for _ in range(n)], elem_size=8
        )
        module = Module("mul")
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 1)], name="i")
        acc = b.phi([(entry, 0)], name="acc")
        ba = b.gep(b_seg.base, i, 8, name="ba")
        idx = b.load(ba, name="idx")
        ta = b.gep(t_seg.base, idx, 8, name="ta")
        v = b.load(ta, name="v")
        acc2 = b.add(acc, v, name="acc2")
        i2 = b.mul(i, 2, name="i2")
        b.add_incoming(i, loop, i2)
        b.add_incoming(acc, loop, acc2)
        c = b.lt(i2, n, name="c")
        b.br(c, loop, done)
        b.at(done)
        b.ret(acc2)
        module.finalize()

        function = module.function("main")
        loops = find_loops(function)
        load = next(
            inst for inst in function.instructions() if inst.dst == "v"
        )
        load_slice = extract_load_slice(function, load)
        result = inject_inner(function, load, load_slice, loops[0], distance=2)
        assert result.success
        module.finalize()
        verify_module(module)
        baseline = Machine(*build_mul_baseline())
        # Execution still terminates and produces a value.
        run = Machine(module, space).run("main")
        assert run.counters.sw_prefetch_issued > 0
        del baseline


def build_mul_baseline():
    # Helper for the multiplicative test: any valid machine works.
    module, space, _ = build_sum_loop(n=4)
    return module, space


class TestOuterInjection:
    def build(self):
        module, space, expected = build_nested_indirect(outer=40, inner=6)
        function, load = target_load(module, "t.v")
        loops = find_loops(function)
        inner = innermost_loop_of(loops, "inner_h")
        outer = inner.parent
        load_slice = extract_load_slice(function, load)
        return module, space, expected, function, load, load_slice, inner, outer

    def test_outer_injection_in_preheader(self):
        module, space, expected, function, load, load_slice, inner, outer = (
            self.build()
        )
        result = inject_outer(
            function, load, load_slice, inner, outer, distance=4
        )
        assert result.success
        assert result.site == "outer"
        # The prefetch slice landed in the inner loop's preheader
        # (outer_h), not the inner block.
        assert any(
            inst.op is Opcode.PREFETCH
            for inst in function.block("outer_h").instructions
        )
        assert not any(
            inst.op is Opcode.PREFETCH
            for inst in function.block("inner_h").instructions
        )
        module.finalize()
        verify_module(module)
        run = Machine(module, space).run("main")
        assert run.value == expected
        assert run.counters.sw_prefetch_issued > 0

    def test_sweep_emits_multiple_prefetches(self):
        module, space, expected, function, load, load_slice, inner, outer = (
            self.build()
        )
        result = inject_outer(
            function, load, load_slice, inner, outer, distance=4, sweep=3
        )
        assert result.success
        assert result.prefetches_emitted == 3
        module.finalize()
        verify_module(module)
        assert Machine(module, space).run("main").value == expected

    def test_outer_covers_future_outer_iterations(self):
        # With a timely outer distance, the delinquent load's misses drop
        # dramatically vs the non-prefetching baseline.
        module, space, expected, function, load, load_slice, inner, outer = (
            self.build()
        )
        base_module, base_space, _ = build_nested_indirect(outer=40, inner=6)
        base = Machine(base_module, base_space).run("main")
        inject_outer(function, load, load_slice, inner, outer, distance=4, sweep=6)
        module.finalize()
        run = Machine(module, space).run("main")
        assert run.value == expected
        assert run.counters.sw_prefetch_useful > 0

    def test_fails_without_outer_dependence(self):
        # Single-loop module: no outer loop to advance.
        module, _, _ = build_indirect_loop()
        function, load = target_load(module, "value")
        loops = find_loops(function)
        load_slice = extract_load_slice(function, load)
        result = inject_outer(
            function, load, load_slice, loops[0], loops[0], distance=4
        )
        assert not result.success
