"""Stateful property tests of the artifact store under concurrent-writer
races, and of the code cache's never-serve-poison guarantee.

:class:`StoreRaceMachine` extends the basic put/get/corrupt coverage in
``test_serve_stateful.py`` with the *multi-writer* filesystem shapes the
store's atomic-rename protocol exists for: a second writer landing a
valid entry via ``os.replace`` mid-sequence, a crashed writer leaving a
``.tmp-*`` file in the entry directory, and torn bytes appearing under a
live key.  Whatever interleaving hypothesis finds, a read must return a
*valid complete* payload (the latest landed one) or a clean miss — never
partial or corrupt bytes — and stray temp files must not leak into
``stats()`` or survive ``clear()``.

:class:`CodeCacheMachine` drives :class:`repro.machine.codecache` the
same way: random runs over a small program portfolio interleaved with
on-disk sabotage (stale cross-program plants, booby-trapped code blobs,
torn entry files, crashed-writer temp files, cache clears).  Every run
must produce the program's known-correct result no matter what state the
cache directory is in, and the hit/miss/invalidated counters must match
an explicit model of what each run should have observed — an
invalidation that silently executed, or a poisoned module that was
served as a hit, is a property violation even when the value happens to
survive.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.machine import codecache
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.service.store import ArtifactStore, CacheKey, _encode_entry

from tests.conftest import build_sum_loop, tiny_memory

STORE_KEYS = ("alpha", "beta", "gamma")


# ----------------------------------------------------------------------
# Machine 1: the store under simulated concurrent writers
# ----------------------------------------------------------------------
class StoreRaceMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-store-race-")
        self.store = ArtifactStore(self._tmp.name)
        #: name -> the one payload a read may legally return (the last
        #: *landed* write, no matter which writer landed it).
        self.model: dict[str, dict] = {}
        self.tmp_files: list[str] = []
        self.seq = 0

    def teardown(self) -> None:
        self._tmp.cleanup()
        super().teardown()

    def _key(self, name: str) -> CacheKey:
        return CacheKey.make("run", name, "tiny", "fp0")

    # -- writers --------------------------------------------------------
    @rule(name=st.sampled_from(STORE_KEYS), value=st.integers(0, 1 << 30))
    def put(self, name, value) -> None:
        payload = {"value": value, "writer": "local"}
        self.store.put(self._key(name), payload)
        self.model[name] = payload

    @rule(name=st.sampled_from(STORE_KEYS), value=st.integers(0, 1 << 30))
    def concurrent_writer_lands(self, name, value) -> None:
        """A second process's put: full temp-write + atomic rename done
        behind our back.  After the rename, reads see *its* payload."""
        key = self._key(name)
        payload = {"value": value, "writer": "remote"}
        path = self.store._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=path.parent
        )
        with os.fdopen(fd, "w") as handle:
            handle.write(_encode_entry(key, payload))
        os.replace(tmp_name, path)
        self.model[name] = payload

    @rule(name=st.sampled_from(STORE_KEYS))
    def concurrent_writer_crashes_mid_put(self, name) -> None:
        """A writer that died between temp-write and rename: its
        ``.tmp-*`` file sits in the entry directory forever.  It must be
        invisible — not an entry, not readable state."""
        key = self._key(name)
        path = self.store._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self.seq += 1
        tmp = path.parent / f".tmp-crashed-{self.seq}.json"
        tmp.write_text('{"partial": ')
        self.tmp_files.append(str(tmp))

    @rule(name=st.sampled_from(STORE_KEYS))
    def torn_write_appears(self, name) -> None:
        """Torn bytes under a live key (bit rot, non-atomic copy): the
        next read quarantines and misses; it never returns garbage."""
        if name not in self.model:
            return
        path = self.store._entry_path(self._key(name))
        path.write_text('{"payload": {"value"')
        assert self.store.get(self._key(name)) is None
        del self.model[name]

    # -- readers --------------------------------------------------------
    @rule(name=st.sampled_from(STORE_KEYS))
    def get(self, name) -> None:
        got = self.store.get(self._key(name))
        assert got == self.model.get(name)
        if got is not None:
            assert got["writer"] in ("local", "remote")

    @rule()
    def clear(self) -> None:
        self.store.clear()
        self.model.clear()
        self.tmp_files = [t for t in self.tmp_files if os.path.exists(t)]
        assert not self.tmp_files  # clear() sweeps crashed temps too

    # -- invariants -----------------------------------------------------
    @invariant()
    def entry_count_ignores_temp_files(self) -> None:
        assert self.store.stats()["entries"] == len(self.model)

    @invariant()
    def reads_match_model(self) -> None:
        for name in STORE_KEYS:
            assert self.store.get(self._key(name)) == self.model.get(name)


TestStoreRace = StoreRaceMachine.TestCase


# ----------------------------------------------------------------------
# Machine 2: the code cache never serves a poisoned module
# ----------------------------------------------------------------------
#: Distinct trip counts give distinct IR fingerprints (the loop bound is
#: an IR literal), so cross-planting entries between programs is exactly
#: the stale-module scenario the embedded fingerprint exists to catch.
PROGRAMS = {"p20": 20, "p24": 24, "p28": 28}
ENGINES = ("turbo", "translate")


class CodeCacheMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-codecache-sm-")
        self.cache_dir = os.path.join(self._tmp.name, "cache")
        self.cache = codecache.resolve(self.cache_dir)
        self.config = MachineConfig(
            memory=tiny_memory(), code_cache=self.cache_dir
        )
        self.programs = {
            name: build_sum_loop(n=n) for name, n in PROGRAMS.items()
        }
        #: (program, engine) -> "absent" | "valid" | "poisoned" | "torn"
        self.state: dict[tuple[str, str], str] = {}
        #: What the counters must have accumulated to.
        self.want = {"hits": 0, "misses": 0, "invalidated": 0}
        self.seq = 0

    def teardown(self) -> None:
        codecache.forget(self.cache_dir)
        self._tmp.cleanup()
        super().teardown()

    def _key(self, program: str, engine: str) -> CacheKey:
        module, _, _ = self.programs[program]
        return self.cache.key(module.function("main"), self.config, engine)

    def _entry_state(self, program: str, engine: str) -> str:
        return self.state.get((program, engine), "absent")

    # -- the one observable operation -----------------------------------
    @rule(program=st.sampled_from(sorted(PROGRAMS)),
          engine=st.sampled_from(ENGINES))
    def run(self, program, engine) -> None:
        """Whatever the cache directory holds, a run returns the
        program's known-correct value and books exactly one of
        hit/miss/invalidated according to the entry's true state."""
        module, space, expected = self.programs[program]
        result = Machine(
            module, space, config=self.config, engine=engine
        ).run("main")
        assert result.value == expected
        entry_state = self._entry_state(program, engine)
        if entry_state == "valid":
            self.want["hits"] += 1
        elif entry_state == "poisoned":
            self.want["invalidated"] += 1
        else:  # absent, or torn bytes quarantined by the store layer
            self.want["misses"] += 1
        # Every non-hit path recompiles and re-puts a valid entry.
        self.state[(program, engine)] = "valid"

    # -- sabotage -------------------------------------------------------
    @rule(program=st.sampled_from(sorted(PROGRAMS)),
          engine=st.sampled_from(ENGINES),
          victim=st.sampled_from(sorted(PROGRAMS)))
    def plant_stale_module(self, program, engine, victim) -> None:
        """Copy another program's compiled payload under this key — the
        cache-dir-copied scenario.  The embedded IR fingerprint must
        flag it on the next load."""
        if program == victim:
            return
        if (
            self._entry_state(program, engine) != "valid"
            or self._entry_state(victim, engine) != "valid"
        ):
            return
        stale = self.cache.store.get(self._key(victim, engine))
        assert stale is not None
        self.cache.store.put(self._key(program, engine), stale)
        self.state[(program, engine)] = "poisoned"

    @rule(program=st.sampled_from(sorted(PROGRAMS)),
          engine=st.sampled_from(ENGINES))
    def booby_trap_blobs(self, program, engine) -> None:
        """Valid-looking metadata, hostile code blobs: loading must
        invalidate, never execute garbage."""
        if self._entry_state(program, engine) != "valid":
            return
        key = self._key(program, engine)
        payload = self.cache.store.get(key)
        assert payload is not None
        if engine == "turbo":
            for block in payload["superblocks"]:
                if block is not None:
                    block["code_plain"] = "AAAA"
                    block["code_profiled"] = "AAAA"
            if not any(payload["superblocks"]):
                payload["ir"] = "0" * 16  # no blobs to trap: stale it
        else:
            payload["code"] = "AAAA"
        self.cache.store.put(key, payload)
        self.state[(program, engine)] = "poisoned"

    @rule(program=st.sampled_from(sorted(PROGRAMS)),
          engine=st.sampled_from(ENGINES))
    def tear_entry_file(self, program, engine) -> None:
        """Corrupt the JSON itself: the store quarantines before the
        codecache ever sees a payload, so this books a miss."""
        if self._entry_state(program, engine) == "absent":
            return
        path = self.cache.store._entry_path(self._key(program, engine))
        path.write_text("{torn")
        self.state[(program, engine)] = "torn"

    @rule(program=st.sampled_from(sorted(PROGRAMS)),
          engine=st.sampled_from(ENGINES))
    def crashed_writer_temp(self, program, engine) -> None:
        path = self.cache.store._entry_path(self._key(program, engine))
        path.parent.mkdir(parents=True, exist_ok=True)
        self.seq += 1
        (path.parent / f".tmp-race-{self.seq}.json").write_text("{")

    @rule()
    def clear(self) -> None:
        self.cache.store.clear()
        self.state.clear()

    # -- invariants -----------------------------------------------------
    @invariant()
    def counters_match_model(self) -> None:
        assert self.cache.hits == self.want["hits"]
        assert self.cache.misses == self.want["misses"]
        assert self.cache.invalidated == self.want["invalidated"]
        assert self.cache.put_errors == 0

    @invariant()
    def no_unaccounted_entries(self) -> None:
        on_disk = self.cache.store.stats()["by_kind"].get("codecache", 0)
        tracked = sum(
            1 for state in self.state.values() if state != "absent"
        )
        assert on_disk == tracked


TestCodeCacheStateful = CodeCacheMachine.TestCase
