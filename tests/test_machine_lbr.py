"""Unit tests for the Last Branch Record model."""

from repro.machine.lbr import LastBranchRecord, LBREntry, NullLBR


class TestLBR:
    def test_push_and_snapshot(self):
        lbr = LastBranchRecord(4)
        lbr.push((0x10, 0x20, 100))
        lbr.push((0x30, 0x40, 200))
        snapshot = lbr.snapshot()
        assert len(snapshot) == 2
        assert snapshot[0] == LBREntry(0x10, 0x20, 100)
        assert snapshot[1].cycle == 200

    def test_depth_limit_keeps_newest(self):
        lbr = LastBranchRecord(3)
        for i in range(10):
            lbr.push((i, i, i))
        snapshot = lbr.snapshot()
        assert len(snapshot) == 3
        assert [e.from_pc for e in snapshot] == [7, 8, 9]

    def test_default_depth_is_32(self):
        lbr = LastBranchRecord()
        assert lbr.depth == 32
        for i in range(100):
            lbr.push((i, i, i))
        assert len(lbr) == 32

    def test_snapshot_is_immutable_copy(self):
        lbr = LastBranchRecord(4)
        lbr.push((1, 2, 3))
        snapshot = lbr.snapshot()
        lbr.push((4, 5, 6))
        assert len(snapshot) == 1

    def test_clear(self):
        lbr = LastBranchRecord(4)
        lbr.push((1, 2, 3))
        lbr.clear()
        assert len(lbr) == 0
        assert lbr.snapshot() == ()

    def test_iteration_yields_entries(self):
        lbr = LastBranchRecord(4)
        lbr.push((1, 2, 3))
        entries = list(lbr)
        assert entries == [LBREntry(1, 2, 3)]


class TestNullLBR:
    def test_noop_interface(self):
        lbr = NullLBR()
        lbr.push((1, 2, 3))
        assert lbr.snapshot() == ()
        assert len(lbr) == 0
        lbr.clear()
