"""Tests for the two passes (A&J baseline, APT-GET) and the pipeline."""

import pytest

from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import InjectionSite
from repro.ir.opcodes import Opcode
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.passes.aptget_pass import AptGetPass, AptGetPassConfig
from repro.passes.pipeline import profile_and_optimize
from repro.workloads.bfs import BFSWorkload
from repro.workloads.graphs import synthetic_dataset
from repro.workloads.micro import IndirectMicrobenchmark
from tests.conftest import build_indirect_loop, build_nested_indirect


def prefetches_in(module):
    return [
        inst
        for function in module.functions.values()
        for inst in function.instructions()
        if inst.op is Opcode.PREFETCH
    ]


class TestAinsworthJones:
    def test_injects_indirect_loads_only(self):
        module, space, expected = build_indirect_loop()
        report = AinsworthJonesPass().run(module)
        assert report.injection_count == 1
        assert report.injected[0]["site"] == "inner"
        verify_module(module)
        assert Machine(module, space).run("main").value == expected

    def test_distance_configurable(self):
        module, _, _ = build_indirect_loop()
        AinsworthJonesPass(AinsworthJonesConfig(distance=7)).run(module)
        function = module.function("main")
        adds = [
            inst
            for inst in function.instructions()
            if inst.op is Opcode.ADD and inst.args[1] == 7
        ]
        assert adds  # iv + 7 advance present

    def test_no_candidates_no_changes(self, sum_loop):
        module, _, _ = sum_loop
        before = len(list(module.function("main").instructions()))
        report = AinsworthJonesPass().run(module)
        assert report.injection_count == 0
        assert len(list(module.function("main").instructions())) == before

    def test_nested_injects_inner(self):
        module, space, expected = build_nested_indirect()
        report = AinsworthJonesPass().run(module)
        assert report.injection_count == 1
        inner_block = module.function("main").block("inner_h")
        assert any(i.op is Opcode.PREFETCH for i in inner_block.instructions)
        assert Machine(module, space).run("main").value == expected

    def test_module_refinalized(self):
        module, _, _ = build_indirect_loop()
        AinsworthJonesPass().run(module)
        assert module.finalized
        for inst in module.function("main").instructions():
            assert inst.pc >= 0


class TestAptGetPass:
    def hint_for(self, module, dst="value", **kwargs):
        load_pc = next(
            inst.pc
            for inst in module.function("main").instructions()
            if inst.op is Opcode.LOAD and inst.dst == dst
        )
        defaults = dict(load_pc=load_pc, function="main", distance=8)
        defaults.update(kwargs)
        return PrefetchHint(**defaults)

    def test_applies_inner_hint(self):
        module, space, expected = build_indirect_loop()
        hints = HintSet.from_hints([self.hint_for(module)])
        report = AptGetPass(hints).run(module)
        assert report.injection_count == 1
        verify_module(module)
        assert Machine(module, space).run("main").value == expected

    def test_applies_outer_hint(self):
        module, space, expected = build_nested_indirect(outer=30, inner=4)
        hints = HintSet.from_hints(
            [
                self.hint_for(
                    module,
                    dst="t.v",
                    site=InjectionSite.OUTER,
                    outer_distance=4,
                    sweep=2,
                )
            ]
        )
        report = AptGetPass(hints).run(module)
        assert report.injection_count == 1
        assert report.injected[0]["site"] == "outer"
        assert Machine(module, space).run("main").value == expected

    def test_outer_falls_back_to_inner(self):
        # Single loop: an outer hint cannot apply; fallback kicks in.
        module, space, expected = build_indirect_loop()
        hints = HintSet.from_hints(
            [self.hint_for(module, site=InjectionSite.OUTER, outer_distance=4)]
        )
        report = AptGetPass(hints).run(module)
        assert report.injection_count == 1
        assert report.injected[0]["site"] == "inner"

    def test_outer_fallback_can_be_disabled(self):
        module, _, _ = build_indirect_loop()
        hints = HintSet.from_hints(
            [self.hint_for(module, site=InjectionSite.OUTER, outer_distance=4)]
        )
        config = AptGetPassConfig(outer_fallback_to_inner=False)
        report = AptGetPass(hints, config).run(module)
        assert report.injection_count == 0
        assert report.skipped

    def test_stale_pc_skipped(self):
        module, _, _ = build_indirect_loop()
        hints = HintSet.from_hints(
            [PrefetchHint(load_pc=0xDEAD, function="main", distance=4)]
        )
        report = AptGetPass(hints).run(module)
        assert report.injection_count == 0
        assert "stale" in report.skipped[0]["reason"]

    def test_unknown_function_skipped(self):
        module, _, _ = build_indirect_loop()
        hints = HintSet.from_hints(
            [PrefetchHint(load_pc=0x40, function="ghost", distance=4)]
        )
        report = AptGetPass(hints).run(module)
        assert report.skipped

    def test_empty_hints_no_changes(self):
        module, _, _ = build_indirect_loop()
        before = len(list(module.function("main").instructions()))
        AptGetPass(HintSet()).run(module)
        assert len(list(module.function("main").instructions())) == before

    def test_empty_hints_static_fallback(self):
        module, _, _ = build_indirect_loop()
        config = AptGetPassConfig(static_fallback=True, static_distance=16)
        report = AptGetPass(HintSet(), config).run(module)
        assert report.injection_count == 1  # Algorithm 2 lines 35-38

    def test_multiple_hints_same_function(self):
        module, space, expected = build_nested_indirect()
        function = module.function("main")
        loads = [
            inst
            for inst in function.instructions()
            if inst.op is Opcode.LOAD and inst.dst in ("t.v", "bi.v")
        ]
        hints = HintSet.from_hints(
            [
                PrefetchHint(load_pc=inst.pc, function="main", distance=4)
                for inst in loads
            ]
        )
        report = AptGetPass(hints).run(module)
        assert report.injection_count == 2
        verify_module(module)
        assert Machine(module, space).run("main").value == expected


class TestPipeline:
    def test_micro_end_to_end_speedup(self):
        workload = IndirectMicrobenchmark(
            inner=64, total_iterations=12_000, target_elems=1 << 17
        )
        base_module, base_space = workload.build()
        baseline = Machine(base_module, base_space).run("main")
        outcome = profile_and_optimize(workload.builder)
        assert len(outcome.hints) >= 1
        assert outcome.report.injection_count >= 1
        optimized = Machine(outcome.module, outcome.space).run("main")
        assert optimized.value == baseline.value
        assert optimized.counters.cycles < baseline.counters.cycles

    def test_bfs_end_to_end_uses_outer_site(self):
        workload = BFSWorkload(synthetic_dataset(2_000, 4, seed=31))
        outcome = profile_and_optimize(workload.builder)
        sites = {h.site for h in outcome.hints}
        assert InjectionSite.OUTER in sites
        base_module, base_space = workload.build()
        baseline = Machine(base_module, base_space).run("main")
        optimized = Machine(outcome.module, outcome.space).run("main")
        assert optimized.value == baseline.value
        assert optimized.counters.cycles < baseline.counters.cycles

    def test_profile_is_returned_for_inspection(self):
        workload = IndirectMicrobenchmark(
            inner=64, total_iterations=8_000, target_elems=1 << 17
        )
        outcome = profile_and_optimize(workload.builder)
        assert outcome.profile.lbr_samples
        assert outcome.profile.load_miss_counts
