"""Determinism guarantees: identical builds, identical runs, identical
profiles — the properties that let the paper's PC-keyed hints survive
recompilation and that make single-run benchmarks valid."""

import pytest

from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.workloads.registry import TINY_SUITE, make_workload


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_runs_are_bit_deterministic(name):
    counters = []
    for _ in range(2):
        module, space = make_workload(name).build()
        result = Machine(module, space).run("main")
        counters.append(result.counters.as_dict())
    assert counters[0] == counters[1]


def test_profiles_are_deterministic():
    profiles = []
    for _ in range(2):
        module, space = make_workload("HJ8-tiny").build()
        machine = Machine(module, space)
        profiles.append(collect_profile(machine, "main"))
    assert profiles[0].to_json() == profiles[1].to_json()


def test_pcs_stable_across_rebuilds():
    module_a, _ = make_workload("BFS-tiny").build()
    module_b, _ = make_workload("BFS-tiny").build()
    pcs_a = sorted(module_a.load_pcs())
    pcs_b = sorted(module_b.load_pcs())
    assert pcs_a == pcs_b


def test_pcs_stable_across_inputs():
    """Same program, different data: PCs are identical (Fig 12's basis)."""
    from repro.workloads.bfs import BFSWorkload
    from repro.workloads.graphs import synthetic_dataset

    module_a, _ = BFSWorkload(synthetic_dataset(2_000, 4, seed=1)).build()
    module_b, _ = BFSWorkload(synthetic_dataset(3_000, 6, seed=2)).build()
    pcs_a = [i.pc for i in module_a.function("main").instructions()]
    pcs_b = [i.pc for i in module_b.function("main").instructions()]
    assert pcs_a == pcs_b


def test_hints_apply_across_rebuild():
    from repro.core.aptget import AptGet
    from repro.passes.aptget_pass import AptGetPass

    workload = make_workload("micro-tiny")
    module, space = workload.build()
    machine = Machine(module, space)
    profile = collect_profile(machine, "main")
    hints = AptGet().analyze(module, profile)
    assert len(hints)

    fresh_module, _ = make_workload("micro-tiny").build()
    report = AptGetPass(hints).run(fresh_module)
    assert report.injection_count == len(hints)
    assert not report.skipped
