"""Unit tests for the content-addressed artifact store."""

import json

import pytest

from repro.service.metrics import MetricsRegistry
from repro.service.store import (
    SCHEMA_VERSION,
    ArtifactStore,
    CacheKey,
    MemoryStore,
    config_fingerprint,
)


def key(**overrides) -> CacheKey:
    base = dict(
        kind="run", workload="micro-tiny", scale="tiny", config="abcd", scheme="baseline"
    )
    base.update(overrides)
    return CacheKey.make(
        base.pop("kind"), base.pop("workload"), base.pop("scale"), base.pop("config"),
        **base,
    )


class TestCacheKey:
    def test_digest_is_stable_and_param_order_free(self):
        a = CacheKey.make("run", "w", "tiny", "cfg", scheme="aj", distance=32)
        b = CacheKey.make("run", "w", "tiny", "cfg", distance=32, scheme="aj")
        assert a.digest() == b.digest()
        assert len(a.digest()) == 64

    def test_digest_changes_with_any_component(self):
        base = key()
        assert key(workload="other").digest() != base.digest()
        assert key(scale="small").digest() != base.digest()
        assert key(config="efgh").digest() != base.digest()
        assert key(scheme="aj").digest() != base.digest()

    def test_config_fingerprint_stable(self):
        from repro.machine.config import MachineConfig

        assert config_fingerprint(MachineConfig()) == config_fingerprint(
            MachineConfig()
        )


class TestArtifactStore:
    def test_roundtrip_returns_fresh_payloads(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(key(), {"cycles": 123, "nested": {"a": [1, 2]}})
        first = store.get(key())
        second = store.get(key())
        assert first == {"cycles": 123, "nested": {"a": [1, 2]}}
        assert first is not second
        first["nested"]["a"].append(3)
        assert store.get(key()) == second

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactStore(tmp_path).get(key()) is None

    def test_layout_is_schema_versioned_and_sharded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(key(), {"x": 1})
        digest = key().digest()
        path = (
            tmp_path
            / f"v{SCHEMA_VERSION}"
            / "run"
            / digest[:2]
            / f"{digest}.json"
        )
        assert path.is_file()
        # No leftover temp files from the atomic write.
        assert not list(path.parent.glob(".tmp-*"))

    def test_corrupt_entry_is_quarantined_not_fatal(self, tmp_path):
        metrics = MetricsRegistry()
        store = ArtifactStore(tmp_path, metrics=metrics)
        store.put(key(), {"x": 1})
        path = store._entry_path(key())
        path.write_text("{not json!!")
        assert store.get(key()) is None  # degraded to a miss
        assert not path.exists()
        assert len(list(store.quarantine_dir.iterdir())) == 1
        assert metrics.get("cache.quarantined") == 1
        # A recompute can repopulate the same slot.
        store.put(key(), {"x": 2})
        assert store.get(key()) == {"x": 2}

    def test_key_mismatch_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(key(), {"x": 1})
        path = store._entry_path(key())
        raw = json.loads(path.read_text())
        raw["key"]["workload"] = "someone-else"
        path.write_text(json.dumps(raw))
        assert store.get(key()) is None
        assert store.stats()["quarantined"] == 1

    def test_stats_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(key(), {"x": 1})
        store.put(key(kind="profile", scheme="x"), {"y": 2})
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"profile": 1, "run": 1}
        assert stats["size_bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        assert store.get(key()) is None

    def test_merge_metrics_accumulates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.merge_metrics({"cache.hits": 3})
        store.merge_metrics({"cache.hits": 2, "cache.misses": 1})
        assert store.read_metrics() == {"cache.hits": 5, "cache.misses": 1}

    def test_read_metrics_tolerates_garbage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tmp_path.mkdir(exist_ok=True)
        store.metrics_path.write_text("not json")
        assert store.read_metrics() == {}


class TestMemoryStore:
    def test_roundtrip_fresh_objects(self):
        store = MemoryStore()
        store.put(key(), {"a": [1]})
        first = store.get(key())
        first["a"].append(2)
        assert store.get(key()) == {"a": [1]}

    def test_stats_and_clear(self):
        store = MemoryStore()
        store.put(key(), {"x": 1})
        assert store.stats()["entries"] == 1
        assert store.stats()["by_kind"] == {"run": 1}
        assert store.clear() == 1
        assert store.get(key()) is None


@pytest.mark.parametrize("factory", [MemoryStore, None])
def test_common_interface(tmp_path, factory):
    store = factory() if factory else ArtifactStore(tmp_path)
    assert store.get(key()) is None
    store.put(key(), {"v": 1})
    assert store.get(key()) == {"v": 1}
    assert store.stats()["entries"] == 1
