"""Shared fixtures and program builders for the test suite."""

from __future__ import annotations

import random
import warnings

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace
from repro.mem.config import CacheConfig, MemoryConfig

warnings.filterwarnings("ignore", category=RuntimeWarning, module="scipy")


# ----------------------------------------------------------------------
# Shared hypothesis settings profiles
# ----------------------------------------------------------------------
# Every property test in the suite runs under one of these named
# profiles instead of ad-hoc per-test settings:
#
# * ``default`` — local development: a modest example budget and a
#   fixed derandomization seed so failures reproduce across runs;
# * ``ci``      — fully derandomized (no shrink-database randomness,
#   no deadline flakes on loaded runners) with a larger budget.
#
# CI selects the ``ci`` profile via the ``CI`` environment variable set
# on the pytest job; anything else gets ``default``.
import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=25,
    derandomize=True,
    deadline=None,
)
settings.register_profile(
    "ci",
    max_examples=50,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci" if os.environ.get("CI") else "default")


# ----------------------------------------------------------------------
# Small machine configurations for fast tests
# ----------------------------------------------------------------------
def tiny_memory(**overrides) -> MemoryConfig:
    """A very small hierarchy so tiny arrays already miss."""
    defaults = dict(
        l1=CacheConfig("L1D", 1024, 4, 2),
        l2=CacheConfig("L2", 4096, 4, 12),
        llc=CacheConfig("LLC", 16 * 1024, 8, 40),
        dram_latency=360,
        mshr_entries=16,
    )
    defaults.update(overrides)
    return MemoryConfig(**defaults)


@pytest.fixture()
def tiny_config() -> MachineConfig:
    return MachineConfig(memory=tiny_memory())


# ----------------------------------------------------------------------
# Canonical test programs
# ----------------------------------------------------------------------
def build_sum_loop(n: int = 100, stride: int = 1) -> tuple[Module, AddressSpace, int]:
    """``for i in range(n): acc += data[i*stride]`` -> (module, space, expected)."""
    rng = random.Random(5)
    values = [rng.randrange(1000) for _ in range(n * stride + 1)]
    space = AddressSpace()
    data = space.allocate("data", values, elem_size=8)
    expected = sum(values[i * stride] for i in range(n))

    module = Module("sum_loop")
    b = IRBuilder(module)
    b.function("main")
    entry, loop, done = b.blocks("entry", "loop", "done")
    b.at(entry)
    b.jmp(loop)
    b.at(loop)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 0)], name="acc")
    scaled = b.mul(i, stride, name="scaled")
    addr = b.gep(data.base, scaled, 8, name="addr")
    value = b.load(addr, name="value")
    acc2 = b.add(acc, value, name="acc2")
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, loop, i2)
    b.add_incoming(acc, loop, acc2)
    cond = b.lt(i2, n, name="cond")
    b.br(cond, loop, done)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    return module, space, expected


def build_indirect_loop(
    n: int = 200, target_elems: int = 4096, seed: int = 9
) -> tuple[Module, AddressSpace, int]:
    """``for i: acc += T[B[i]]`` — the canonical indirect pattern."""
    rng = random.Random(seed)
    space = AddressSpace()
    index_values = [rng.randrange(target_elems) for _ in range(n + 600)]
    b_seg = space.allocate("B", index_values, elem_size=8)
    target_values = [rng.randrange(1 << 16) for _ in range(target_elems)]
    t_seg = space.allocate("T", target_values, elem_size=8)
    expected = sum(target_values[index_values[i]] for i in range(n))

    module = Module("indirect_loop")
    b = IRBuilder(module)
    b.function("main")
    entry, loop, done = b.blocks("entry", "loop", "done")
    b.at(entry)
    b.jmp(loop)
    b.at(loop)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 0)], name="acc")
    ba = b.gep(b_seg.base, i, 8, name="ba")
    idx = b.load(ba, name="idx")
    ta = b.gep(t_seg.base, idx, 8, name="ta")
    value = b.load(ta, name="value")
    acc2 = b.add(acc, value, name="acc2")
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, loop, i2)
    b.add_incoming(acc, loop, acc2)
    cond = b.lt(i2, n, name="cond")
    b.br(cond, loop, done)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    return module, space, expected


def build_nested_indirect(
    outer: int = 20, inner: int = 8, target_elems: int = 4096, seed: int = 9
) -> tuple[Module, AddressSpace, int]:
    """A miniature Listing-1 nest: ``T[BO[i] + BI[j]]``."""
    rng = random.Random(seed)
    half = target_elems // 2
    space = AddressSpace()
    bo_values = [rng.randrange(half) for _ in range(outer + 600)]
    bi_values = [rng.randrange(half) for _ in range(inner + 600)]
    bo = space.allocate("BO", bo_values, elem_size=8)
    bi = space.allocate("BI", bi_values, elem_size=8)
    t_values = [rng.randrange(1 << 12) for _ in range(target_elems)]
    t = space.allocate("T", t_values, elem_size=8)
    expected = sum(
        t_values[bo_values[i] + bi_values[j]]
        for i in range(outer)
        for j in range(inner)
    )

    module = Module("nested_indirect")
    b = IRBuilder(module)
    b.function("main")
    entry, outer_h, inner_h, outer_latch, done = b.blocks(
        "entry", "outer_h", "inner_h", "outer_latch", "done"
    )
    b.at(entry)
    b.jmp(outer_h)
    b.at(outer_h)
    i = b.phi([(entry, 0)], name="iv1")
    acc_o = b.phi([(entry, 0)], name="acc.o")
    p_bo = b.gep(bo.base, i, 8, name="p.bo")
    b.jmp(inner_h)
    b.at(inner_h)
    j = b.phi([(outer_h, 0)], name="iv2")
    acc = b.phi([(outer_h, acc_o)], name="acc.i")
    bo_v = b.load(p_bo, name="bo.v")
    p_bi = b.gep(bi.base, j, 8, name="p.bi")
    bi_v = b.load(p_bi, name="bi.v")
    idx = b.add(bo_v, bi_v, name="idx")
    p_t = b.gep(t.base, idx, 8, name="p.t")
    value = b.load(p_t, name="t.v")
    acc2 = b.add(acc, value, name="acc2")
    j2 = b.add(j, 1, name="j2")
    b.add_incoming(j, inner_h, j2)
    b.add_incoming(acc, inner_h, acc2)
    cont = b.lt(j2, inner, name="cont")
    b.br(cont, inner_h, outer_latch)
    b.at(outer_latch)
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, outer_latch, i2)
    b.add_incoming(acc_o, outer_latch, acc2)
    cont2 = b.lt(i2, outer, name="cont2")
    b.br(cont2, outer_h, done)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    return module, space, expected


@pytest.fixture()
def sum_loop():
    return build_sum_loop()


@pytest.fixture()
def indirect_loop():
    return build_indirect_loop()


@pytest.fixture()
def nested_indirect():
    return build_nested_indirect()


def run_on(module, space, config=None, engine="translate", function="main"):
    machine = Machine(module, space, config=config, engine=engine)
    return machine.run(function)
