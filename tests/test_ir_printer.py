"""Unit tests for the textual IR printer."""

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.printer import (
    format_block,
    format_function,
    format_instruction,
    format_module,
)


def test_every_opcode_formats(nested_indirect):
    module, _, _ = nested_indirect
    text = format_module(module)
    assert "define main()" in text
    assert "phi" in text
    assert "load" in text
    assert "getelementptr" in text
    assert "icmp slt" in text
    assert "br" in text
    assert "ret" in text


def test_instruction_includes_pc_after_finalize(sum_loop):
    module, _, _ = sum_loop
    inst = module.function("main").block("loop").instructions[2]
    assert format_instruction(inst).startswith("0x")


def test_store_prefetch_select_work_min():
    module = Module("p")
    b = IRBuilder(module)
    b.function("f")
    b.at(b.block("entry"))
    cond = b.lt(1, 2)
    sel = b.select(cond, 1, 2)
    clamped = b.min(sel, 7)
    addr = b.gep(0x1000, clamped, 8)
    b.prefetch(addr)
    b.store(addr, 0)
    b.work(5)
    b.ret(0)
    text = format_function(module.function("f"))
    for token in ("select", "min", "prefetch", "store", "work 5"):
        assert token in text


def test_block_format_has_header(sum_loop):
    module, _, _ = sum_loop
    text = format_block(module.function("main").block("loop"))
    assert text.splitlines()[0] == "loop:"
