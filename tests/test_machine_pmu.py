"""Unit tests for PMU counters and derived perf metrics."""

from repro.machine.pmu import Counters, PerfStat


class TestCounters:
    def test_copy_is_independent(self):
        counters = Counters(cycles=10.0, instructions=5)
        clone = counters.copy()
        clone.instructions = 99
        assert counters.instructions == 5

    def test_subtraction(self):
        before = Counters(cycles=10.0, instructions=5, loads=2)
        after = Counters(cycles=30.0, instructions=20, loads=9)
        delta = after - before
        assert delta.cycles == 20.0
        assert delta.instructions == 15
        assert delta.loads == 7

    def test_as_dict_roundtrip(self):
        counters = Counters(l1_hits=3, sw_prefetch_issued=4)
        d = counters.as_dict()
        assert d["l1_hits"] == 3
        assert d["sw_prefetch_issued"] == 4
        assert len(d) > 15


class TestPerfStat:
    def test_ipc(self):
        perf = PerfStat(Counters(cycles=100.0, instructions=50))
        assert perf.ipc == 0.5

    def test_ipc_zero_cycles(self):
        assert PerfStat(Counters()).ipc == 0.0

    def test_prefetch_accuracy_counts_sw_memory_reads(self):
        counters = Counters(
            sw_prefetch_issued=100,
            sw_prefetch_redundant=10,
            sw_prefetch_dropped_mshr=5,
            sw_prefetch_dropped_unmapped=5,
            offcore_demand_data_rd=20,
        )
        perf = PerfStat(counters)
        assert perf.sw_prefetch_memory_reads == 80
        assert perf.prefetch_accuracy == 80 / 100

    def test_prefetch_accuracy_no_traffic(self):
        assert PerfStat(Counters()).prefetch_accuracy == 0.0

    def test_late_prefetch_ratio(self):
        counters = Counters(sw_prefetch_issued=10, load_hit_pre_sw_pf=4)
        assert PerfStat(counters).late_prefetch_ratio == 0.4

    def test_mpki_counts_fill_buffer_hits(self):
        # Paper §4.4: loads hitting an in-flight prefetch count as misses.
        counters = Counters(
            instructions=1000, offcore_demand_data_rd=5, load_hit_pre_sw_pf=5
        )
        assert PerfStat(counters).llc_mpki == 10.0

    def test_memory_bound_fraction(self):
        counters = Counters(
            cycles=200.0, stall_cycles_llc=30.0, stall_cycles_dram=70.0
        )
        assert PerfStat(counters).memory_bound_fraction == 0.5

    def test_summary_keys(self):
        summary = PerfStat(Counters(cycles=1.0, instructions=1)).summary()
        for key in (
            "cycles",
            "instructions",
            "ipc",
            "prefetch_accuracy",
            "late_prefetch_ratio",
            "llc_mpki",
            "memory_bound_fraction",
        ):
            assert key in summary
