"""Unit tests for the prefetch-lifecycle trace: hook semantics, ring
bounds, and the exactness of incremental aggregates after wrap."""

from repro.obs.sites import site_reports
from repro.obs.trace import BranchTap, PrefetchTrace


def make_trace(capacity=16):
    return PrefetchTrace(
        capacity=capacity,
        sites={100: "f@0x64/inner"},
        site_loads={50: "f@0x64/inner"},
    )


class TestLifecycleHooks:
    def test_timely_use(self):
        trace = make_trace()
        trace.on_issue(100, 7, cycle=10.0, ready=254.0)
        trace.on_fill(7, ready=254.0)
        trace.on_use(7, cycle=300.0, late=False)
        (span,) = trace.spans
        assert span.outcome == "timely"
        assert span.margin == 46.0
        stats = trace.stats["f@0x64/inner"]
        assert stats.issued == 1
        assert stats.timely == 1
        assert trace.unused_count() == 0

    def test_late_use_has_negative_margin(self):
        trace = make_trace()
        trace.on_issue(100, 7, cycle=10.0, ready=254.0)
        trace.on_use(7, cycle=100.0, late=True)  # coalesced in flight
        (span,) = trace.spans
        assert span.outcome == "late"
        assert span.margin == -154.0
        # The rendered span never ends before the fill is ready.
        assert span.end_cycle == 254.0
        assert trace.stats["f@0x64/inner"].late == 1

    def test_eviction_before_use(self):
        trace = make_trace()
        trace.on_issue(100, 7, cycle=10.0, ready=254.0)
        trace.on_fill(7, ready=254.0)
        trace.on_evict(7, cycle=900.0)
        (span,) = trace.spans
        assert span.outcome == "evicted"
        assert span.margin is None
        assert trace.stats["f@0x64/inner"].early_evicted == 1

    def test_drops_count_as_issued(self):
        trace = make_trace()
        for reason in ("redundant", "mshr", "unmapped"):
            trace.on_drop(100, 7, cycle=5.0, reason=reason)
        stats = trace.stats["f@0x64/inner"]
        assert stats.issued == 3
        assert stats.redundant == 1
        assert stats.dropped_mshr == 1
        assert stats.dropped_unmapped == 1
        assert len(trace.spans) == 3

    def test_unknown_pc_gets_fallback_label(self):
        trace = make_trace()
        trace.on_issue(999, 3, cycle=1.0, ready=2.0)
        assert "pf@0x3e7" in trace.stats

    def test_open_record_is_unused_in_rollup(self):
        trace = make_trace()
        trace.on_issue(100, 7, cycle=10.0, ready=254.0)
        reports = site_reports(trace)
        assert reports["f@0x64/inner"].unused == 1
        # Rollup must not consume the open record.
        assert trace.unused_count() == 1
        trace.on_use(7, cycle=300.0, late=False)
        assert site_reports(trace)["f@0x64/inner"].unused == 0

    def test_uncovered_miss_attribution(self):
        trace = make_trace()
        trace.on_demand(50, 9, cycle=5.0, latency=244.0, level="dram")
        trace.on_demand(51, 9, cycle=6.0, latency=244.0, level="dram")
        trace.on_demand(50, 9, cycle=7.0, latency=44.0, level="llc")
        stats = trace.stats["f@0x64/inner"]
        # Only the DRAM miss at the stamped load PC counts.
        assert stats.uncovered_misses == 1


class TestRingBounds:
    def test_rings_bounded_but_aggregates_exact(self):
        trace = make_trace(capacity=8)
        for i in range(100):
            trace.on_issue(100, i, cycle=float(i), ready=float(i) + 10.0)
            trace.on_use(i, cycle=float(i) + 20.0, late=False)
        assert len(trace.spans) == 8  # ring wrapped
        stats = trace.stats["f@0x64/inner"]
        assert stats.issued == 100  # aggregates did not
        assert stats.timely == 100
        assert sum(stats.margin_hist) == 100

    def test_branch_ring_bounded(self):
        trace = make_trace(capacity=8)
        for i in range(50):
            trace.on_branch(20, 10, float(i))
        assert len(trace.branches) == 8


class TestBranchTap:
    def test_forwards_and_mirrors(self):
        from repro.machine.lbr import LastBranchRecord

        inner = LastBranchRecord(4)
        trace = make_trace()
        tap = BranchTap(inner, trace)
        tap.push((20, 10, 5))
        assert len(inner) == 1
        assert len(trace.branches) == 1
        assert tap.snapshot() == inner.snapshot()
