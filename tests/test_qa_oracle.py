"""The differential oracle: clean programs pass the full matrix, a
seeded engine defect is caught, and the analytic Eq-1/Eq-2 model
oracles hold."""

from __future__ import annotations

import pytest

from repro.qa.fuzz import run_fuzz
from repro.qa.generate import generate_spec
from repro.qa.mutants import (
    MUTANT_ENGINE,
    TURBO_MUTANT_ENGINE,
    mutant_oracle_setup,
    offbyone_blockengine,
    offbyone_superblock,
    turbo_mutant_oracle_setup,
)
from repro.qa.oracle import (
    OracleConfig,
    OracleFailure,
    batch_failure,
    check_batch,
    check_models,
    check_program,
    focused_config,
    oracle_failure,
)


def test_generated_programs_pass_full_matrix():
    # Four engines x tracing on/off x three schemes, bit-identical.
    for seed in (0, 1, 2):
        check_program(generate_spec(seed))


def test_batch_axis_is_bit_identical():
    # Uniform cache-scale batch + divergent A&J-distance batch, each
    # executed on both batch tiers, each cell identical to a fresh
    # sequential Machine run.
    for seed in (0, 1, 2):
        report = check_batch(generate_spec(seed))
        assert set(report["axes"]) == {
            "batch-uniform/batch",
            "batch-uniform/batchturbo",
            "batch-aj/batch",
            "batch-aj/batchturbo",
        }


def test_batch_failure_predicate_matches_check():
    spec = generate_spec(3)
    assert batch_failure(spec) is None
    check_batch(spec)  # must not raise either


def test_oracle_failure_predicate_matches_check():
    spec = generate_spec(3)
    assert oracle_failure(spec) is None
    check_program(spec)  # must not raise either


def test_mutant_engine_is_caught():
    config, runners = mutant_oracle_setup()
    spec = generate_spec(0)
    failure = oracle_failure(spec, config, runners)
    assert failure is not None
    assert failure.engine == MUTANT_ENGINE
    assert failure.check == "differential"
    assert "cycles" in failure.detail


def test_turbo_mutant_engine_is_caught():
    # The seeded off-by-one in the bulk stepper's iteration-count math
    # only perturbs the instructions counter — values and cycles stay
    # clean — so catching it proves the oracle is counter-exact across
    # bulk-stepped iterations, not just end-state-exact.
    config, runners = turbo_mutant_oracle_setup()
    spec = generate_spec(0)
    failure = oracle_failure(spec, config, runners)
    assert failure is not None
    assert failure.engine == TURBO_MUTANT_ENGINE
    assert failure.check == "differential"
    assert "instructions" in failure.detail


def test_turbo_mutant_module_is_scratch_copy():
    import repro.machine.superblock as real

    mutant = offbyone_superblock()
    assert mutant is not real
    assert mutant.compile_turbo is not real.compile_turbo
    assert "offbyone" not in (real.__file__ or "")


def test_mutant_module_is_scratch_copy():
    import repro.machine.blockengine as real

    mutant = offbyone_blockengine()
    assert mutant is not real
    assert mutant.compile_blocks is not real.compile_blocks
    # Building the mutant must not have touched the real module.
    assert "offbyone" not in (real.__file__ or "")


def test_focused_config_narrows_matrix():
    failure = OracleFailure(
        "differential", "cycles differ", scheme="aj", engine="fast", traced=True
    )
    narrowed = focused_config(failure, OracleConfig())
    assert narrowed.schemes == ("aj",)
    assert set(narrowed.engines) == {"reference", "fast"}
    # Tracing modes stay un-narrowed: traced runs are compared against
    # the untraced baseline, so the focused matrix still needs both.
    assert narrowed.traced_modes == (False, True)


def test_check_models_sweeps_cases():
    checked = check_models(seed=0, cases=40)
    assert checked >= 40


def test_run_fuzz_clean_budget():
    stats = run_fuzz(budget=3, seed=100, model_cases=10)
    assert stats.ok
    assert stats.programs == 3
    assert stats.model_cases > 0
    assert "0 failure(s)" in stats.summary()


def test_run_fuzz_catches_and_records_mutant(tmp_path):
    config, runners = mutant_oracle_setup()
    stats = run_fuzz(
        budget=2,
        seed=0,
        oracle_config=config,
        runners=runners,
        corpus_dir=tmp_path,
        model_cases=0,
        max_findings=1,
    )
    assert not stats.ok
    finding = stats.findings[0]
    assert finding.failure.engine == MUTANT_ENGINE
    assert finding.shrunk_spec is not None
    assert finding.corpus_path is not None
    saved = list(tmp_path.glob("*.json"))
    assert len(saved) == 1


@pytest.mark.parametrize("scheme", ["none", "aj", "apt-get"])
def test_single_scheme_slices_run(scheme):
    config = OracleConfig(
        schemes=(scheme,), engines=("reference", "fast"), traced_modes=(True,)
    )
    check_program(generate_spec(5), config)
