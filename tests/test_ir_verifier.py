"""Unit tests for the IR verifier."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Instruction, Module
from repro.ir.opcodes import Opcode
from repro.ir.verifier import VerificationError, verify_function, verify_module
from tests.conftest import build_sum_loop


def fresh_function():
    module = Module("v")
    b = IRBuilder(module)
    function = b.function("f")
    return module, b, function


class TestStructural:
    def test_valid_program_passes(self, sum_loop):
        module, _, _ = sum_loop
        verify_module(module)

    def test_empty_function_rejected(self):
        module, _, function = fresh_function()
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(function)

    def test_empty_block_rejected(self):
        module, b, function = fresh_function()
        b.block("entry")
        with pytest.raises(VerificationError, match="empty block"):
            verify_function(function)

    def test_missing_terminator(self):
        module, b, function = fresh_function()
        b.at(b.block("entry"))
        b.add(1, 2)
        with pytest.raises(VerificationError, match="missing terminator"):
            verify_function(function)

    def test_terminator_not_last(self):
        module, b, function = fresh_function()
        block = b.block("entry")
        b.at(block)
        b.ret(0)
        block.instructions.append(Instruction(Opcode.RET, args=(0,)))
        with pytest.raises(VerificationError, match="terminator not last"):
            verify_function(function)

    def test_branch_to_unknown_block(self):
        module, b, function = fresh_function()
        block = b.block("entry")
        b.at(block)
        block.instructions.append(Instruction(Opcode.JMP, targets=("ghost",)))
        with pytest.raises(VerificationError, match="unknown"):
            verify_function(function)

    def test_phi_after_non_phi(self):
        module, b, function = fresh_function()
        entry, loop = b.blocks("entry", "loop")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        loop.instructions.append(Instruction(Opcode.ADD, dst="x", args=(1, 2)))
        loop.instructions.append(
            Instruction(Opcode.PHI, dst="p", incomings=[("entry", 0)])
        )
        loop.instructions.append(Instruction(Opcode.RET, args=(0,)))
        with pytest.raises(VerificationError, match="PHI after non-PHI"):
            verify_function(function)

    def test_entry_with_predecessors_rejected(self):
        module, b, function = fresh_function()
        entry = b.block("entry")
        b.at(entry)
        b.jmp(entry)
        with pytest.raises(VerificationError, match="entry"):
            verify_function(function)


class TestDataflow:
    def test_undefined_register_use(self):
        module, b, function = fresh_function()
        b.at(b.block("entry"))
        b.ret("ghost")
        with pytest.raises(VerificationError, match="undefined"):
            verify_function(function)

    def test_params_count_as_defined(self):
        module = Module("p")
        b = IRBuilder(module)
        function = b.function("f", params=["n"])
        b.at(b.block("entry"))
        b.ret("n")
        verify_function(function)

    def test_double_definition_rejected(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        block = function.block("entry")
        block.insert_before_terminator(
            [Instruction(Opcode.CONST, dst="i2", args=(0,))]
        )
        with pytest.raises(VerificationError, match="more than once"):
            verify_function(function)
        verify_function(function, allow_non_ssa=True)

    def test_phi_incoming_mismatch(self, sum_loop):
        module, _, _ = sum_loop
        phi = module.function("main").block("loop").phis()[0]
        phi.incomings.append(("done", 0))
        with pytest.raises(VerificationError, match="incomings"):
            verify_module(module)

    def test_gep_scale_must_be_positive_immediate(self):
        module, b, function = fresh_function()
        block = b.block("entry")
        b.at(block)
        block.instructions.append(
            Instruction(Opcode.GEP, dst="a", args=(0x1000, 0, "reg"))
        )
        block.instructions.append(Instruction(Opcode.RET, args=(0,)))
        with pytest.raises(VerificationError, match="scale"):
            verify_function(function)


class TestAfterTransforms:
    def test_injected_module_still_verifies(self):
        from repro.passes.ainsworth_jones import AinsworthJonesPass

        module, _, _ = build_sum_loop()
        AinsworthJonesPass().run(module)
        verify_module(module)
