"""Smoke tests for every experiment module at tiny scale, plus unit
tests for the result/report formatting and the shared runner."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.result import ExperimentResult, format_table
from repro.experiments.runner import (
    geomean,
    hints_with_distance,
    hints_with_site,
    profile_workload,
    run_ainsworth_jones,
    run_apt_get,
    run_baseline,
    suite_comparison,
)
from repro.core.site import InjectionSite
from repro.workloads.registry import make_workload


class TestResultContainer:
    def make(self):
        return ExperimentResult(
            experiment="figX",
            title="demo",
            headers=["name", "value"],
            rows=[["a", 1.5], ["b", 2.0]],
            summary={"geomean": 1.73},
            notes="note",
        )

    def test_to_text_contains_everything(self):
        text = self.make().to_text()
        assert "figX: demo" in text
        assert "geomean: 1.730" in text
        assert "note" in text
        assert "a" in text and "2.000" in text

    def test_column_and_row_lookup(self):
        result = self.make()
        assert result.column("value") == [1.5, 2.0]
        assert result.row_by("name", "b") == ["b", 2.0]
        assert result.row_by("name", "zz") is None

    def test_format_table_alignment(self):
        text = format_table(["h1", "h2"], [["aaaa", 1]])
        lines = text.splitlines()
        assert lines[0].index("h2") == lines[2].index("1")


class TestRunnerHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)  # zeros skipped

    def test_hint_overrides(self):
        _, hints = profile_workload(make_workload("HJ8-tiny"))
        assert len(hints)
        overridden = hints_with_distance(hints, 3)
        assert all(h.distance == 3 for h in overridden)
        assert all(h.outer_distance == 3 for h in overridden)
        # Original untouched.
        assert any(h.distance != 3 for h in hints) or len(hints) == 0 or (
            hints.hints[0] is not overridden.hints[0]
        )
        forced = hints_with_site(hints, InjectionSite.INNER)
        assert all(h.site is InjectionSite.INNER for h in forced)
        forced_outer = hints_with_site(hints, InjectionSite.OUTER)
        assert all(h.site is InjectionSite.OUTER for h in forced_outer)
        assert all(h.outer_distance is not None for h in forced_outer)

    def test_scheme_runners(self):
        baseline = run_baseline(make_workload("micro-tiny"))
        aj = run_ainsworth_jones(make_workload("micro-tiny"), distance=16)
        assert baseline.scheme == "baseline"
        assert aj.report is not None
        assert aj.cycles < baseline.cycles  # prefetching helps the micro

    def test_run_apt_get_attaches_profile(self):
        run = run_apt_get(make_workload("micro-tiny"))
        assert run.profile is not None
        assert run.hints is not None
        assert run.report is not None

    def test_suite_comparison_cached(self):
        first = suite_comparison("tiny")
        second = suite_comparison("tiny")
        # Store-backed cache: identical measurements, fresh objects.
        assert first is not second
        assert set(first) == set(second)
        for name in first:
            assert first[name].runs["baseline"].cycles == (
                second[name].runs["baseline"].cycles
            )
            assert first[name].runs["apt-get"] is not (
                second[name].runs["apt-get"]
            )
        comparison = first["micro-tiny"]
        assert comparison.speedup("apt-get") > 0
        assert comparison.instruction_overhead("apt-get") >= 1.0
        assert comparison.mpki("baseline") > 0


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_runs_at_tiny_scale(name):
    result = ALL_EXPERIMENTS[name].run("tiny")
    assert result.experiment == name
    assert result.rows
    assert result.headers
    text = result.to_text()
    assert name in text


class TestFig4Histogram:
    def test_histogram_bins_and_masses(self):
        from repro.experiments import fig4

        bins = fig4.histogram("tiny", bins=20)
        assert bins
        latencies = [b for b, _ in bins]
        counts = [c for _, c in bins]
        assert latencies == sorted(latencies)
        assert all(c > 0 for c in counts)


class TestRunnerCaches:
    def test_cached_baseline_not_aliased(self):
        from repro.experiments.runner import cached_baseline

        first = cached_baseline("micro-tiny")
        second = cached_baseline("micro-tiny")
        assert first is not second
        assert first.cycles == second.cycles
        assert first.result.value == second.result.value

    def test_cached_profile_not_aliased(self):
        """Regression: lru_cache used to hand every caller the same
        mutable profile/hints — mutating one leaked into all others."""
        from repro.experiments.runner import cached_profile

        profile_a, hints_a = cached_profile("micro-tiny")
        profile_b, hints_b = cached_profile("micro-tiny")
        assert profile_a is not profile_b
        assert hints_a is not hints_b
        assert profile_a.load_miss_counts == profile_b.load_miss_counts
        assert len(hints_a) == len(hints_b)
        # Mutations of a cache hit must not poison later hits.
        profile_a.load_miss_counts.clear()
        for hint in hints_a:
            hint.distance = -1
        profile_c, hints_c = cached_profile("micro-tiny")
        assert profile_c.load_miss_counts == profile_b.load_miss_counts
        assert all(h.distance != -1 for h in hints_c)


class TestFormattingEdges:
    def test_large_floats_one_decimal(self):
        from repro.experiments.result import format_table

        text = format_table(["v"], [[12345.678]])
        assert "12345.7" in text

    def test_summary_rendering(self):
        from repro.experiments.result import format_table

        text = format_table(
            ["a"], [[1]], summary={"geomean": 1.23456}, notes="hello"
        )
        assert "geomean: 1.235" in text
        assert text.endswith("hello")
