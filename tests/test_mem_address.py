"""Unit tests for the address space / segment allocator."""

import pytest

from repro.mem.address import LINE_BYTES, AddressSpace, MemoryError_


class TestAllocation:
    def test_allocate_zeroed(self):
        space = AddressSpace()
        seg = space.allocate("a", 10, elem_size=8)
        assert len(seg) == 10
        assert space.load(seg.base) == 0

    def test_allocate_with_values(self):
        space = AddressSpace()
        seg = space.allocate("a", [1, 2, 3], elem_size=8)
        assert [space.load(seg.address_of(i)) for i in range(3)] == [1, 2, 3]

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("a", 1)
        with pytest.raises(MemoryError_):
            space.allocate("a", 1)

    def test_bad_elem_size(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.allocate("a", 1, elem_size=3)

    def test_segments_are_line_aligned_and_disjoint(self):
        space = AddressSpace()
        segments = [space.allocate(f"s{i}", 7, elem_size=8) for i in range(5)]
        for seg in segments:
            assert seg.base % LINE_BYTES == 0
        for a, b in zip(segments, segments[1:]):
            assert a.end <= b.base
            # Guard gap: no cache line spans two segments.
            assert (a.end - 1) >> 6 < b.base >> 6

    def test_wide_elements(self):
        space = AddressSpace()
        seg = space.allocate("v", [5, 6], elem_size=64)
        assert space.load(seg.base + 64) == 6

    def test_lookup_by_name(self):
        space = AddressSpace()
        seg = space.allocate("data", 4)
        assert space.segment("data") is seg
        with pytest.raises(MemoryError_):
            space.segment("nope")

    def test_total_bytes(self):
        space = AddressSpace()
        space.allocate("a", 10, elem_size=8)
        space.allocate("b", 4, elem_size=64)
        assert space.total_bytes() == 10 * 8 + 4 * 64


class TestAccess:
    def test_store_then_load(self):
        space = AddressSpace()
        seg = space.allocate("a", 4, elem_size=8)
        space.store(seg.address_of(2), 99)
        assert space.load(seg.address_of(2)) == 99
        assert seg.values[2] == 99

    def test_unmapped_load_raises(self):
        space = AddressSpace()
        space.allocate("a", 4)
        with pytest.raises(MemoryError_):
            space.load(0x10)

    def test_between_segments_unmapped(self):
        space = AddressSpace()
        a = space.allocate("a", 1, elem_size=8)
        space.allocate("b", 1, elem_size=8)
        assert not space.is_mapped(a.end + 8)

    def test_misaligned_access_raises(self):
        space = AddressSpace()
        seg = space.allocate("a", 4, elem_size=8)
        with pytest.raises(MemoryError_):
            space.load(seg.base + 3)
        with pytest.raises(MemoryError_):
            space.store(seg.base + 5, 1)

    def test_is_mapped_boundaries(self):
        space = AddressSpace()
        seg = space.allocate("a", 4, elem_size=8)
        assert space.is_mapped(seg.base)
        assert space.is_mapped(seg.end - 1)
        assert not space.is_mapped(seg.end)
        assert not space.is_mapped(seg.base - 1)

    def test_lookup_cache_consistency(self):
        # Interleaved accesses across segments exercise the last-segment
        # fast path.
        space = AddressSpace()
        a = space.allocate("a", 4, elem_size=8)
        b = space.allocate("b", 4, elem_size=8)
        space.store(a.base, 1)
        space.store(b.base, 2)
        assert space.load(a.base) == 1
        assert space.load(b.base) == 2
        assert space.load(a.base) == 1
