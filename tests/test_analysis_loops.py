"""Unit tests for loop detection, induction variables, and bounds."""

import pytest

from repro.analysis.loops import (
    find_loops,
    induction_variables,
    innermost_loop_of,
    loop_bound,
)
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.opcodes import Opcode


def build_mul_iv_loop():
    """``for (i = 1; i < 1024; i *= 2)`` — non-canonical IV (§3.5)."""
    module = Module("m")
    b = IRBuilder(module)
    b.function("f")
    entry, loop, done = b.blocks("entry", "loop", "done")
    b.at(entry)
    b.jmp(loop)
    b.at(loop)
    i = b.phi([(entry, 1)], name="i")
    i2 = b.mul(i, 2, name="i2")
    b.add_incoming(i, loop, i2)
    cond = b.lt(i2, 1024, name="cond")
    b.br(cond, loop, done)
    b.at(done)
    b.ret(i2)
    module.finalize()
    return module


class TestLoopDetection:
    def test_single_loop(self, sum_loop):
        module, _, _ = sum_loop
        loops = find_loops(module.function("main"))
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "loop"
        assert loop.latches == ["loop"]
        assert loop.body == {"loop"}
        assert loop.depth == 1

    def test_nested_loops(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        assert len(loops) == 2
        outer = next(l for l in loops if l.header == "outer_h")
        inner = next(l for l in loops if l.header == "inner_h")
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.depth == 2
        assert inner.body == {"inner_h"}
        assert {"outer_h", "inner_h", "outer_latch"} <= outer.body

    def test_innermost_loop_of(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        assert innermost_loop_of(loops, "inner_h").header == "inner_h"
        assert innermost_loop_of(loops, "outer_latch").header == "outer_h"
        assert innermost_loop_of(loops, "entry") is None

    def test_no_loops(self):
        module = Module("n")
        b = IRBuilder(module)
        b.function("f")
        b.at(b.block("entry"))
        b.ret(0)
        module.finalize()
        assert find_loops(module.function("f")) == []

    def test_latch_branch_pcs(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        assert inner.latch_branch_pcs() == [function.block("inner_h").end_pc]

    def test_preheader(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        outer = next(l for l in loops if l.header == "outer_h")
        assert inner.preheader() == "outer_h"
        assert outer.preheader() == "entry"

    def test_exit_edges(self, sum_loop):
        module, _, _ = sum_loop
        loop = find_loops(module.function("main"))[0]
        assert loop.exit_edges() == [("loop", "done")]


class TestInductionVariables:
    def test_canonical_iv(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        loop = find_loops(function)[0]
        ivs = induction_variables(function, loop)
        by_name = {iv.register: iv for iv in ivs}
        assert "i" in by_name
        iv = by_name["i"]
        assert iv.step_op is Opcode.ADD
        assert iv.step == 1
        assert iv.init == 0
        assert iv.is_canonical

    def test_accumulator_is_not_detected_as_iv_with_nonconst_step(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        loop = find_loops(function)[0]
        ivs = induction_variables(function, loop)
        registers = {iv.register for iv in ivs}
        # acc updates by a loop-varying value, so it must be excluded.
        assert "acc" not in registers

    def test_multiplicative_iv(self):
        module = build_mul_iv_loop()
        function = module.function("f")
        loop = find_loops(function)[0]
        ivs = induction_variables(function, loop)
        assert len(ivs) == 1
        assert ivs[0].step_op is Opcode.MUL
        assert ivs[0].step == 2
        assert not ivs[0].is_canonical

    def test_nested_ivs_found_in_both_loops(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        outer = next(l for l in loops if l.header == "outer_h")
        inner = next(l for l in loops if l.header == "inner_h")
        outer_regs = {iv.register for iv in induction_variables(function, outer)}
        inner_regs = {iv.register for iv in induction_variables(function, inner)}
        assert "iv1" in outer_regs
        assert "iv2" in inner_regs


class TestLoopBounds:
    def test_constant_bound(self, sum_loop):
        module, _, _ = sum_loop
        function = module.function("main")
        loop = find_loops(function)[0]
        iv = induction_variables(function, loop)[0]
        bound = loop_bound(function, loop, iv)
        assert bound is not None
        assert bound.bound == 100
        assert bound.compare.op is Opcode.CMP_LT

    def test_register_bound_is_invariant(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        ivs = induction_variables(function, inner)
        iv = next(v for v in ivs if v.register == "iv2")
        bound = loop_bound(function, inner, iv)
        assert bound is not None
        assert bound.bound == 8  # INNER immediate

    def test_dynamic_bound_rejected(self):
        # A loop comparing against a value recomputed inside the loop has
        # no static bound.
        module = Module("dyn")
        b = IRBuilder(module)
        b.function("f")
        entry, loop, done = b.blocks("entry", "loop", "done")
        from repro.mem.address import AddressSpace

        space = AddressSpace()
        seg = space.allocate("limit", [5], elem_size=8)
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        limit = b.load(seg.base, name="limit")
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        cond = b.lt(i2, limit, name="cond")
        b.br(cond, loop, done)
        b.at(done)
        b.ret(i2)
        module.finalize()
        function = module.function("f")
        loop_info = find_loops(function)[0]
        iv = induction_variables(function, loop_info)[0]
        assert loop_bound(function, loop_info, iv) is None
