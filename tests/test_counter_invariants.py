"""Cross-counter invariant checks over real runs of every workload class
and scheme — a simulator-bug detector."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import InjectionSite
from repro.experiments.runner import (
    run_ainsworth_jones,
    run_apt_get,
    run_baseline,
)
from repro.ir.opcodes import Opcode
from repro.machine.machine import Machine
from repro.passes.aptget_pass import AptGetPass
from repro.workloads.registry import TINY_SUITE, make_workload
from tests.conftest import build_nested_indirect


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_baseline_counters_consistent(name):
    run = run_baseline(make_workload(name))
    assert run.perf.check_invariants() == []


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_aj_counters_consistent(name):
    run = run_ainsworth_jones(make_workload(name), distance=8)
    assert run.perf.check_invariants() == []


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_apt_get_counters_consistent(name):
    run = run_apt_get(make_workload(name))
    assert run.perf.check_invariants() == []


def test_invariant_checker_catches_corruption():
    from repro.machine.pmu import Counters, PerfStat

    broken = Counters(loads=10, l1_hits=3, l1_misses=3)  # 3+3 != 10
    assert PerfStat(broken).check_invariants()


# ----------------------------------------------------------------------
# Lifecycle accounting: every issued software prefetch must end up in
# exactly one terminal bucket — consumed (useful: timely or late),
# evicted before use, dropped (redundant / MSHR-full / unmapped), or
# still outstanding (filled-but-unused or in flight) when the run ends.
# ----------------------------------------------------------------------
def _assert_lifecycle_accounting(machine, counters):
    c = counters
    outstanding = machine.mem.sw_prefetch_outstanding()
    assert c.sw_prefetch_issued == (
        c.sw_prefetch_useful
        + c.sw_prefetch_early_evicted
        + c.sw_prefetch_redundant
        + c.sw_prefetch_dropped_mshr
        + c.sw_prefetch_dropped_unmapped
        + outstanding
    )
    # LOAD_HIT_PRE (late) is the coalesce subset of useful, never more.
    assert c.load_hit_pre_sw_pf <= c.sw_prefetch_useful


def _assert_trace_matches_counters(trace, machine, counters):
    from repro.obs.sites import site_reports

    reports = site_reports(trace)
    totals = {
        field: sum(getattr(r, field) for r in reports.values())
        for field in (
            "issued",
            "timely",
            "late",
            "early_evicted",
            "dropped_mshr",
            "dropped_unmapped",
            "redundant",
            "unused",
        )
    }
    c = counters
    assert totals["issued"] == c.sw_prefetch_issued
    assert totals["timely"] + totals["late"] == c.sw_prefetch_useful
    # Store coalesces count as late in the trace but do not bump
    # LOAD_HIT_PRE (a load-only event), hence >= rather than ==.
    assert totals["late"] >= c.load_hit_pre_sw_pf
    assert totals["early_evicted"] == c.sw_prefetch_early_evicted
    assert totals["redundant"] == c.sw_prefetch_redundant
    assert totals["dropped_mshr"] == c.sw_prefetch_dropped_mshr
    assert totals["dropped_unmapped"] == c.sw_prefetch_dropped_unmapped
    assert totals["unused"] == machine.mem.sw_prefetch_outstanding()


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
@pytest.mark.parametrize("traced", [False, True])
def test_aj_lifecycle_accounting(name, traced):
    workload = make_workload(name)
    module, space = workload.build()
    from repro.passes.ainsworth_jones import (
        AinsworthJonesConfig,
        AinsworthJonesPass,
    )

    AinsworthJonesPass(AinsworthJonesConfig(distance=8)).run(module)
    machine = Machine(module, space)
    trace = machine.enable_tracing() if traced else None
    result = machine.run(workload.entry)
    _assert_lifecycle_accounting(machine, result.counters)
    if trace is not None:
        _assert_trace_matches_counters(trace, machine, result.counters)


def _target_pc(module):
    return next(
        inst.pc
        for inst in module.function("main").instructions()
        if inst.op is Opcode.LOAD and inst.dst == "t.v"
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    outer=st.integers(min_value=1, max_value=24),
    inner=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
    distance=st.integers(min_value=1, max_value=256),
    site=st.sampled_from([InjectionSite.INNER, InjectionSite.OUTER]),
    sweep=st.integers(min_value=1, max_value=8),
)
def test_lifecycle_accounting_randomized(
    outer, inner, seed, distance, site, sweep
):
    """The issued == sum-of-terminal-buckets identity holds for any
    randomized nested workload and hint shape, traced or not, and the
    traced rollups agree with the PMU exactly."""
    module, space, expected = build_nested_indirect(
        outer=outer, inner=inner, seed=seed
    )
    hints = HintSet.from_hints(
        [
            PrefetchHint(
                load_pc=_target_pc(module),
                function="main",
                distance=distance,
                site=site,
                outer_distance=distance,
                sweep=sweep,
            )
        ]
    )
    AptGetPass(hints).run(module)

    untraced = Machine(module, space)
    result = untraced.run("main")
    assert result.value == expected
    _assert_lifecycle_accounting(untraced, result.counters)

    module2, space2, _ = build_nested_indirect(
        outer=outer, inner=inner, seed=seed
    )
    AptGetPass(hints).run(module2)
    traced = Machine(module2, space2)
    trace = traced.enable_tracing()
    result2 = traced.run("main")
    assert result2.value == expected
    # Tracing must not perturb timing or any counter.
    assert result2.counters.as_dict() == result.counters.as_dict()
    _assert_lifecycle_accounting(traced, result2.counters)
    _assert_trace_matches_counters(trace, traced, result2.counters)
