"""Cross-counter invariant checks over real runs of every workload class
and scheme — a simulator-bug detector."""

import pytest

from repro.experiments.runner import (
    run_ainsworth_jones,
    run_apt_get,
    run_baseline,
)
from repro.workloads.registry import TINY_SUITE, make_workload


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_baseline_counters_consistent(name):
    run = run_baseline(make_workload(name))
    assert run.perf.check_invariants() == []


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_aj_counters_consistent(name):
    run = run_ainsworth_jones(make_workload(name), distance=8)
    assert run.perf.check_invariants() == []


@pytest.mark.parametrize("name", sorted(TINY_SUITE))
def test_apt_get_counters_consistent(name):
    run = run_apt_get(make_workload(name))
    assert run.perf.check_invariants() == []


def test_invariant_checker_catches_corruption():
    from repro.machine.pmu import Counters, PerfStat

    broken = Counters(loads=10, l1_hits=3, l1_misses=3)  # 3+3 != 10
    assert PerfStat(broken).check_invariants()
