"""Tests for LBR latency-distribution analysis (paper §3.1-3.2, Fig 4)."""

import random

from repro.core.distance import MIN_DISTANCE, MIN_SAMPLES, optimal_distance
from repro.core.distribution import (
    analyze_latency_distribution,
    iteration_latencies,
    trip_counts,
)


def make_sample(entries):
    """Build an LBR snapshot from (from_pc, to_pc, cycle) tuples."""
    return tuple(entries)


class TestIterationLatencies:
    def test_deltas_between_latch_instances(self):
        sample = make_sample(
            [(0x10, 0x4, 100), (0x10, 0x4, 150), (0x10, 0x4, 230)]
        )
        assert iteration_latencies([sample], [0x10]) == [50, 80]

    def test_other_branches_interleaved(self):
        sample = make_sample(
            [
                (0x10, 0x4, 100),
                (0x99, 0x5, 120),  # unrelated branch
                (0x10, 0x4, 160),
            ]
        )
        assert iteration_latencies([sample], [0x10]) == [60]

    def test_no_pairs_no_latencies(self):
        sample = make_sample([(0x10, 0x4, 100)])
        assert iteration_latencies([sample], [0x10]) == []

    def test_multiple_latches_merge(self):
        sample = make_sample([(0x10, 0x4, 100), (0x14, 0x4, 130)])
        assert iteration_latencies([sample], [0x10, 0x14]) == [30]

    def test_deltas_do_not_span_samples(self):
        a = make_sample([(0x10, 0x4, 100)])
        b = make_sample([(0x10, 0x4, 900)])
        assert iteration_latencies([a, b], [0x10]) == []

    def test_paper_fig3_example(self):
        # Fig 3: inner branches (I) at cycles forming avg latency ~2.2.
        sample = make_sample(
            [
                (0x20, 0x8, 10),  # outer
                (0x10, 0x4, 12),
                (0x10, 0x4, 14),
                (0x10, 0x4, 16),
                (0x20, 0x8, 18),  # outer
                (0x10, 0x4, 20),
                (0x10, 0x4, 22),
            ]
        )
        inner = iteration_latencies([sample], [0x10])
        # The 16->20 delta spans the outer-loop branch, so one "long"
        # iteration (4 cycles) appears — the same artifact a real LBR
        # measurement has; peak detection treats it as distribution mass.
        assert inner == [2, 2, 4, 2]


class TestTripCounts:
    def test_counts_inner_between_outers(self):
        sample = make_sample(
            [
                (0x20, 0x8, 10),
                (0x10, 0x4, 12),
                (0x10, 0x4, 14),
                (0x20, 0x8, 18),
                (0x10, 0x4, 20),
                (0x20, 0x8, 30),
            ]
        )
        # 2 inner back-edges -> 3 iterations; 1 -> 2 iterations.
        assert trip_counts([sample], [0x10], [0x20]) == [3, 2]

    def test_truncated_window_discarded(self):
        sample = make_sample(
            [(0x10, 0x4, 12), (0x10, 0x4, 14)]  # no enclosing outer branch
        )
        assert trip_counts([sample], [0x10], [0x20]) == []

    def test_empty_windows_counted_as_single_iteration(self):
        sample = make_sample([(0x20, 0x8, 10), (0x20, 0x8, 20)])
        assert trip_counts([sample], [0x10], [0x20]) == [1]


class TestPeakDetection:
    def test_bimodal_distribution(self):
        rng = random.Random(4)
        latencies = [rng.choice([20, 21, 22]) for _ in range(400)]
        latencies += [rng.choice([418, 420, 422]) for _ in range(300)]
        distribution = analyze_latency_distribution(latencies)
        assert len(distribution.peaks) >= 2
        assert abs(distribution.ic_latency - 21) <= 6
        assert abs(distribution.miss_latency - 420) <= 8
        assert distribution.mc_latency > 350

    def test_single_peak(self):
        latencies = [30] * 100
        distribution = analyze_latency_distribution(latencies)
        assert distribution.mc_latency == 0 or len(distribution.peaks) == 1

    def test_empty(self):
        distribution = analyze_latency_distribution([])
        assert distribution.peaks == []
        assert distribution.ic_latency == 0

    def test_noise_peaks_filtered(self):
        rng = random.Random(7)
        latencies = [rng.choice([20, 22]) for _ in range(1000)]
        latencies += [777]  # one outlier must not become a peak
        distribution = analyze_latency_distribution(latencies)
        assert all(p < 700 for p in distribution.peaks)

    def test_four_level_distribution_like_fig4(self):
        rng = random.Random(11)
        latencies = []
        for center, weight in ((80, 400), (230, 150), (400, 300), (650, 120)):
            latencies += [
                center + rng.randrange(-4, 5) for _ in range(weight)
            ]
        distribution = analyze_latency_distribution(latencies)
        assert 3 <= len(distribution.peaks) <= 5
        assert abs(distribution.ic_latency - 80) <= 10
        assert abs(distribution.miss_latency - 650) <= 12

    def test_masses_align_with_peaks(self):
        latencies = [20] * 500 + [420] * 100
        distribution = analyze_latency_distribution(latencies)
        assert len(distribution.peak_masses) == len(distribution.peaks)
        # The dominant mode carries the larger mass.
        heaviest = distribution.peaks[
            distribution.peak_masses.index(max(distribution.peak_masses))
        ]
        assert abs(heaviest - 20) <= 6


class TestDegradedFallback:
    """The documented graceful-degradation contract (module docstring):
    'not enough signal' degrades to distance MIN_DISTANCE flagged
    unreliable — never an exception, never a confident estimate."""

    def test_empty_input_falls_back_to_min_distance(self):
        distribution = analyze_latency_distribution([])
        assert distribution.peaks == []
        assert distribution.mc_latency == 0
        estimate = optimal_distance(distribution)
        assert estimate.distance == MIN_DISTANCE
        assert not estimate.reliable

    def test_single_peak_falls_back_to_min_distance(self):
        # The load always hits: one mode, no memory component to hide.
        distribution = analyze_latency_distribution([37] * 200)
        assert len(distribution.peaks) == 1
        assert distribution.ic_latency == distribution.miss_latency
        assert distribution.mc_latency == 0
        estimate = optimal_distance(distribution)
        assert estimate.distance == MIN_DISTANCE
        assert not estimate.reliable

    def test_below_min_samples_is_unreliable(self):
        latencies = [20] * (MIN_SAMPLES // 2) + [420] * (MIN_SAMPLES // 4)
        estimate = optimal_distance(analyze_latency_distribution(latencies))
        assert not estimate.reliable

    def test_degenerate_inputs_never_raise(self):
        for latencies in ([], [1], [0], [5] * 3, [1_000_000], [1, 1_000_000]):
            distribution = analyze_latency_distribution(latencies)
            estimate = optimal_distance(distribution)
            assert estimate.distance >= MIN_DISTANCE
