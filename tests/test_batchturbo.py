"""The batched superblock tier (``tier="batchturbo"``): shared fusion
verdicts with the turbo engine, guarded-nest discovery and execution,
budget-boundary replay exactness, tier resolution/fallback plumbing,
the vectorized L1 tag lane, the batch code cache, and the service/CLI
surfaces that report which tier ran."""

from __future__ import annotations

import random
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.verifier import verify_module
from repro.machine import codecache
from repro.machine.batch import (
    BATCH_TIERS,
    BatchCell,
    BatchMachine,
    FALLBACK_CODES,
    resolve_tier,
    run_batch,
)
from repro.machine.config import MachineConfig
from repro.machine.fusion import (
    GuardedUnit,
    discover_units,
    flatten_unit,
    unit_depth,
)
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.machine import Machine
from repro.machine.superblock import compile_turbo
from repro.mem.address import AddressSpace
from repro.mem.batch import vector_threshold
from repro.workloads.registry import TINY_SUITE, make_workload
from tests.conftest import tiny_memory
from tests.test_machine_batch import build_kernel, fast_config


def build_guarded_nest(
    outer: int = 40, inner: int = 4, enter_on_true: bool = True, seed: int = 7
):
    """``for i: if G[i] (or not G[i]): for j: acc += T[j]`` — an inner
    loop entered conditionally from a guard diamond whose arms rejoin
    at the outer latch (the shape :class:`GuardedUnit` models)."""
    rng = random.Random(seed)
    space = AddressSpace()
    gate_values = [rng.randrange(2) for _ in range(outer + 8)]
    gate = space.allocate("G", gate_values, elem_size=8)
    t_values = [rng.randrange(1 << 10) for _ in range(inner + 8)]
    t_seg = space.allocate("T", t_values, elem_size=8)
    body = sum(t_values[j] for j in range(inner))
    expected = sum(
        body
        for i in range(outer)
        if bool(gate_values[i]) == enter_on_true
    )

    module = Module("guarded_nest")
    b = IRBuilder(module)
    b.function("main")
    entry, outer_h, inner_h, outer_latch, done = b.blocks(
        "entry", "outer_h", "inner_h", "outer_latch", "done"
    )
    b.at(entry)
    b.jmp(outer_h)
    b.at(outer_h)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 0)], name="acc")
    ga = b.gep(gate.base, i, 8, name="ga")
    work = b.load(ga, name="work")
    if enter_on_true:
        b.br(work, inner_h, outer_latch)
    else:
        b.br(work, outer_latch, inner_h)
    b.at(inner_h)
    j = b.phi([(outer_h, 0)], name="j")
    jacc = b.phi([(outer_h, acc)], name="jacc")
    ta = b.gep(t_seg.base, j, 8, name="ta")
    tv = b.load(ta, name="tv")
    jacc2 = b.add(jacc, tv, name="jacc2")
    j2 = b.add(j, 1, name="j2")
    b.add_incoming(j, inner_h, j2)
    b.add_incoming(jacc, inner_h, jacc2)
    cj = b.lt(j2, inner, name="cj")
    b.br(cj, inner_h, outer_latch)
    b.at(outer_latch)
    accm = b.phi([(outer_h, acc), (inner_h, jacc2)], name="accm")
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, outer_latch, i2)
    b.add_incoming(acc, outer_latch, accm)
    ci = b.lt(i2, outer, name="ci")
    b.br(ci, outer_h, done)
    b.at(done)
    b.ret(accm)
    module.finalize()
    verify_module(module, strict=True)
    return module, space, expected


def run_sequential(module, space, config, function="main"):
    result = Machine(module, space, config=config).run(function)
    return result.value, result.counters.as_dict()


def assert_cells_match_sequential(outcome, rebuilds, configs):
    for index, (result, (module, space), config) in enumerate(
        zip(outcome.results, rebuilds, configs)
    ):
        value, counters = run_sequential(module, space, config)
        assert result.value == value, f"cell {index} value"
        assert result.counters.as_dict() == counters, f"cell {index} counters"


# ----------------------------------------------------------------------
# Guarded nests: discovery shape + execution identity
# ----------------------------------------------------------------------
class TestGuardedNestFusion:
    @pytest.mark.parametrize("enter_on_true", [True, False])
    def test_discovery_shape(self, enter_on_true):
        module, _, _ = build_guarded_nest(enter_on_true=enter_on_true)
        units = discover_units(module.functions["main"])
        assert "outer_h" in units
        unit = units["outer_h"]
        assert unit_depth(unit) == 2
        guarded = [n for n in unit.path if isinstance(n, GuardedUnit)]
        assert len(guarded) == 1
        node = guarded[0]
        assert node.guard == "outer_h"
        assert node.skip == "outer_latch"
        assert node.enter_on_true is enter_on_true
        assert node.unit.header == "inner_h"
        assert unit.guards == {"outer_h": "inner_h"}
        # Both guard arms converge on the continuation block.
        assert unit.cont["outer_h"] == "outer_latch"
        assert set(flatten_unit(unit)) == {
            "outer_h",
            "inner_h",
            "outer_latch",
        }
        # The inner loop stays in the map under its own header so a run
        # resumed mid-nest can re-enter bulk stepping there.
        assert "inner_h" in units

    @pytest.mark.parametrize("enter_on_true", [True, False])
    def test_engines_agree_on_guarded_nest(self, enter_on_true):
        config = fast_config(tiny_memory())
        results = {}
        for engine in ("reference", "fast", "turbo"):
            module, space, expected = build_guarded_nest(
                enter_on_true=enter_on_true
            )
            result = Machine(
                module, space, config=replace(config, engine=engine)
            ).run("main")
            assert result.value == expected
            results[engine] = result.counters.as_dict()
        assert results["fast"] == results["reference"]
        assert results["turbo"] == results["reference"]

    @pytest.mark.parametrize("enter_on_true", [True, False])
    def test_batchturbo_bit_identical_on_guarded_nest(self, enter_on_true):
        memory = tiny_memory()
        configs = [fast_config(memory.scaled(s)) for s in (1, 2, 4, 8)]
        cells, rebuilds = [], []
        for config in configs:
            module, space, _ = build_guarded_nest(
                enter_on_true=enter_on_true
            )
            cells.append(BatchCell(module, space, config))
            rebuilds.append(
                build_guarded_nest(enter_on_true=enter_on_true)[:2]
            )
        outcome = run_batch(cells, tier="batchturbo")
        assert outcome.batched and outcome.tier == "batchturbo"
        assert_cells_match_sequential(outcome, rebuilds, configs)


# ----------------------------------------------------------------------
# Fusion-verdict agreement: turbo and batchturbo accept the same nests
# ----------------------------------------------------------------------
class TestVerdictAgreement:
    @pytest.mark.parametrize("name", sorted(TINY_SUITE))
    def test_turbo_and_batchturbo_fuse_the_same_nests(self, name):
        instance = make_workload(name, "tiny")
        module, _ = instance.build()
        entry = instance.entry
        tcf = compile_turbo(module.functions[entry])
        turbo_headers = {sb.header for sb in tcf.superblocks()}

        cells = []
        for _ in range(2):
            cell_instance = make_workload(name, "tiny")
            cell_module, cell_space = cell_instance.build()
            cells.append(
                BatchCell(cell_module, cell_space, fast_config(tiny_memory()))
            )
        bm = BatchMachine(cells, tier="batchturbo")
        btf = bm._compile(entry)
        batch_headers = {sb.header for sb in btf.superblocks()}

        # Same fusability verdict on every loop nest of the entry
        # function — neither codegen declines a nest the other takes.
        assert batch_headers == turbo_headers
        # And both agree with the shared discovery module, including
        # nesting depth.
        units = discover_units(module.functions[entry])
        assert turbo_headers == set(units)
        for sb in btf.superblocks():
            assert sb.depth == unit_depth(units[sb.header])


# ----------------------------------------------------------------------
# Budget boundaries: guard bails must replay to the exact instruction
# ----------------------------------------------------------------------
class TestBudgetBoundaryReplay:
    def test_budget_sweep_matches_sequential_at_every_boundary(self):
        base = fast_config(tiny_memory())
        module, space, _ = build_guarded_nest(outer=24, inner=4)
        total = (
            Machine(module, space, config=base)
            .run("main")
            .counters.instructions
        )
        assert total > 40

        step = max(1, total // 30)
        for budget in range(1, total + step + 1, step):
            config = replace(base, max_instructions=budget)
            sequential = []
            for scale in (1, 4):
                cfg = replace(config, memory=tiny_memory().scaled(scale))
                seq_module, seq_space, _ = build_guarded_nest(
                    outer=24, inner=4
                )
                try:
                    sequential.append(
                        ("ok",)
                        + run_sequential(seq_module, seq_space, cfg)
                    )
                except ExecutionLimitExceeded:
                    sequential.append(("limit",))

            cells = []
            for scale in (1, 4):
                cfg = replace(config, memory=tiny_memory().scaled(scale))
                cell_module, cell_space, _ = build_guarded_nest(
                    outer=24, inner=4
                )
                cells.append(BatchCell(cell_module, cell_space, cfg))
            try:
                outcome = run_batch(cells, tier="batchturbo")
            except ExecutionLimitExceeded:
                batched = [("limit",), ("limit",)]
            else:
                assert outcome.batched
                batched = [
                    ("ok", r.value, r.counters.as_dict())
                    for r in outcome.results
                ]
            # The superblock guard must decline bulk stepping before it
            # could overrun the budget: at every boundary the batched
            # run raises exactly when the sequential runs raise, and
            # matches them bit-for-bit when it does not.
            assert batched == sequential, f"budget {budget}"


# ----------------------------------------------------------------------
# Tier resolution + fallback reporting
# ----------------------------------------------------------------------
class TestTierPlumbing:
    def test_resolve_tier(self):
        module, space = build_kernel()
        fast_cells = [BatchCell(module, space, fast_config())]
        turbo_cells = [
            BatchCell(
                module, space, replace(fast_config(), engine="turbo")
            )
        ]
        for tier in BATCH_TIERS:
            assert resolve_tier(fast_cells, tier) == tier
            assert resolve_tier(turbo_cells, tier) == tier
        assert resolve_tier(fast_cells, None) == "batch"
        assert resolve_tier(turbo_cells, None) == "batchturbo"
        with pytest.raises(ValueError, match="unknown batch tier"):
            resolve_tier(fast_cells, "warp")

    def test_turbo_engine_cells_pick_batchturbo(self):
        config = replace(fast_config(tiny_memory()), engine="turbo")
        cells = [
            BatchCell(*build_kernel(), config),
            BatchCell(*build_kernel(), config),
        ]
        outcome = run_batch(cells)
        assert outcome.batched
        assert outcome.tier == "batchturbo"

    def test_single_cell_replays(self):
        config = fast_config(tiny_memory())
        outcome = run_batch(
            [BatchCell(*build_kernel(), config)], tier="batchturbo"
        )
        assert not outcome.batched
        assert outcome.tier == "replay"
        assert outcome.reason_code == "single-cell"
        module, space = build_kernel()
        value, _ = run_sequential(module, space, config)
        assert outcome.results[0].value == value

    def test_divergent_cells_replay_with_reason_code(self):
        config = fast_config(tiny_memory())
        cells = [
            BatchCell(*build_kernel(distance=None), config),
            BatchCell(*build_kernel(distance=4), config),
        ]
        outcome = run_batch(cells, tier="batchturbo")
        assert not outcome.batched
        assert outcome.tier == "replay"
        assert outcome.reason_code in FALLBACK_CODES
        rebuilds = [
            build_kernel(distance=None),
            build_kernel(distance=4),
        ]
        assert_cells_match_sequential(
            outcome, rebuilds, [config, config]
        )


# ----------------------------------------------------------------------
# Vectorized L1 tag lane
# ----------------------------------------------------------------------
class TestVectorLane:
    def test_threshold_default_keeps_lane_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_VECTOR_CELLS", raising=False)
        assert vector_threshold() == 256
        config = fast_config(tiny_memory())
        cells = [BatchCell(*build_kernel(), config) for _ in range(4)]
        bm = BatchMachine(cells, tier="batchturbo")
        assert bm.vector is False
        monkeypatch.setenv("REPRO_BATCH_VECTOR_CELLS", "0")
        assert vector_threshold() > (1 << 32)

    def test_forced_lane_is_bit_identical_and_consistent(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_VECTOR_CELLS", "1")
        memory = tiny_memory()
        configs = [fast_config(memory.scaled(s)) for s in (1, 2, 4, 8)]
        cells = [
            BatchCell(*build_kernel(n=200), config) for config in configs
        ]
        bm = BatchMachine(cells, tier="batchturbo")
        assert bm.vector is True
        lane = bm.bindings.lane
        assert lane is not None
        results = bm.run("main")
        assert lane.probes > 0
        # Every clean cell's MRU mirror still matches a structural scan.
        assert lane.scan_consistent()
        for result, config in zip(results, configs):
            module, space = build_kernel(n=200)
            value, counters = run_sequential(module, space, config)
            assert result.value == value
            assert result.counters.as_dict() == counters


# ----------------------------------------------------------------------
# Batch code cache: round-trip + cell-order invalidation
# ----------------------------------------------------------------------
class TestBatchCodeCache:
    @pytest.fixture()
    def cache_dir(self, tmp_path):
        path = str(tmp_path / "codecache")
        yield path
        codecache.forget(path)

    def _configs(self, cache_dir, scales):
        memory = tiny_memory()
        return [
            replace(
                fast_config(memory.scaled(scale)), code_cache=cache_dir
            )
            for scale in scales
        ]

    def _run(self, configs):
        cells = [
            BatchCell(*build_kernel(n=120), config) for config in configs
        ]
        outcome = run_batch(cells, tier="batchturbo")
        assert outcome.batched
        return [
            (r.value, r.counters.as_dict()) for r in outcome.results
        ]

    def test_warm_load_round_trips(self, cache_dir):
        configs = self._configs(cache_dir, (1, 2, 4, 8))
        cold = self._run(configs)
        cache = codecache.resolve(cache_dir)
        assert cache.stats()["misses"] == 1
        warm = self._run(configs)
        assert cache.stats()["hits"] == 1
        assert warm == cold
        for (value, counters), config in zip(warm, configs):
            module, space = build_kernel(n=120)
            seq_value, seq_counters = run_sequential(
                module, space, replace(config, code_cache=None)
            )
            assert value == seq_value
            assert counters == seq_counters

    def test_permuted_cell_order_invalidates(self, cache_dir):
        forward = self._run(self._configs(cache_dir, (1, 2, 4, 8)))
        cache = codecache.resolve(cache_dir)
        assert cache.stats()["misses"] == 1
        # Same cell set, different order (cell 0 pinned so the key —
        # which also hashes cell 0's batch-level config — stays the
        # same): the sorted fingerprint vector matches but the
        # payload's ordered vector must not — the steppers' tables are
        # positional, so a silent hit would hand cell 1 cell 3's cache
        # hierarchy.
        permuted = self._run(self._configs(cache_dir, (1, 8, 4, 2)))
        assert cache.stats()["invalidated"] == 1
        assert permuted == [forward[0], forward[3], forward[2], forward[1]]


# ----------------------------------------------------------------------
# Service + CLI reporting surfaces
# ----------------------------------------------------------------------
class TestServiceSurfaces:
    def test_sweep_reports_batchturbo_tier(self):
        from repro.service.api import TuningService

        service = TuningService()
        payload = service.sweep(
            "micro-tiny",
            "tiny",
            schemes=("aj",),
            distances=(2, 4),
            engine="turbo",
        )
        (group,) = payload["execution"]["groups"]
        assert group["batched"] is True
        assert group["tier"] == "batchturbo"
        assert group["reason_code"] is None
        for cell in payload["cells"]:
            assert cell["tier"] == "batchturbo"

    def test_fallback_sweep_counts_reason_metric(self):
        from repro.service.api import TuningService

        service = TuningService()
        # Distance 1 folds the loop increment into the prefetch
        # advance, changing per-cell instruction shape — a legitimate
        # per-cell fallback.
        payload = service.sweep(
            "micro-tiny",
            "tiny",
            schemes=("aj",),
            distances=(1, 2),
            engine="turbo",
        )
        (group,) = payload["execution"]["groups"]
        assert group["batched"] is False
        assert group["tier"] == "replay"
        assert group["reason_code"] in FALLBACK_CODES
        for cell in payload["cells"]:
            assert cell["tier"] == "replay"
        counters = service.metrics.counters()
        assert (
            counters.get(f"batch.fallback.{group['reason_code']}", 0) >= 1
        )

    def test_sweep_table_shows_executed_tier(self):
        from repro.cli import _format_sweep_table

        def cell(scheme, tier, cached=False, batched=True):
            return {
                "scheme": scheme,
                "distance": 4,
                "cache_scale": 1,
                "cached": cached,
                "batched": batched,
                "tier": tier,
                "run": {"counters": {"cycles": 100.0}},
            }

        result = SimpleNamespace(
            workload="micro-tiny",
            scale="tiny",
            engine="turbo",
            cells=[
                cell("aj", "batchturbo"),
                cell("aj", None, cached=True),
                cell("baseline", "replay", batched=False),
            ],
            execution={
                "cached_cells": 1,
                "computed_cells": 2,
                "groups": [
                    {
                        "scheme": "aj",
                        "batched": True,
                        "tier": "batchturbo",
                        "reason": None,
                        "reason_code": None,
                    },
                    {
                        "scheme": "baseline",
                        "batched": False,
                        "tier": "replay",
                        "reason": "single cell",
                        "reason_code": "single-cell",
                    },
                ],
            },
        )
        table = _format_sweep_table(result)
        assert "batchturbo" in table
        assert "cache" in table
        assert "replay" in table
        assert "aj:batchturbo" in table
        assert "baseline:replay (single-cell: single cell)" in table

    def test_cache_stats_reports_fallback_counters(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service.store import ArtifactStore

        store = ArtifactStore(str(tmp_path))
        store.merge_metrics(
            {"batch.fallback.divergent-work": 2, "batch.fallback.single-cell": 1}
        )
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "batch fallbacks: 3" in out
        assert "divergent-work=2" in out
        assert "single-cell=1" in out
