"""Unit tests for the hardware prefetcher models."""

from repro.mem.config import MemoryConfig
from repro.mem.hwprefetch import NextLinePrefetcher, StridePrefetcher


def make_stride(threshold=2, degree=2) -> StridePrefetcher:
    config = MemoryConfig(
        stride_confidence=threshold, stride_degree=degree
    )
    return StridePrefetcher(config)


class TestStridePrefetcher:
    def test_needs_training_before_predicting(self):
        prefetcher = make_stride()
        assert prefetcher.observe(1, 100) == []
        assert prefetcher.observe(1, 101) == []  # stride learned, conf 1
        predictions = prefetcher.observe(1, 102)  # conf 2 -> fire
        assert predictions == [103, 104]

    def test_stride_of_two(self):
        prefetcher = make_stride()
        for line in (10, 12, 14):
            predictions = prefetcher.observe(7, line)
        assert predictions == [16, 18]

    def test_negative_stride(self):
        prefetcher = make_stride()
        for line in (100, 98, 96):
            predictions = prefetcher.observe(7, line)
        assert predictions == [94, 92]

    def test_stride_change_resets_confidence(self):
        prefetcher = make_stride()
        prefetcher.observe(1, 100)
        prefetcher.observe(1, 101)
        prefetcher.observe(1, 102)
        assert prefetcher.observe(1, 200) == []  # stride broke, conf 1
        # Two consecutive observations of the new stride re-arm it.
        assert prefetcher.observe(1, 298) == [396, 494]

    def test_same_line_repeat_is_ignored(self):
        prefetcher = make_stride()
        prefetcher.observe(1, 100)
        assert prefetcher.observe(1, 100) == []

    def test_table_aliasing_by_pc(self):
        prefetcher = make_stride()
        other_pc = 1 + prefetcher.entries  # same slot, different pc
        prefetcher.observe(1, 100)
        prefetcher.observe(1, 101)
        # The aliasing PC steals the slot and must retrain.
        assert prefetcher.observe(other_pc, 5) == []
        assert prefetcher.observe(other_pc, 6) == []
        assert prefetcher.observe(other_pc, 7) != []

    def test_independent_pcs(self):
        prefetcher = make_stride()
        for i in range(3):
            a = prefetcher.observe(1, 100 + i)
            b = prefetcher.observe(2, 500 + 2 * i)
        assert a == [103, 104]
        assert b == [506, 508]


class TestNextLine:
    def test_always_next(self):
        prefetcher = NextLinePrefetcher()
        assert prefetcher.observe(0, 41) == [42]
