"""Execution-engine tests: interpreter semantics, translator/block-engine
codegen, and cross-engine differential equality (all engines must agree
bit-for-bit on values, cycles, counters, and LBR contents)."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import IRError, Module
from repro.machine.config import ENGINES, MachineConfig
from repro.machine.interpreter import ExecutionLimitExceeded, run_function
from repro.machine.machine import Machine
from repro.machine.translator import compile_function
from repro.mem.address import AddressSpace
from tests.conftest import (
    build_indirect_loop,
    build_nested_indirect,
    build_sum_loop,
    tiny_memory,
)


def both_engines(module, space_factory, function="main", args=(), profile=False):
    """Run on every engine with fresh state; return machines keyed by engine."""
    results = {}
    for engine in ENGINES:
        space = space_factory()
        machine = Machine(module, space, engine=engine)
        if profile:
            machine.enable_profiling(period=500)
        results[engine] = (machine, machine.run(function, args))
    return results


class TestSemantics:
    def test_sum_loop_value(self, sum_loop):
        module, space, expected = sum_loop
        result = Machine(module, space, engine="reference").run("main")
        assert result.value == expected

    def test_indirect_loop_value(self, indirect_loop):
        module, space, expected = indirect_loop
        result = Machine(module, space).run("main")
        assert result.value == expected

    def test_nested_value(self, nested_indirect):
        module, space, expected = nested_indirect
        result = Machine(module, space).run("main")
        assert result.value == expected

    def test_function_args(self):
        module = Module("a")
        b = IRBuilder(module)
        b.function("addmul", params=["x", "y"])
        b.at(b.block("entry"))
        s = b.add("x", "y")
        p = b.mul(s, 2)
        b.ret(p)
        module.finalize()
        space = AddressSpace()
        for engine in ENGINES:
            machine = Machine(module, space, engine=engine)
            assert machine.run("addmul", (3, 4)).value == 14

    def test_wrong_arity_rejected(self):
        module = Module("a")
        b = IRBuilder(module)
        b.function("f", params=["x"])
        b.at(b.block("entry"))
        b.ret("x")
        module.finalize()
        space = AddressSpace()
        for engine in ENGINES:
            with pytest.raises(IRError):
                Machine(module, space, engine=engine).run("f", ())

    def test_all_alu_opcodes(self):
        module = Module("alu")
        b = IRBuilder(module)
        b.function("f", params=["x"])
        b.at(b.block("entry"))
        r = b.add("x", 10)       # 17
        r = b.sub(r, 3)          # 14
        r = b.mul(r, 3)          # 42
        r = b.div(r, 4)          # 10
        r = b.rem(r, 7)          # 3
        r = b.shl(r, 4)          # 48
        r = b.shr(r, 1)          # 24
        r = b.or_(r, 1)          # 25
        r = b.xor(r, 5)          # 28
        r = b.and_(r, 30)        # 28
        r = b.min(r, 20)         # 20
        r = b.max(r, 21)         # 21
        c = b.ge(r, 21)          # 1
        r = b.select(c, r, 0)    # 21
        cmps = [
            b.eq(r, 21), b.ne(r, 21), b.lt(r, 21),
            b.le(r, 21), b.gt(r, 21),
        ]
        total = r
        for cmp_reg in cmps:
            total = b.add(total, cmp_reg)
        b.ret(total)  # 21 + 1+0+0+1+0 = 23
        module.finalize()
        space = AddressSpace()
        for engine in ENGINES:
            assert Machine(module, space, engine=engine).run("f", (7,)).value == 23

    def test_const_mov_work(self):
        module = Module("cmw")
        b = IRBuilder(module)
        b.function("f")
        b.at(b.block("entry"))
        c = b.const(11)
        m = b.mov(c)
        b.work(5)
        b.ret(m)
        module.finalize()
        space = AddressSpace()
        for engine in ENGINES:
            result = Machine(module, space, engine=engine).run("f")
            assert result.value == 11
            # const + mov + work(5) + ret = 2 + 5 + 1 retired.
            assert result.counters.instructions == 8

    def test_store_visible_to_later_load(self):
        space_template = AddressSpace()
        seg = space_template.allocate("cell", [0], elem_size=8)
        module = Module("st")
        b = IRBuilder(module)
        b.function("f")
        b.at(b.block("entry"))
        b.store(seg.base, 123)
        v = b.load(seg.base)
        b.ret(v)
        module.finalize()
        for engine in ENGINES:
            space = AddressSpace()
            space.allocate("cell", [0], elem_size=8)
            assert Machine(module, space, engine=engine).run("f").value == 123

    def test_execution_limit(self):
        module = Module("inf")
        b = IRBuilder(module)
        b.function("f")
        entry, loop = b.blocks("entry", "loop")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        b.work(10)
        b.jmp(loop)
        module.finalize()
        config = MachineConfig(max_instructions=10_000)
        space = AddressSpace()
        for engine in ENGINES:
            with pytest.raises(ExecutionLimitExceeded):
                Machine(module, space, config=config, engine=engine).run("f")

    def test_prefetch_instruction_is_nonbinding(self, indirect_loop):
        # A module with prefetches to wild addresses must not crash.
        module = Module("pf")
        b = IRBuilder(module)
        b.function("f")
        b.at(b.block("entry"))
        b.prefetch(0xDEAD_BEEF)
        b.ret(0)
        module.finalize()
        space = AddressSpace()
        for engine in ENGINES:
            result = Machine(module, space, engine=engine).run("f")
            assert result.counters.sw_prefetch_dropped_unmapped == 1


class TestDifferential:
    @pytest.mark.parametrize(
        "builder",
        [build_sum_loop, build_indirect_loop, build_nested_indirect],
        ids=["sum", "indirect", "nested"],
    )
    def test_engines_bit_identical(self, builder):
        module = builder()[0]

        def fresh_space():
            return builder()[1]

        results = both_engines(module, fresh_space)
        _, a = results["reference"]
        for engine in ENGINES:
            _, b = results[engine]
            assert a.value == b.value, engine
            assert a.counters.as_dict() == b.counters.as_dict(), engine

    def test_engines_identical_with_profiling(self):
        module, _, _ = build_indirect_loop()

        def fresh_space():
            return build_indirect_loop()[1]

        results = both_engines(module, fresh_space, profile=True)
        machine_a, a = results["reference"]
        for engine in ENGINES:
            machine_b, b = results[engine]
            assert a.counters.as_dict() == b.counters.as_dict(), engine
            assert machine_a.sampler.samples == machine_b.sampler.samples
            assert (
                machine_a.sampler.load_miss_counts
                == machine_b.sampler.load_miss_counts
            )

    def test_engines_identical_after_injection(self):
        from repro.passes.ainsworth_jones import AinsworthJonesPass

        module, _, expected = build_nested_indirect()
        AinsworthJonesPass().run(module)

        def fresh_space():
            return build_nested_indirect()[1]

        results = both_engines(module, fresh_space)
        _, a = results["reference"]
        for engine in ENGINES:
            _, b = results[engine]
            assert a.value == b.value == expected, engine
            assert a.counters.as_dict() == b.counters.as_dict(), engine


class TestTranslator:
    def test_requires_finalized_module(self):
        module = Module("x")
        b = IRBuilder(module)
        b.function("f")
        b.at(b.block("entry"))
        b.ret(0)
        with pytest.raises(IRError):
            compile_function(module.function("f"))

    def test_source_is_inspectable(self, sum_loop):
        module, space, _ = sum_loop
        machine = Machine(module, space)
        source = machine.translated_source("main")
        assert "def __translated" in source
        assert "mem_load" in source
        assert "lbr_push" in source

    def test_compiled_function_cached(self, sum_loop):
        module, space, _ = sum_loop
        machine = Machine(module, space, engine="translate")
        machine.run("main")
        first = machine._compiled[("translate", "main")]
        machine.run("main")
        assert machine._compiled[("translate", "main")] is first

    def test_lbr_entries_recorded(self, sum_loop):
        module, space, _ = sum_loop
        machine = Machine(module, space)
        machine.enable_profiling(period=10)
        machine.run("main")
        assert machine.sampler.samples
        sample = machine.sampler.samples[-1]
        latch_pc = module.function("main").block("loop").end_pc
        assert any(entry[0] == latch_pc for entry in sample)

    def test_cycles_accumulate_across_runs(self, sum_loop):
        module, space, _ = sum_loop
        machine = Machine(module, space)
        first = machine.run("main")
        second = machine.run("main")
        assert machine.counters.cycles == pytest.approx(
            first.counters.cycles + second.counters.cycles
        )
        # Warm caches: the second run is faster.
        assert second.counters.cycles < first.counters.cycles
