"""Chrome-trace export + schema-validation tests."""

import json

from repro.experiments.runner import profile_workload
from repro.machine.machine import Machine
from repro.obs.timeline import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import PrefetchTrace
from repro.passes.aptget_pass import AptGetPass
from repro.workloads.registry import make_workload


def make_synthetic_trace():
    trace = PrefetchTrace(capacity=64, sites={100: "f@0x64/inner"})
    trace.on_issue(100, 1, cycle=10.0, ready=254.0)
    trace.on_fill(1, ready=254.0)
    trace.on_use(1, cycle=300.0, late=False)
    trace.on_issue(100, 2, cycle=20.0, ready=264.0)
    trace.on_use(2, cycle=100.0, late=True)
    trace.on_drop(100, 3, cycle=30.0, reason="redundant")
    trace.on_issue(100, 4, cycle=40.0, ready=284.0)  # stays open
    trace.on_demand(50, 9, cycle=50.0, latency=244.0, level="dram")
    for i in range(3):  # two iterations of a latch at pc 20
        trace.on_branch(20, 10, 100.0 * (i + 1))
    return trace


class TestChromeTrace:
    def test_document_shape_and_validation(self):
        document = chrome_trace(make_synthetic_trace())
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert "timely" in names
        assert "late" in names
        assert "redundant" in names
        assert "unused" in names  # the open record
        assert "dram miss" in names
        assert names.count("iteration") == 2

    def test_spans_carry_margin_args(self):
        document = chrome_trace(make_synthetic_trace())
        timely = next(
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "timely"
        )
        assert timely["args"]["margin_cycles"] == 46.0
        assert timely["ts"] == 10.0
        assert timely["dur"] == 244.0

    def test_metadata_merged(self):
        document = chrome_trace(
            make_synthetic_trace(), metadata={"workload": "x"}
        )
        assert document["otherData"]["workload"] == "x"
        assert document["otherData"]["generator"] == "repro.obs"

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        document = write_chrome_trace(make_synthetic_trace(), path)
        on_disk = json.loads(path.read_text())
        assert on_disk == document
        assert validate_chrome_trace(on_disk) == []


class TestValidator:
    def test_rejects_bad_documents(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not a list"
        ]
        assert validate_chrome_trace({"traceEvents": []})
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -1},
                    {"ph": "?", "pid": 1, "tid": 1},
                ]
            }
        )
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("unknown phase" in p for p in problems)


def test_real_traced_run_exports_valid_trace(tmp_path):
    workload = make_workload("micro-tiny")
    _, hints = profile_workload(workload)
    module, space = make_workload("micro-tiny").build()
    AptGetPass(hints).run(module)
    machine = Machine(module, space)
    trace = machine.enable_tracing()
    machine.run(workload.entry)
    document = write_chrome_trace(trace, tmp_path / "t.json")
    assert validate_chrome_trace(document) == []
    spans = [
        e
        for e in document["traceEvents"]
        if e.get("cat") == "prefetch" and e["ph"] == "X"
    ]
    assert spans, "traced run produced no prefetch spans"
