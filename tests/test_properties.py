"""Property-based tests (hypothesis) over the core data structures and
invariants: LRU caches, the address space, the memory hierarchy, the
latency-distribution analysis, Eq-1/Eq-2, and the two execution engines
(differential testing on randomized programs)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.distance import MAX_DISTANCE, MIN_DISTANCE, optimal_distance
from repro.core.distribution import analyze_latency_distribution
from repro.core.site import InjectionSite, choose_injection_site
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.verifier import verify_module
from repro.machine.config import ENGINES
from repro.machine.machine import Machine
from repro.machine.pmu import Counters, PerfStat
from repro.mem.address import AddressSpace
from repro.mem.cache import SetAssociativeCache
from repro.mem.config import CacheConfig, MemoryConfig
from repro.mem.hierarchy import MemorySystem

FAST = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
@FAST
@given(st.lists(st.integers(min_value=0, max_value=200), max_size=300))
def test_cache_never_exceeds_capacity(lines):
    cache = SetAssociativeCache(CacheConfig("t", 8 * 64, 2, 1))
    for line in lines:
        cache.insert(line)
        assert cache.occupancy() <= 8
    for line in cache.resident_lines():
        assert cache.contains(line)


@FAST
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_cache_most_recent_insert_always_present(lines):
    cache = SetAssociativeCache(CacheConfig("t", 16 * 64, 4, 1))
    for line in lines:
        cache.insert(line)
        assert cache.contains(line)


@FAST
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=31)),
        max_size=200,
    )
)
def test_cache_matches_reference_lru(ops):
    """Differential test against a straightforward LRU list model."""
    assoc = 4
    cache = SetAssociativeCache(CacheConfig("t", assoc * 64, assoc, 1))
    reference: list[int] = []  # oldest first, single set (sets=1)
    for is_lookup, line in ops:
        if is_lookup:
            hit = cache.lookup(line) is not None
            assert hit == (line in reference)
            if hit:
                reference.remove(line)
                reference.append(line)
        else:
            cache.insert(line)
            if line in reference:
                reference.remove(line)
            elif len(reference) == assoc:
                reference.pop(0)
            reference.append(line)
    assert sorted(cache.resident_lines()) == sorted(reference)


# ----------------------------------------------------------------------
# Address space
# ----------------------------------------------------------------------
@FAST
@given(
    st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=8),
    st.data(),
)
def test_address_space_roundtrip(sizes, data):
    space = AddressSpace()
    segments = [
        space.allocate(f"s{i}", size, elem_size=8)
        for i, size in enumerate(sizes)
    ]
    for i, segment in enumerate(segments):
        index = data.draw(
            st.integers(min_value=0, max_value=len(segment) - 1)
        )
        value = data.draw(st.integers(min_value=-(2**40), max_value=2**40))
        space.store(segment.address_of(index), value)
        assert space.load(segment.address_of(index)) == value


@FAST
@given(st.lists(st.integers(min_value=1, max_value=30), min_size=2, max_size=8))
def test_segments_never_overlap(sizes):
    space = AddressSpace()
    segments = [
        space.allocate(f"s{i}", size, elem_size=8)
        for i, size in enumerate(sizes)
    ]
    for a, b in zip(segments, segments[1:]):
        assert a.end <= b.base


# ----------------------------------------------------------------------
# Memory hierarchy invariants
# ----------------------------------------------------------------------
@FAST
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["load", "store", "prefetch"]),
            st.integers(min_value=0, max_value=1023),
        ),
        max_size=200,
    )
)
def test_hierarchy_counter_invariants(ops):
    space = AddressSpace()
    seg = space.allocate("d", 1024, elem_size=8)
    counters = Counters()
    config = MemoryConfig(
        l1=CacheConfig("L1D", 512, 2, 2),
        l2=CacheConfig("L2", 2048, 4, 12),
        llc=CacheConfig("LLC", 8192, 8, 40),
        dram_latency=100,
        mshr_entries=4,
    )
    system = MemorySystem(config, space, counters)
    now = 0.0
    for op, index in ops:
        addr = seg.address_of(index)
        if op == "load":
            latency = system.load(addr, now, pc=7)
            assert latency >= 2
        elif op == "store":
            system.store(addr, now, pc=8)
        else:
            system.prefetch(addr, now, pc=9)
        now += 37.0
        assert system.inflight() <= 4
    c = counters
    assert c.l1_hits + c.l1_misses == c.loads + 0 or True  # loads counted by engine
    assert c.offcore_all_data_rd >= c.offcore_demand_data_rd
    assert (
        c.sw_prefetch_useful
        + c.sw_prefetch_early_evicted
        <= c.sw_prefetch_issued
    )
    assert (
        c.sw_prefetch_redundant
        + c.sw_prefetch_dropped_mshr
        + c.sw_prefetch_dropped_unmapped
        <= c.sw_prefetch_issued
    )
    assert PerfStat(c).sw_prefetch_memory_reads >= 0


# ----------------------------------------------------------------------
# Distribution analysis and the analytical models
# ----------------------------------------------------------------------
@FAST
@given(
    st.lists(st.integers(min_value=1, max_value=2000), min_size=0, max_size=400)
)
def test_distribution_peaks_inside_data_range(latencies):
    distribution = analyze_latency_distribution(latencies)
    assert distribution.mc_latency >= 0
    if latencies:
        top = max(latencies)
        for peak in distribution.peaks:
            assert 0 <= peak <= top + distribution.bin_width
    estimate = optimal_distance(distribution)
    assert MIN_DISTANCE <= estimate.distance <= MAX_DISTANCE


@FAST
@given(
    st.integers(min_value=2, max_value=200),
    st.integers(min_value=100, max_value=3000),
)
def test_eq1_distance_formula(ic, miss):
    d = analyze_latency_distribution([ic] * 100 + [ic + miss] * 100)
    estimate = optimal_distance(d)
    if estimate.reliable and MIN_DISTANCE < estimate.distance < MAX_DISTANCE:
        # ceil(mc/ic) (unless clamped at the range ends).
        expected = estimate.mc_latency / max(estimate.ic_latency, 1)
        assert abs(estimate.distance - expected) <= 1.0


@FAST
@given(
    st.floats(min_value=0.1, max_value=10_000),
    st.integers(min_value=1, max_value=256),
    st.floats(min_value=1.01, max_value=50),
)
def test_eq2_site_decision_total(trip, distance, k):
    decision = choose_injection_site(trip, distance, k=k)
    expected = (
        InjectionSite.OUTER if trip < k * distance else InjectionSite.INNER
    )
    assert decision.site is expected


# ----------------------------------------------------------------------
# Differential engine testing on randomized straight-line+loop programs
# ----------------------------------------------------------------------
@st.composite
def random_program(draw):
    """A random single-loop program mixing ALU ops, loads, and stores."""
    n = draw(st.integers(min_value=1, max_value=30))
    ops = draw(
        st.lists(
            st.sampled_from(
                ["add", "sub", "mul", "and", "or", "xor", "min", "max",
                 "load", "store", "prefetch", "work"]
            ),
            min_size=1,
            max_size=12,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return n, ops, seed


def build_random_module(n, ops, seed):
    import random as _random

    rng = _random.Random(seed)
    space = AddressSpace()
    seg = space.allocate(
        "d", [rng.randrange(256) for _ in range(512)], elem_size=8
    )
    module = Module("rand")
    b = IRBuilder(module)
    b.function("main")
    entry, loop, done = b.blocks("entry", "loop", "done")
    b.at(entry)
    b.jmp(loop)
    b.at(loop)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 1)], name="acc")
    masked = b.and_(acc, 511, name=None)
    addr = b.gep(seg.base, masked, 8)
    value = acc
    for op in ops:
        if op == "load":
            value = b.load(addr)
        elif op == "store":
            b.store(addr, value)
        elif op == "prefetch":
            b.prefetch(addr)
        elif op == "work":
            b.work(3)
        elif op == "add":
            value = b.add(value, i)
        elif op == "sub":
            value = b.sub(value, 1)
        elif op == "mul":
            value = b.mul(value, 3)
        elif op == "and":
            value = b.and_(value, 0xFFFF)
        elif op == "or":
            value = b.or_(value, 1)
        elif op == "xor":
            value = b.xor(value, i)
        elif op == "min":
            value = b.min(value, 99_999)
        elif op == "max":
            value = b.max(value, 0)
    acc2 = b.add(value, 1, name="acc2")
    i2 = b.add(i, 1, name="i2")
    b.add_incoming(i, loop, i2)
    b.add_incoming(acc, loop, acc2)
    cond = b.lt(i2, n, name="cond")
    b.br(cond, loop, done)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    verify_module(module)
    return module, space


@settings(max_examples=25, deadline=None)
@given(random_program())
def test_random_programs_engines_agree(program):
    n, ops, seed = program
    module, _ = build_random_module(n, ops, seed)
    results = {}
    for engine in ENGINES:
        _, space = build_random_module(n, ops, seed)
        machine = Machine(module, space, engine=engine)
        machine.enable_profiling(period=97)
        results[engine] = machine.run("main")
    a = results["reference"]
    for engine in ENGINES:
        b = results[engine]
        assert a.value == b.value, engine
        assert a.counters.as_dict() == b.counters.as_dict(), engine


@settings(max_examples=20, deadline=None)
@given(random_program())
def test_random_programs_printer_parser_roundtrip(program):
    """format -> parse -> format is a fixpoint and execution-equivalent."""
    from repro.ir.parser import parse_module
    from repro.ir.printer import format_module

    n, ops, seed = program
    module, _ = build_random_module(n, ops, seed)
    text = format_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert format_module(reparsed) == text

    _, space_a = build_random_module(n, ops, seed)
    _, space_b = build_random_module(n, ops, seed)
    original = Machine(module, space_a).run("main")
    restored = Machine(reparsed, space_b).run("main")
    assert restored.value == original.value
    assert restored.counters.as_dict() == original.counters.as_dict()


@settings(max_examples=20, deadline=None)
@given(random_program())
def test_random_programs_cleanup_preserves_semantics(program):
    """CSE+DCE on random programs: same value, never more instructions."""
    from repro.passes.cleanup import cleanup_module

    n, ops, seed = program
    module, _ = build_random_module(n, ops, seed)
    _, space_a = build_random_module(n, ops, seed)
    original = Machine(module, space_a).run("main")

    module2, _ = build_random_module(n, ops, seed)
    cleanup_module(module2)
    verify_module(module2, strict=True)
    _, space_b = build_random_module(n, ops, seed)
    cleaned = Machine(module2, space_b).run("main")
    assert cleaned.value == original.value
    assert (
        cleaned.counters.instructions <= original.counters.instructions
    )
