"""Tests for graph generators and the dataset catalog (Table 4 analog)."""

import pytest

from repro.workloads.graphs import (
    CATALOG,
    dataset,
    power_law_graph,
    rmat_graph,
    road_graph,
    synthetic_dataset,
    uniform_graph,
)


def check_csr(graph):
    assert len(graph.row) == graph.n + 1
    assert graph.row[0] == 0
    assert graph.row[-1] == graph.m
    assert all(a <= b for a, b in zip(graph.row, graph.row[1:]))
    assert all(0 <= v < graph.n for v in graph.col)


class TestGenerators:
    def test_uniform_degree(self):
        graph = uniform_graph(1000, 4.0, seed=1)
        check_csr(graph)
        assert graph.avg_degree == pytest.approx(4.0, rel=0.1)

    def test_power_law_skew(self):
        graph = power_law_graph(2000, 6.0, seed=2)
        check_csr(graph)
        assert graph.avg_degree == pytest.approx(6.0, rel=0.25)
        degrees = sorted(
            (graph.out_degree(u) for u in range(graph.n)), reverse=True
        )
        # Heavy tail: the top vertex far exceeds the average.
        assert degrees[0] > 4 * graph.avg_degree

    def test_road_low_degree_high_locality(self):
        graph = road_graph(2500, seed=3)
        check_csr(graph)
        assert graph.avg_degree < 2.5
        # Most edges connect nearby vertex ids (grid structure).
        local = sum(
            1
            for u in range(graph.n)
            for j in range(graph.row[u], graph.row[u + 1])
            if abs(graph.col[j] - u) <= 51
        )
        assert local / max(graph.m, 1) > 0.9

    def test_rmat_shape(self):
        graph = rmat_graph(scale=8, edgefactor=4, seed=4)
        check_csr(graph)
        assert graph.n == 256
        assert graph.m == 1024
        degrees = sorted(
            (graph.out_degree(u) for u in range(graph.n)), reverse=True
        )
        assert degrees[0] > 3 * graph.avg_degree  # skewed

    def test_determinism(self):
        a = uniform_graph(500, 3.0, seed=9)
        b = uniform_graph(500, 3.0, seed=9)
        assert a.col == b.col
        c = uniform_graph(500, 3.0, seed=10)
        assert a.col != c.col


class TestCatalog:
    def test_all_entries_build(self):
        for name, entry in CATALOG.items():
            graph = entry.build()
            check_csr(graph)
            assert graph.n == entry.vertices
            if entry.kind != "road":
                assert graph.avg_degree == pytest.approx(
                    entry.avg_degree, rel=0.3
                )

    def test_table4_metadata_preserved(self):
        wg = dataset("web-Google")
        assert wg.original_vertices == 875_713
        assert wg.original_edges == 5_105_039
        ca = dataset("roadNet-CA")
        assert ca.original_vertices == 1_965_206

    def test_eight_table4_datasets(self):
        assert len(CATALOG) == 8

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset("web-Unknown")

    def test_synthetic_dataset(self):
        entry = synthetic_dataset(1000, 8, seed=5)
        graph = entry.build()
        check_csr(graph)
        assert graph.n == 1000
        assert "synth" in entry.name
