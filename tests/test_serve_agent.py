"""Unit tests for the agent worker loop (repro.serve.agent)."""

from __future__ import annotations

import json
import os
import threading

import pytest

import repro.api as api
from repro.service.api import TuningService
from repro.service.metrics import MetricsRegistry
from repro.serve.agent import AgentWorker, default_agent_id, metrics_dir
from repro.serve.queue import JobQueue


def _submit(queue: JobQueue, request) -> str:
    record, _ = queue.submit(type(request).__name__, request.to_payload())
    return record.id


@pytest.fixture()
def queue_dir(tmp_path):
    return tmp_path / "q"


@pytest.fixture()
def worker(queue_dir) -> AgentWorker:
    return AgentWorker(queue_dir, poll_interval=0.01)


class TestRunOne:
    def test_executes_a_job_to_done(self, worker):
        request = api.RunRequest(workload="micro-tiny", scale="tiny")
        job_id = _submit(worker.queue, request)
        assert worker.run_one()
        final = worker.queue.get(job_id)
        assert final.state == "done"
        result = api.result_from_payload(final.result)
        assert isinstance(result, api.RunResult)
        assert result.workload == "micro-tiny"

    def test_result_matches_direct_execute(self, worker):
        request = api.ProfileRequest(workload="micro-tiny", scale="tiny")
        job_id = _submit(worker.queue, request)
        worker.run_one()
        served = worker.queue.get(job_id).result
        direct = api.execute(request, service=TuningService())
        assert direct.to_json() == json.dumps(served, sort_keys=True)

    def test_empty_queue_is_a_noop(self, worker):
        assert not worker.run_one()

    def test_second_run_hits_the_artifact_cache(self, worker):
        request = api.ProfileRequest(workload="micro-tiny", scale="tiny")
        _submit(worker.queue, request)
        worker.run_one()
        misses = worker.metrics.get("cache.misses") or 0
        # Same request under a fresh dedup-free job: pure cache hit.
        _submit(worker.queue, request)
        worker.run_one()
        assert (worker.metrics.get("cache.misses") or 0) == misses
        assert (worker.metrics.get("cache.hits") or 0) >= 1


class TestFailures:
    def test_bad_request_retries_then_parks_failed(self, queue_dir):
        worker = AgentWorker(queue_dir, poll_interval=0.01)
        record, _ = worker.queue.submit(
            "RunRequest",
            {"kind": "RunRequest", "v": 1, "workload": "no-such-workload"},
            max_attempts=2,
        )
        assert worker.run_one()
        mid = worker.queue.get(record.id)
        assert mid.state == "queued"  # retry with backoff scheduled
        assert mid.attempts == 1
        assert mid.error  # traceback preserved

        # The retry is behind the backoff window; wait it out.
        deadline = __import__("time").monotonic() + 10.0
        while not worker.run_one():
            assert __import__("time").monotonic() < deadline
            __import__("time").sleep(0.05)
        final = worker.queue.get(record.id)
        assert final.state == "failed"
        assert "no-such-workload" in final.error

    def test_unparseable_payload_fails_cleanly(self, worker):
        record, _ = worker.queue.submit("X", {"kind": "NotARequest"})
        assert worker.run_one()
        final = worker.queue.get(record.id)
        assert final.state in ("queued", "failed")  # retried, not crashed
        assert "NotARequest" in final.error


class TestMetricsPublishing:
    def test_snapshot_file_written_after_each_job(self, worker, queue_dir):
        _submit(
            worker.queue, api.RunRequest(workload="micro-tiny", scale="tiny")
        )
        worker.run_one()
        path = metrics_dir(queue_dir) / f"metrics-{os.getpid()}.json"
        assert path.exists()
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"].get("serve.claimed") == 1
        assert snapshot["histograms"]["serve.job_seconds"]["count"] == 1

    def test_agent_never_writes_shared_metrics_json(self, worker, queue_dir):
        _submit(
            worker.queue, api.RunRequest(workload="micro-tiny", scale="tiny")
        )
        worker.run_one()
        # auto_flush=False keeps the shared cumulative file untouched;
        # only the controller folds snapshots into it.
        assert not (queue_dir / "cache" / "metrics.json").exists()


class TestLeaseHandoff:
    def test_lapsed_job_is_reclaimed_by_a_sibling(self, queue_dir):
        """A worker that stops heartbeating (SIGKILL-shaped) loses the
        job to whichever sibling claims after the lease lapses."""
        clock = {"now": 1000.0}
        queue = JobQueue(
            queue_dir, lease=5.0, backoff=0.1, clock=lambda: clock["now"]
        )
        request = api.RunRequest(workload="micro-tiny", scale="tiny")
        record, _ = queue.submit(type(request).__name__, request.to_payload())

        dead = queue.claim("agent-dead")
        assert dead.id == record.id
        clock["now"] += 6.0  # lease lapses, backoff window passes
        assert queue.requeue_lapsed() == 1
        clock["now"] += 1.0

        survivor = AgentWorker(
            queue_dir, agent_id="agent-live", poll_interval=0.01
        )
        # The survivor shares the durable queue but runs on real time;
        # the sqlite rows written under the fake clock are still visible.
        assert survivor.run_one()
        final = survivor.queue.get(record.id)
        assert final.state == "done"
        # The dead agent's stale completion is rejected.
        assert not queue.complete(record.id, "agent-dead", {"stale": True})
        assert final.result != {"stale": True}


class TestRunForever:
    def test_drains_until_max_jobs(self, worker):
        for scheme in ("baseline", "apt-get"):
            _submit(
                worker.queue,
                api.RunRequest(
                    workload="micro-tiny", scale="tiny", scheme=scheme
                ),
            )
        executed = worker.run_forever(max_jobs=2)
        assert executed == 2
        assert worker.queue.stats()["by_state"]["done"] == 2

    def test_stop_event_ends_the_loop(self, worker):
        stop = threading.Event()
        thread = threading.Thread(
            target=worker.run_forever, kwargs={"stop": stop}, daemon=True
        )
        thread.start()
        stop.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()


def test_default_agent_id_is_unique_per_process():
    agent_id = default_agent_id()
    assert agent_id.startswith("agent-")
    assert agent_id.endswith(f"-{os.getpid()}")


def test_worker_accepts_injected_service_and_metrics(queue_dir, tmp_path):
    metrics = MetricsRegistry()
    service = TuningService(cache_dir=tmp_path / "c", metrics=metrics,
                            auto_flush=False)
    worker = AgentWorker(queue_dir, metrics=metrics, service=service)
    assert worker.service is service
    assert worker.metrics is metrics
    assert worker.queue.metrics is metrics
