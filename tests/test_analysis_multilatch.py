"""Loops with multiple latches (continue-style CFGs) and related edges."""

from repro.analysis.loops import find_loops, induction_variables, loop_bound
from repro.core.distribution import iteration_latencies
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace


def build_continue_loop():
    """for i < 200: if (i & 1) continue; acc += i  — two back edges."""
    module = Module("cont")
    b = IRBuilder(module)
    b.function("main")
    entry, header, even, latch_skip, done = b.blocks(
        "entry", "header", "even", "latch_skip", "done"
    )
    b.at(entry)
    b.jmp(header)
    b.at(header)
    i = b.phi([(entry, 0)], name="i")
    acc = b.phi([(entry, 0)], name="acc")
    odd = b.and_(i, 1, name="odd")
    b.br(odd, latch_skip, even)

    b.at(even)
    acc2 = b.add(acc, i, name="acc2")
    i2 = b.add(i, 1, name="i2")
    cond = b.lt(i2, 200, name="cond")
    b.br(cond, header, done)

    b.at(latch_skip)
    i3 = b.add(i, 1, name="i3")
    cond2 = b.lt(i3, 200, name="cond2")
    b.br(cond2, header, done)

    b.add_incoming(i, even, i2)
    b.add_incoming(acc, even, acc2)
    b.add_incoming(i, latch_skip, i3)
    b.add_incoming(acc, latch_skip, acc)
    b.at(done)
    b.ret(acc2)
    module.finalize()
    verify_module(module)
    return module


class TestMultiLatchLoops:
    def test_two_latches_merged_into_one_loop(self):
        module = build_continue_loop()
        function = module.function("main")
        loops = find_loops(function)
        assert len(loops) == 1
        loop = loops[0]
        assert sorted(loop.latches) == ["even", "latch_skip"]
        assert loop.body == {"header", "even", "latch_skip"}
        assert len(loop.latch_branch_pcs()) == 2

    def test_induction_variable_rejected_on_conflicting_updates(self):
        # i is updated by two *different* add instructions (i2 vs i3), so
        # the conservative detector must not claim it.
        module = build_continue_loop()
        function = module.function("main")
        loop = find_loops(function)[0]
        registers = {iv.register for iv in induction_variables(function, loop)}
        assert "i" not in registers

    def test_executes_correctly(self):
        module = build_continue_loop()
        result = Machine(module, AddressSpace()).run("main")
        assert result.value == sum(i for i in range(200) if i % 2 == 0)

    def test_latency_measurement_uses_both_latches(self):
        module = build_continue_loop()
        machine = Machine(module, AddressSpace())
        machine.enable_profiling(period=40)
        machine.run("main")
        loop = find_loops(module.function("main"))[0]
        latencies = iteration_latencies(
            machine.sampler.samples, loop.latch_branch_pcs()
        )
        assert latencies
        # Every iteration is short ALU work: single tight mode.
        assert max(latencies) < 30


class TestSharedHeaderLoops:
    def test_nested_with_shared_exit_block(self, nested_indirect):
        module, _, _ = nested_indirect
        function = module.function("main")
        loops = find_loops(function)
        inner = next(l for l in loops if l.header == "inner_h")
        outer = next(l for l in loops if l.header == "outer_h")
        bound_iv = induction_variables(function, inner)[0]
        assert loop_bound(function, inner, bound_iv) is not None
        assert outer.preheader() == "entry"
