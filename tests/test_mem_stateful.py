"""Stateful property tests of the memory hierarchy's demand fast path.

Two hypothesis state machines drive random ``load`` / ``store`` /
``prefetch`` / ``flush`` interleavings at a monotone clock against the
stacked L1/L2/LLC fast path (:mod:`repro.mem.fastpath`):

* :class:`MemModelMachine` checks the fast path against an
  *independent* pure-Python model cache — three LRU set-view levels,
  an in-order MSHR and a prefetched-but-unused side table reimplemented
  from the documented semantics, not from the code under test.  Every
  step must return the model's latency, and every step must leave the
  views, the MSHR and the side table exactly equal to the model's
  (hardware prefetchers are disabled so the model stays honest).

* :class:`MemDifferentialMachine` drives the same operation sequence
  through the fast path of one hierarchy and the slow
  :class:`~repro.mem.hierarchy.MemorySystem` path of a twin — hardware
  prefetchers *enabled* — and requires bit-identical latencies, PMU
  counters, resident lines, MSHR contents and unused tables.

Shared invariants: ``front().scan_consistent()`` (views == fresh
structural scan), MSHR occupancy never exceeds ``mshr_entries``, MSHR
ready-cycles are nondecreasing in insertion order (the prefix-drain
contract ``drain()`` documents), in-flight lines are resident nowhere,
and every prefetched-unused line is still LLC-resident (inclusive
back-invalidation must pop the side table).
"""

from __future__ import annotations

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.machine.pmu import Counters
from repro.mem.address import AddressSpace
from repro.mem.config import CacheConfig, MemoryConfig
from repro.mem.hierarchy import MemorySystem

#: Data segment: 32 lines — twice the LLC below, so capacity evictions
#: and inclusive back-invalidations happen constantly.
POOL_ELEMS = 256
ELEM_SIZE = 8

PCS = (0x40, 0x48, 0x50, 0x58)


def stateful_memory(**overrides) -> MemoryConfig:
    """A deliberately tiny hierarchy: 4-line L1, 8-line L2, 16-line LLC,
    4 MSHRs — every structural edge (set conflict, LLC eviction, MSHR
    full, coalesced fill) is reachable within a short rule sequence."""
    defaults = dict(
        l1=CacheConfig("L1D", 256, 2, 2),
        l2=CacheConfig("L2", 512, 2, 6),
        llc=CacheConfig("LLC", 1024, 4, 20),
        dram_latency=100,
        mshr_entries=4,
    )
    defaults.update(overrides)
    return MemoryConfig(**defaults)


def make_space() -> AddressSpace:
    space = AddressSpace()
    space.allocate("data", [0] * POOL_ELEMS, elem_size=ELEM_SIZE)
    return space


# ----------------------------------------------------------------------
# The independent model
# ----------------------------------------------------------------------
class ModelLevel:
    """One LRU set-view level: dict-ordered sets, evict-first-on-full."""

    def __init__(self, config: CacheConfig):
        self.assoc = config.associativity
        self.mask = config.sets - 1
        self.sets = [dict() for _ in range(config.sets)]

    def lookup(self, line: int) -> bool:
        """Hit test that refreshes LRU, like SetAssociativeCache.lookup."""
        s = self.sets[line & self.mask]
        if line not in s:
            return False
        s.pop(line)
        s[line] = True
        return True

    def contains(self, line: int) -> bool:
        return line in self.sets[line & self.mask]

    def insert(self, line: int, on_evict=None) -> None:
        s = self.sets[line & self.mask]
        if s.pop(line, None) is not None:
            s[line] = True
            return
        if len(s) >= self.assoc:
            victim = next(iter(s))
            del s[victim]
            if on_evict is not None:
                on_evict(victim)
        s[line] = True

    def invalidate(self, line: int) -> None:
        self.sets[line & self.mask].pop(line, None)

    def lines(self) -> list[int]:
        return [line for s in self.sets for line in s]

    def flush(self) -> None:
        for s in self.sets:
            s.clear()


class ModelHierarchy:
    """The documented slow-path semantics, reimplemented from scratch
    (no hardware prefetchers, no tracing, no ideal mode)."""

    def __init__(self, config: MemoryConfig, space: AddressSpace):
        self.config = config
        self.space = space
        self.l1 = ModelLevel(config.l1)
        self.l2 = ModelLevel(config.l2)
        self.llc = ModelLevel(config.llc)
        self.mshr: dict[int, list] = {}
        self.unused: dict[int, bool] = {}
        self.l1_lat = config.l1.latency
        self.l2_lat = config.l2.latency
        self.llc_lat = config.llc.latency
        self.mem_lat = config.llc.latency + config.dram_latency

    # -- internals ------------------------------------------------------
    def _on_llc_evict(self, line: int) -> None:
        # Inclusive hierarchy: an LLC victim leaves every level, and a
        # prefetched line evicted before first use leaves the side table.
        self.l1.invalidate(line)
        self.l2.invalidate(line)
        self.unused.pop(line, None)

    def _fill(self, line: int) -> None:
        self.llc.insert(line, on_evict=self._on_llc_evict)
        self.l2.insert(line)
        self.l1.insert(line)

    def _drain(self, now: float) -> None:
        while self.mshr:
            line = next(iter(self.mshr))
            ready, software = self.mshr[line]
            if ready > now:
                return
            del self.mshr[line]
            self._fill(line)
            self.unused[line] = software

    def _consume(self, line: int) -> None:
        self.unused.pop(line, None)

    # -- operations -----------------------------------------------------
    def load(self, addr: int, now: float) -> int:
        line = addr >> 6
        if self.l1.lookup(line):
            self._consume(line)
            return self.l1_lat
        self._drain(now)
        if self.l1.lookup(line):
            self._consume(line)
            return self.l1_lat
        if self.l2.lookup(line):
            self._consume(line)
            self.l1.insert(line)
            return self.l2_lat
        if self.llc.lookup(line):
            self._consume(line)
            self.l2.insert(line)
            self.l1.insert(line)
            return self.llc_lat
        entry = self.mshr.pop(line, None)
        if entry is not None:
            self._fill(line)
            return max(max(entry[0] - now, 0), self.l1_lat)
        self._fill(line)
        return self.mem_lat

    def store(self, addr: int, now: float) -> int:
        line = addr >> 6
        if self.l1.lookup(line):
            self._consume(line)
            return 1
        self._drain(now)
        self._consume(line)
        if self.mshr.pop(line, None) is not None:
            self._fill(line)
            return 1
        self.llc.lookup(line)  # refresh LRU if present
        self._fill(line)
        return 1

    def prefetch(self, addr: int, now: float) -> None:
        if not self.space.is_mapped(addr):
            return
        self._drain(now)
        line = addr >> 6
        if (
            self.l1.contains(line)
            or self.l2.contains(line)
            or self.llc.contains(line)
            or line in self.mshr
        ):
            return
        if len(self.mshr) >= self.config.mshr_entries:
            return
        self.mshr[line] = [now + self.mem_lat, True]

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()
        self.mshr.clear()
        self.unused.clear()

    def lines(self) -> dict:
        return {"l1": self.l1.lines(), "l2": self.l2.lines(),
                "llc": self.llc.lines()}


# ----------------------------------------------------------------------
# Machine 1: fast path vs the independent model
# ----------------------------------------------------------------------
class MemModelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.space = make_space()
        config = stateful_memory(
            stride_prefetcher=False, next_line_prefetcher=False
        )
        self.mem = MemorySystem(config, self.space, Counters())
        self.front = self.mem.front()
        self.model = ModelHierarchy(config, self.space)
        self.now = 0.0
        segment = self.space.segment("data")
        self.base = segment.base
        self.unmapped = self.base + POOL_ELEMS * ELEM_SIZE + (1 << 20)

    def _addr(self, idx: int) -> int:
        return self.base + idx * ELEM_SIZE

    @rule(idx=st.integers(0, POOL_ELEMS - 1), pc=st.sampled_from(PCS))
    def load(self, idx, pc):
        addr = self._addr(idx)
        got = self.front.load(addr, self.now, pc)
        want = self.model.load(addr, self.now)
        assert got == want, f"load latency {got} != model {want}"

    @rule(idx=st.integers(0, POOL_ELEMS - 1), pc=st.sampled_from(PCS))
    def store(self, idx, pc):
        addr = self._addr(idx)
        got = self.front.store(addr, self.now, pc)
        want = self.model.store(addr, self.now)
        assert got == want

    @rule(idx=st.integers(0, POOL_ELEMS - 1), pc=st.sampled_from(PCS))
    def prefetch(self, idx, pc):
        addr = self._addr(idx)
        self.front.prefetch(addr, self.now, pc)
        self.model.prefetch(addr, self.now)

    @rule(pc=st.sampled_from(PCS))
    def prefetch_unmapped(self, pc):
        before = dict(self.mem._mshr)
        self.front.prefetch(self.unmapped, self.now, pc)
        self.model.prefetch(self.unmapped, self.now)
        assert self.mem._mshr == before  # dropped, never issued

    @rule(delta=st.integers(1, 400))
    def tick(self, delta):
        self.now += delta

    @rule()
    def flush(self):
        self.mem.flush()
        self.model.flush()

    @invariant()
    def views_match_model(self):
        assert self.front.view_lines() == self.model.lines()

    @invariant()
    def views_match_structural_scan(self):
        assert self.front.scan_consistent()

    @invariant()
    def mshr_matches_model(self):
        assert self.mem._mshr == self.model.mshr
        assert self.mem.prefetched_unused_view() == self.model.unused

    @invariant()
    def mshr_invariants(self):
        mshr = self.mem._mshr
        assert len(mshr) <= self.mem.config.mshr_entries
        ready_order = [entry[0] for entry in mshr.values()]
        assert ready_order == sorted(ready_order)  # prefix-drain contract
        resident = set()
        for level in self.front.view_lines().values():
            resident.update(level)
        assert not (set(mshr) & resident)  # in flight => resident nowhere

    @invariant()
    def unused_lines_are_llc_resident(self):
        llc = set(self.front.view_lines()["llc"])
        assert set(self.mem.prefetched_unused_view()) <= llc


# ----------------------------------------------------------------------
# Machine 2: fast path vs the slow path, hardware prefetchers on
# ----------------------------------------------------------------------
class MemDifferentialMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.space = make_space()
        config = stateful_memory()  # stride + next-line prefetchers on
        self.fast_mem = MemorySystem(config, self.space, Counters())
        self.fast = self.fast_mem.front()
        self.slow = MemorySystem(config, self.space, Counters())
        self.now = 0.0
        self.base = self.space.segment("data").base

    def _addr(self, idx: int) -> int:
        return self.base + idx * ELEM_SIZE

    @rule(idx=st.integers(0, POOL_ELEMS - 1), pc=st.sampled_from(PCS))
    def load(self, idx, pc):
        addr = self._addr(idx)
        got = self.fast.load(addr, self.now, pc)
        want = self.slow.load(addr, self.now, pc)
        assert got == want

    @rule(idx=st.integers(0, POOL_ELEMS - 1), pc=st.sampled_from(PCS))
    def store(self, idx, pc):
        addr = self._addr(idx)
        assert self.fast.store(addr, self.now, pc) == self.slow.store(
            addr, self.now, pc
        )

    @rule(idx=st.integers(0, POOL_ELEMS - 1), pc=st.sampled_from(PCS))
    def prefetch(self, idx, pc):
        addr = self._addr(idx)
        self.fast.prefetch(addr, self.now, pc)
        self.slow.prefetch(addr, self.now, pc)

    @rule(delta=st.integers(1, 400))
    def tick(self, delta):
        self.now += delta

    @rule()
    def flush(self):
        self.fast_mem.flush()
        self.slow.flush()

    @invariant()
    def counters_identical(self):
        assert (
            self.fast_mem.counters.as_dict() == self.slow.counters.as_dict()
        )

    @invariant()
    def structures_identical(self):
        assert self.fast.view_lines() == {
            "l1": self.slow.l1.resident_lines(),
            "l2": self.slow.l2.resident_lines(),
            "llc": self.slow.llc.resident_lines(),
        }
        assert self.fast_mem._mshr == self.slow._mshr
        assert (
            self.fast_mem.prefetched_unused_view()
            == self.slow.prefetched_unused_view()
        )

    @invariant()
    def fast_views_scan_consistent(self):
        assert self.fast.scan_consistent()


TestMemModel = MemModelMachine.TestCase
TestMemDifferential = MemDifferentialMachine.TestCase
