"""Unit tests for the durable job queue (repro.serve.queue)."""

from __future__ import annotations

import pytest

from repro.service.metrics import MetricsRegistry
from repro.serve.queue import JobQueue, QueueFull


class Clock:
    """A manually advanced clock injected into the queue under test."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock() -> Clock:
    return Clock()


@pytest.fixture()
def queue(tmp_path, clock) -> JobQueue:
    return JobQueue(
        tmp_path / "q",
        lease=10.0,
        max_attempts=3,
        backoff=1.0,
        clock=clock,
        metrics=MetricsRegistry(),
    )


REQ = {"kind": "RunRequest", "v": 1, "workload": "micro-tiny"}


class TestLifecycle:
    def test_submit_claim_start_complete(self, queue):
        record, deduped = queue.submit("RunRequest", REQ, dedup_key="k")
        assert record.state == "queued" and not deduped
        assert record.attempts == 0

        job = queue.claim("a1")
        assert job.id == record.id
        assert job.state == "claimed"
        assert job.attempts == 1
        assert job.agent == "a1"

        assert queue.start(job.id, "a1")
        assert queue.get(job.id).state == "running"

        assert queue.complete(job.id, "a1", {"ok": True})
        final = queue.get(job.id)
        assert final.state == "done"
        assert final.result == {"ok": True}
        assert final.error is None

    def test_claim_order_is_fifo(self, queue, clock):
        first, _ = queue.submit("X", REQ, dedup_key="k1")
        clock.advance(1.0)
        second, _ = queue.submit("X", REQ, dedup_key="k2")
        assert queue.claim("a").id == first.id
        assert queue.claim("a").id == second.id
        assert queue.claim("a") is None

    def test_request_payload_round_trips(self, queue):
        record, _ = queue.submit("RunRequest", REQ, dedup_key="k")
        assert queue.get(record.id).request == REQ


class TestDedup:
    def test_duplicate_submission_dedups_to_one_job(self, queue):
        record, deduped = queue.submit("X", REQ, dedup_key="same")
        again, deduped2 = queue.submit("X", REQ, dedup_key="same")
        assert not deduped and deduped2
        assert again.id == record.id
        assert queue.stats()["total"] == 1

    def test_done_job_dedups_with_result_available(self, queue):
        record, _ = queue.submit("X", REQ, dedup_key="same")
        job = queue.claim("a")
        queue.complete(job.id, "a", {"value": 7})
        again, deduped = queue.submit("X", REQ, dedup_key="same")
        assert deduped and again.state == "done"
        assert again.result == {"value": 7}

    def test_terminal_failure_is_revived_by_resubmit(self, queue, clock):
        record, _ = queue.submit("X", REQ, dedup_key="same", max_attempts=1)
        job = queue.claim("a")
        assert queue.fail(job.id, "a", "boom") == "failed"
        revived, deduped = queue.submit("X", REQ, dedup_key="same")
        assert not deduped
        assert revived.id == record.id
        assert revived.state == "queued"
        assert revived.attempts == 0
        assert revived.error is None

    def test_no_dedup_key_means_distinct_jobs(self, queue):
        a, _ = queue.submit("X", REQ)
        b, _ = queue.submit("X", REQ)
        assert a.id != b.id
        assert queue.stats()["total"] == 2


class TestRetryAndBackoff:
    def test_fail_requeues_with_backoff(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        assert queue.fail(job.id, "a", "transient") == "queued"
        # Still inside the backoff window: not claimable.
        assert queue.claim("a") is None
        clock.advance(1.5)
        retry = queue.claim("a")
        assert retry.id == job.id
        assert retry.attempts == 2
        assert retry.error == "transient"  # last error kept for debugging

    def test_backoff_doubles_per_attempt(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        queue.fail(job.id, "a", "e1")
        assert queue.get(job.id).not_before == pytest.approx(clock.now + 1.0)
        clock.advance(2.0)
        job = queue.claim("a")
        queue.fail(job.id, "a", "e2")
        assert queue.get(job.id).not_before == pytest.approx(clock.now + 2.0)

    def test_attempt_budget_exhaustion_parks_failed(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k", max_attempts=2)
        for _ in range(2):
            clock.advance(10.0)
            job = queue.claim("a")
            assert job is not None
            state = queue.fail(job.id, "a", "boom")
        assert state == "failed"
        final = queue.get(job.id)
        assert final.state == "failed"
        assert final.error == "boom"
        clock.advance(100.0)
        assert queue.claim("a") is None


class TestLeases:
    def test_lapsed_lease_is_reaped_on_claim(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("dead-agent")
        queue.start(job.id, "dead-agent")
        # Nobody heartbeats; the lease lapses.  The next claim reaps
        # the job back to queued (with a retry backoff), and the claim
        # after the backoff picks it up.
        clock.advance(12.0)
        assert queue.claim("live-agent") is None
        assert queue.get(job.id).state == "queued"
        clock.advance(1.5)
        reclaimed = queue.claim("live-agent")
        assert reclaimed.id == job.id
        assert reclaimed.agent == "live-agent"
        assert reclaimed.attempts == 2

    def test_heartbeat_extends_the_lease(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        for _ in range(5):
            clock.advance(8.0)
            assert queue.heartbeat(job.id, "a")
        # Kept alive far past the original lease.
        assert queue.claim("b") is None
        assert queue.get(job.id).state == "claimed"

    def test_zombie_agent_cannot_clobber_the_new_owner(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("zombie")
        clock.advance(12.0)
        queue.requeue_lapsed()
        clock.advance(1.5)
        assert queue.claim("owner").id == job.id
        assert not queue.heartbeat(job.id, "zombie")
        assert not queue.complete(job.id, "zombie", {"stale": True})
        assert queue.fail(job.id, "zombie", "stale") is None
        assert queue.complete(job.id, "owner", {"fresh": True})
        assert queue.get(job.id).result == {"fresh": True}

    def test_exhausted_lapse_parks_lost(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k", max_attempts=1)
        job = queue.claim("a")
        clock.advance(12.0)
        assert queue.requeue_lapsed() == 1
        final = queue.get(job.id)
        assert final.state == "lost"
        assert final.error == "lease expired"
        assert queue.metrics.get("serve.lost") == 1


class TestBackpressureAndDurability:
    def test_max_depth_rejects_with_queue_full(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", max_depth=2, clock=clock)
        queue.submit("X", REQ, dedup_key="k1")
        queue.submit("X", REQ, dedup_key="k2")
        with pytest.raises(QueueFull):
            queue.submit("X", REQ, dedup_key="k3")
        # Dedup onto an existing job is not new depth: still accepted.
        _, deduped = queue.submit("X", REQ, dedup_key="k1")
        assert deduped
        # Draining frees depth.
        job = queue.claim("a")
        queue.complete(job.id, "a", {})
        queue.submit("X", REQ, dedup_key="k3")

    def test_state_survives_reopen(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", clock=clock, lease=10.0)
        record, _ = queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        # A brand-new handle (fresh process after a crash) sees the
        # same committed state and can finish the job.
        reopened = JobQueue(tmp_path / "q", clock=clock, lease=10.0)
        seen = reopened.get(record.id)
        assert seen.state == "claimed"
        assert seen.agent == "a"
        assert reopened.complete(job.id, "a", {"v": 1})
        assert queue.get(record.id).state == "done"

    def test_stats_counts_by_state(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k1")
        queue.submit("X", REQ, dedup_key="k2")
        job = queue.claim("a")
        queue.complete(job.id, "a", {})
        stats = queue.stats()
        assert stats["by_state"]["queued"] == 1
        assert stats["by_state"]["done"] == 1
        assert stats["depth"] == 1
        assert stats["total"] == 2

    def test_claim_latency_histogram_observed(self, queue, clock):
        queue.submit("X", REQ, dedup_key="k")
        clock.advance(3.0)
        queue.claim("a")
        data = queue.metrics.get("serve.claim_seconds")
        assert data["count"] == 1
        assert data["min"] == pytest.approx(3.0)

    def test_list_jobs_filters(self, queue):
        queue.submit("X", REQ, dedup_key="k1")
        queue.submit("X", REQ, dedup_key="k2")
        queue.claim("a1")
        assert len(queue.list_jobs()) == 2
        assert len(queue.list_jobs(state="queued")) == 1
        mine = queue.list_jobs(agent="a1")
        assert len(mine) == 1 and mine[0].agent == "a1"


class TestPriority:
    def test_higher_priority_claims_first(self, queue, clock):
        low, _ = queue.submit("X", REQ, dedup_key="low", priority=0)
        clock.advance(1.0)
        high, _ = queue.submit("X", REQ, dedup_key="high", priority=5)
        assert queue.claim("a").id == high.id
        assert queue.claim("a").id == low.id

    def test_fifo_within_equal_priority(self, queue, clock):
        first, _ = queue.submit("X", REQ, dedup_key="k1", priority=3)
        clock.advance(1.0)
        second, _ = queue.submit("X", REQ, dedup_key="k2", priority=3)
        assert queue.claim("a").id == first.id
        assert queue.claim("a").id == second.id

    def test_dedup_hit_bumps_queued_priority(self, queue):
        record, _ = queue.submit("X", REQ, dedup_key="same", priority=0)
        again, deduped = queue.submit("X", REQ, dedup_key="same", priority=7)
        assert deduped and again.id == record.id
        assert again.priority == 7
        # A lower resubmit never demotes.
        again, _ = queue.submit("X", REQ, dedup_key="same", priority=2)
        assert again.priority == 7

    def test_revived_job_takes_new_priority(self, queue, clock):
        queue.submit("X", REQ, dedup_key="same", max_attempts=1, priority=9)
        job = queue.claim("a")
        assert queue.fail(job.id, "a", "boom") == "failed"
        revived, _ = queue.submit("X", REQ, dedup_key="same", priority=1)
        assert revived.state == "queued"
        assert revived.priority == 1


class TestCancellation:
    def test_cancel_queued_is_immediate(self, queue):
        record, _ = queue.submit("X", REQ, dedup_key="k")
        assert queue.cancel(record.id) == "cancelled"
        final = queue.get(record.id)
        assert final.state == "cancelled"
        assert queue.claim("a") is None
        assert queue.metrics.get("serve.cancelled") == 1

    def test_cancel_unknown_returns_none(self, queue):
        assert queue.cancel("no-such-job") is None

    def test_cancel_terminal_reports_state(self, queue):
        record, _ = queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        queue.complete(job.id, "a", {})
        assert queue.cancel(record.id) == "done"

    def test_cancel_running_lands_at_heartbeat(self, queue, clock):
        """Cancel-vs-running race: the flag is honored at the next
        heartbeat, and the agent's eventual complete is stale."""
        record, _ = queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        assert queue.start(job.id, "a")
        assert queue.cancel(record.id) == "cancelling"
        assert queue.get(record.id).state == "running"  # not yet honored
        assert not queue.heartbeat(job.id, "a")
        assert queue.get(record.id).state == "cancelled"
        assert not queue.complete(job.id, "a", {"late": True})
        assert queue.get(record.id).result is None

    def test_cancel_vs_claim_race(self, queue):
        """A cancel that lands between claim and start wins: start is
        refused, so the agent never burns the simulation."""
        record, _ = queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        assert queue.cancel(record.id) == "cancelling"
        assert not queue.start(job.id, "a")
        assert queue.get(record.id).state == "cancelled"

    def test_complete_beats_pending_cancel(self, queue):
        """A cancel that lands after the work finished keeps the result:
        finished work is never thrown away."""
        record, _ = queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        queue.start(job.id, "a")
        assert queue.cancel(record.id) == "cancelling"
        assert queue.complete(job.id, "a", {"v": 42})
        final = queue.get(record.id)
        assert final.state == "done"
        assert final.result == {"v": 42}
        assert not final.cancel_requested  # flag cleared, not latched

    def test_fail_honors_pending_cancel(self, queue):
        record, _ = queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        queue.start(job.id, "a")
        queue.cancel(record.id)
        assert queue.fail(job.id, "a", "boom") == "cancelled"
        assert queue.get(record.id).state == "cancelled"

    def test_reap_honors_pending_cancel(self, queue, clock):
        """A cancelled job whose agent died is parked cancelled by the
        reaper instead of being requeued for a retry nobody wants."""
        record, _ = queue.submit("X", REQ, dedup_key="k")
        job = queue.claim("a")
        queue.start(job.id, "a")
        queue.cancel(record.id)
        clock.advance(12.0)
        queue.requeue_lapsed()
        assert queue.get(record.id).state == "cancelled"

    def test_cancel_is_idempotent(self, queue):
        record, _ = queue.submit("X", REQ, dedup_key="k")
        assert queue.cancel(record.id) == "cancelled"
        assert queue.cancel(record.id) == "cancelled"
        assert queue.metrics.get("serve.cancelled") == 1

    def test_cancelled_revives_on_resubmit(self, queue):
        record, _ = queue.submit("X", REQ, dedup_key="same")
        queue.cancel(record.id)
        revived, deduped = queue.submit(
            "X", REQ, dedup_key="same", priority=4
        )
        assert not deduped
        assert revived.id == record.id
        assert revived.state == "queued"
        assert revived.priority == 4
        assert not revived.cancel_requested
