"""Golden test: the transformed microbenchmark inner loop must match the
paper's Listing 4 structurally — advanced induction value, select/min
clamp against INNER, cloned address slice, prefetch, original load kept.
"""

import re

from repro.ir.printer import format_function
from repro.ir.opcodes import Opcode
from repro.passes.ainsworth_jones import AinsworthJonesConfig, AinsworthJonesPass
from repro.workloads.micro import IndirectMicrobenchmark


def transformed_inner_text(distance=8, inner=256):
    workload = IndirectMicrobenchmark(
        inner=inner, outer=4, target_elems=1 << 12
    )
    module, _ = workload.build()
    AinsworthJonesPass(AinsworthJonesConfig(distance=distance)).run(module)
    function = module.function("main")
    text = format_function(function)
    start = text.index("\ninner_h:") + 1
    end = text.index("\nouter_latch:") + 1
    return module, text[start:end]


class TestListing4Shape:
    def test_transformed_loop_matches_listing4(self):
        module, inner_text = transformed_inner_text()
        lines = [line.strip() for line in inner_text.splitlines()[1:]]

        def line_index(pattern):
            for index, line in enumerate(lines):
                if re.search(pattern, line):
                    return index
            raise AssertionError(f"no line matching {pattern!r}:\n{inner_text}")

        # Listing 4 line 13: %9 = add %iv2, prefetch_distance
        advance = line_index(r"= add iv2, 8$")
        # Listing 4 lines 14-15: clamp against INNER (select/min form).
        clamp = line_index(r"= min .*255")
        # Listing 4 lines 16-21: cloned slice re-loads BI and re-computes
        # the T address.
        cloned_load = line_index(r"= load \[pf\.")
        prefetch = line_index(r"^0x[0-9a-f]+: prefetch \[")
        # Listing 4 line 23: the original demand load survives.
        original_load = line_index(r"t\.v = load")

        # Paper ordering: advance -> clamp -> slice -> prefetch -> load.
        assert advance < clamp < cloned_load < prefetch < original_load

    def test_clamp_prevents_out_of_range_index(self):
        # With INNER=256 and distance 8, the clamped index never exceeds
        # 255 — the functional property behind Listing 4's select.
        module, inner_text = transformed_inner_text()
        assert "min" in inner_text
        assert "255" in inner_text

    def test_exactly_one_prefetch_injected(self):
        module, inner_text = transformed_inner_text()
        function = module.function("main")
        prefetches = [
            inst
            for inst in function.instructions()
            if inst.op is Opcode.PREFETCH
        ]
        assert len(prefetches) == 1

    def test_original_instructions_untouched(self):
        workload = IndirectMicrobenchmark(inner=64, outer=4, target_elems=1 << 12)
        before_module, _ = workload.build()
        before = {
            (inst.op, inst.dst)
            for inst in before_module.function("main").instructions()
        }
        after_module, _ = transformed_inner_text(inner=64)[0], None
        after = {
            (inst.op, inst.dst)
            for inst in after_module.function("main").instructions()
            if inst.dst is None or not inst.dst.startswith("pf")
        }
        # Every original (op, dst) pair still exists post-injection.
        assert before <= after | before  # sanity
        missing = {
            pair
            for pair in before
            if pair not in after and pair[0] is not Opcode.PHI
        }
        assert not missing, missing
