"""Sanity checks for the examples and top-level package surface."""

import pathlib
import py_compile

import pytest

import repro

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_package_version():
    assert repro.__version__


def test_public_api_surface():
    # The README quickstart names must resolve.
    from repro import AddressSpace, IRBuilder, Machine, Module  # noqa: F401
    from repro.machine import MachineConfig  # noqa: F401
    from repro.passes import profile_and_optimize  # noqa: F401
    from repro.workloads import IndirectMicrobenchmark  # noqa: F401


def test_design_and_experiments_docs_exist():
    root = pathlib.Path(__file__).parent.parent
    assert (root / "DESIGN.md").exists()
    assert (root / "README.md").exists()


def test_quickstart_pattern_small():
    """The README quickstart, at test scale."""
    from repro.machine import Machine
    from repro.passes import profile_and_optimize
    from repro.workloads import IndirectMicrobenchmark

    workload = IndirectMicrobenchmark(
        inner=64, total_iterations=8_000, target_elems=1 << 17
    )
    module, space = workload.build()
    baseline = Machine(module, space).run("main")
    outcome = profile_and_optimize(workload.builder)
    optimized = Machine(outcome.module, outcome.space).run("main")
    assert optimized.value == baseline.value
    assert optimized.counters.cycles < baseline.counters.cycles
