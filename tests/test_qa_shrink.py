"""The delta-debugging shrinker: minimized failures stay failures and
engine defects shrink to a handful of basic blocks."""

from __future__ import annotations

import pytest

from repro.qa.generate import build_program, generate_spec
from repro.qa.mutants import mutant_oracle_setup
from repro.qa.oracle import oracle_failure
from repro.qa.shrink import count_blocks, shrink_spec


def test_shrink_requires_a_failing_input():
    with pytest.raises(ValueError, match="does not fail"):
        shrink_spec(generate_spec(0), lambda spec: False)


def test_mutant_failure_shrinks_to_three_blocks_or_fewer():
    """The acceptance bound: a seeded engine off-by-one (mis-costed RET)
    minimizes to <= 3 basic blocks, and the minimized spec still fails."""
    config, runners = mutant_oracle_setup()
    spec = generate_spec(0)

    def still_fails(candidate):
        return oracle_failure(candidate, config, runners) is not None

    assert still_fails(spec)
    shrunk = shrink_spec(spec, still_fails)
    assert still_fails(shrunk)
    assert count_blocks(shrunk) <= 3
    assert count_blocks(shrunk) < count_blocks(spec)


def test_structural_predicate_shrinks_to_minimal_witness():
    """Shrinking against a pure structural predicate ('spec still
    contains an indirect load') must strip everything else."""
    spec = generate_spec(1)

    def has_indirect(statements):
        for stmt in statements:
            if stmt["kind"] == "indirect":
                return True
            if stmt["kind"] == "loop" and has_indirect(stmt["body"]):
                return True
        return False

    def predicate(candidate):
        return any(has_indirect(f["body"]) for f in candidate["functions"])

    if not predicate(spec):  # pick a seed that contains one
        pytest.skip("seed 1 generated no indirect load")
    shrunk = shrink_spec(spec, predicate)
    assert predicate(shrunk)
    # Minimal witness: main holding exactly one statement, no loops.
    assert [f["name"] for f in shrunk["functions"]] == ["main"]
    assert shrunk["functions"][0]["body"] == [{"kind": "indirect"}]
    assert shrunk["data_elems"] == 64
    assert shrunk["target_elems"] == 64
    assert count_blocks(shrunk) == 1


def test_shrink_does_not_mutate_the_input():
    spec = generate_spec(2)
    import copy

    snapshot = copy.deepcopy(spec)
    shrink_spec(spec, lambda candidate: True)
    assert spec == snapshot


def test_shrunk_specs_still_build_verifier_clean():
    config, runners = mutant_oracle_setup()
    spec = generate_spec(4)
    shrunk = shrink_spec(
        spec,
        lambda candidate: oracle_failure(candidate, config, runners)
        is not None,
    )
    build_program(shrunk)  # verify_module(strict=True) inside
