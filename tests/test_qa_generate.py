"""The seeded program generator: determinism, verifier-cleanliness,
spec round-trips, and construct coverage."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.machine.machine import Machine
from repro.qa.generate import (
    ALU_OPS,
    GeneratorConfig,
    build_program,
    generate_spec,
    spec_digest,
    validate_spec,
)


def test_generate_is_deterministic():
    a = generate_spec(1234)
    b = generate_spec(1234)
    assert a == b
    assert spec_digest(a) == spec_digest(b)
    assert generate_spec(1235) != a


def test_build_is_deterministic():
    spec = generate_spec(7)
    module_a, space_a = build_program(spec)
    module_b, space_b = build_program(spec)
    assert sorted(module_a.functions) == sorted(module_b.functions)
    for name, function in module_a.functions.items():
        other = module_b.functions[name]
        assert [block.name for block in function.blocks] == [
            block.name for block in other.blocks
        ]
    # Same seed -> byte-identical data arrays -> identical results.
    result_a = Machine(module_a, space_a, engine="reference").run("main")
    result_b = Machine(module_b, space_b, engine="reference").run("main")
    assert result_a.value == result_b.value
    assert result_a.counters.as_dict() == result_b.counters.as_dict()


@given(st.integers(min_value=0, max_value=10_000))
def test_every_seed_builds_verifier_clean(seed):
    # build_program runs verify_module(strict=True) internally; the
    # property is simply that no seed can produce a rejected program.
    module, _ = build_program(generate_spec(seed))
    assert "main" in module.functions


def test_spec_json_round_trip():
    spec = generate_spec(42)
    restored = json.loads(json.dumps(spec))
    assert restored == spec
    assert spec_digest(restored) == spec_digest(spec)
    build_program(restored)


def _kinds(statements):
    for stmt in statements:
        yield stmt["kind"]
        if stmt["kind"] == "loop":
            yield from _kinds(stmt["body"])
            if stmt.get("multi_latch"):
                yield "multi_latch"


def test_construct_coverage_across_seeds():
    """A modest seed range must exercise every statement kind — the
    differential matrix is only as strong as the programs feeding it."""
    seen = set()
    for seed in range(60):
        spec = generate_spec(seed)
        for function in spec["functions"]:
            seen.update(_kinds(function["body"]))
        if any(f["name"] != "main" for f in spec["functions"]):
            seen.add("helper")
    expected = {
        "loop", "multi_latch", "alu", "cmpsel", "load", "indirect",
        "store", "prefetch", "work", "call", "helper",
    }
    assert expected <= seen


def test_generator_config_gates_constructs():
    config = GeneratorConfig(
        allow_calls=False,
        allow_multi_latch=False,
        allow_stores=False,
        allow_prefetch=False,
    )
    for seed in range(30):
        spec = generate_spec(seed, config)
        assert [f["name"] for f in spec["functions"]] == ["main"]
        kinds = set(_kinds(spec["functions"][0]["body"]))
        assert not kinds & {"call", "multi_latch", "store", "prefetch"}


@pytest.mark.parametrize(
    "broken, message",
    [
        ({"schema": 2}, "schema"),
        ({"schema": 1, "functions": []}, "functions"),
        (
            {
                "schema": 1,
                "functions": [{"name": "f", "params": [], "body": []}],
            },
            "main",
        ),
        (
            {
                "schema": 1,
                "seed": 0,
                "data_elems": 100,
                "target_elems": 64,
                "functions": [{"name": "main", "params": [], "body": []}],
            },
            "data_elems",
        ),
    ],
)
def test_validate_spec_rejects(broken, message):
    with pytest.raises(ValueError, match=message):
        validate_spec(broken)


def test_alu_vocabulary_all_emittable():
    body = [{"kind": "alu", "op": op, "rhs": 5} for op in ALU_OPS]
    spec = {
        "schema": 1,
        "seed": 0,
        "data_elems": 64,
        "target_elems": 64,
        "functions": [{"name": "main", "params": [], "body": body}],
    }
    module, space = build_program(spec)
    Machine(module, space, engine="reference").run("main")
