"""Stateful property tests: the job queue and the artifact store.

The ROADMAP's stateful-property-testing item, first slice: hypothesis
``RuleBasedStateMachine``s drive random operation sequences against the
real implementations while a plain-dict model predicts every outcome.

* :class:`QueueMachine` — random submit/claim/heartbeat/complete/fail/
  crash(=let the lease lapse)/requeue sequences against one
  :class:`JobQueue` with an injected clock.  The model tracks each
  job's state, attempts, owner, lease and backoff window, and every
  transition's return value must match the model's prediction.
* :class:`StoreMachine` — put/get/overwrite/corrupt/clear against a
  disk :class:`ArtifactStore`; a corrupted entry must read back as a
  miss (quarantined), never a crash or a stale payload.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.service.store import ArtifactStore, CacheKey
from repro.serve.queue import JobQueue

# ----------------------------------------------------------------------
# Queue machine
# ----------------------------------------------------------------------
LEASE = 10.0
BACKOFF = 1.0
MAX_ATTEMPTS = 3

KEYS = st.sampled_from(["ka", "kb", "kc", "kd"])
AGENTS = st.sampled_from(["a1", "a2", "a3"])


class QueueMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        import tempfile

        self._tmp = tempfile.TemporaryDirectory(prefix="repro-queue-sm-")
        self.now = 1000.0
        self.queue = JobQueue(
            self._tmp.name,
            lease=LEASE,
            max_attempts=MAX_ATTEMPTS,
            backoff=BACKOFF,
            clock=lambda: self.now,
        )
        #: dedup_key -> model row (one job per key, like the queue).
        self.model: dict[str, dict] = {}

    def teardown(self) -> None:
        self._tmp.cleanup()
        super().teardown()

    # -- model helpers -------------------------------------------------
    def _backoff(self, attempts: int) -> float:
        return BACKOFF * (2 ** max(0, attempts - 1))

    def _model_reap(self) -> None:
        """Mirror the queue's claim/submit-time lease reaping."""
        for row in self.model.values():
            if row["state"] in ("claimed", "running") and (
                row["lease_expires"] < self.now
            ):
                if row["attempts"] >= MAX_ATTEMPTS:
                    row.update(state="lost", agent=None)
                else:
                    row.update(
                        state="queued",
                        agent=None,
                        not_before=self.now + self._backoff(row["attempts"]),
                        queued_at=self.now,
                    )

    def _model_claimable(self):
        eligible = [
            (row["queued_at"], row["id"], key)
            for key, row in self.model.items()
            if row["state"] == "queued" and row["not_before"] <= self.now
        ]
        return min(eligible)[2] if eligible else None

    # -- rules ---------------------------------------------------------
    @rule(dt=st.sampled_from([0.5, 2.0, 6.0, 11.0, 25.0]))
    def advance_time(self, dt) -> None:
        self.now += dt

    @rule(key=KEYS)
    def submit(self, key) -> None:
        record, deduped = self.queue.submit(
            "X", {"kind": "X", "key": key}, dedup_key=key
        )
        self._model_reap()
        row = self.model.get(key)
        if row is None:
            assert not deduped
            assert record.state == "queued"
            self.model[key] = {
                "id": record.id,
                "state": "queued",
                "attempts": 0,
                "agent": None,
                "not_before": 0.0,
                "queued_at": self.now,
                "lease_expires": None,
            }
        elif row["state"] in ("failed", "lost"):
            assert not deduped
            assert record.id == row["id"]
            assert record.state == "queued"
            row.update(
                state="queued",
                attempts=0,
                agent=None,
                not_before=0.0,
                queued_at=self.now,
                lease_expires=None,
            )
        else:
            assert deduped
            assert record.id == row["id"]
            assert record.state == row["state"]

    @rule(agent=AGENTS)
    def claim(self, agent) -> None:
        record = self.queue.claim(agent)
        self._model_reap()
        expected = self._model_claimable()
        if expected is None:
            assert record is None
            return
        row = self.model[expected]
        assert record is not None
        assert record.id == row["id"]
        assert record.state == "claimed"
        row.update(
            state="claimed",
            agent=agent,
            attempts=row["attempts"] + 1,
            lease_expires=self.now + LEASE,
        )
        assert record.attempts == row["attempts"]

    @precondition(lambda self: self.model)
    @rule(key=KEYS, agent=AGENTS)
    def start(self, key, agent) -> None:
        row = self.model.get(key)
        if row is None:
            return
        ok = self.queue.start(row["id"], agent)
        should = row["state"] == "claimed" and row["agent"] == agent
        assert ok == should
        if should:
            row.update(state="running", lease_expires=self.now + LEASE)

    @precondition(lambda self: self.model)
    @rule(key=KEYS, agent=AGENTS)
    def heartbeat(self, key, agent) -> None:
        row = self.model.get(key)
        if row is None:
            return
        ok = self.queue.heartbeat(row["id"], agent)
        should = (
            row["state"] in ("claimed", "running") and row["agent"] == agent
        )
        assert ok == should
        if should:
            row["lease_expires"] = self.now + LEASE

    @precondition(lambda self: self.model)
    @rule(key=KEYS, agent=AGENTS)
    def complete(self, key, agent) -> None:
        row = self.model.get(key)
        if row is None:
            return
        ok = self.queue.complete(row["id"], agent, {"done": key})
        should = (
            row["state"] in ("claimed", "running") and row["agent"] == agent
        )
        assert ok == should
        if should:
            row.update(state="done", agent=None, lease_expires=None)

    @precondition(lambda self: self.model)
    @rule(key=KEYS, agent=AGENTS)
    def fail(self, key, agent) -> None:
        row = self.model.get(key)
        if row is None:
            return
        new_state = self.queue.fail(row["id"], agent, "boom")
        actionable = (
            row["state"] in ("claimed", "running") and row["agent"] == agent
        )
        if not actionable:
            assert new_state is None
            return
        if row["attempts"] >= MAX_ATTEMPTS:
            assert new_state == "failed"
            row.update(state="failed", agent=None, lease_expires=None)
        else:
            assert new_state == "queued"
            row.update(
                state="queued",
                agent=None,
                lease_expires=None,
                not_before=self.now + self._backoff(row["attempts"]),
                queued_at=self.now,
            )

    @rule()
    def crash_and_requeue(self) -> None:
        """SIGKILL-shaped: leases stop being renewed, time passes, the
        reaper runs.  Every lapsed job must move exactly as modelled."""
        self.now += LEASE + 1.0
        self.queue.requeue_lapsed()
        self._model_reap()

    # -- invariants ----------------------------------------------------
    @invariant()
    def states_match_model(self) -> None:
        for key, row in self.model.items():
            record = self.queue.get(row["id"])
            assert record is not None
            assert record.state == row["state"], (
                f"{key}: queue={record.state} model={row['state']}"
            )
            assert record.attempts == row["attempts"]
            if row["state"] in ("claimed", "running"):
                assert record.agent == row["agent"]

    @invariant()
    def stats_match_model(self) -> None:
        stats = self.queue.stats()
        assert stats["total"] == len(self.model)
        by_state: dict[str, int] = {}
        for row in self.model.values():
            by_state[row["state"]] = by_state.get(row["state"], 0) + 1
        for state, count in by_state.items():
            assert stats["by_state"][state] == count


TestQueueStateful = QueueMachine.TestCase


# ----------------------------------------------------------------------
# Store machine (concurrent-shape put/get/corrupt over the disk store)
# ----------------------------------------------------------------------
STORE_KEYS = ["alpha", "beta", "gamma"]


class StoreMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        import tempfile

        self._tmp = tempfile.TemporaryDirectory(prefix="repro-store-sm-")
        self.store = ArtifactStore(self._tmp.name)
        self.model: dict[str, dict] = {}
        self.rng = random.Random(1234)

    def teardown(self) -> None:
        self._tmp.cleanup()
        super().teardown()

    def _key(self, name: str) -> CacheKey:
        return CacheKey.make("profile", name, "tiny", "fp0")

    @rule(name=st.sampled_from(STORE_KEYS), value=st.integers(0, 1 << 30))
    def put(self, name, value) -> None:
        payload = {"value": value}
        self.store.put(self._key(name), payload)
        self.model[name] = payload

    @rule(name=st.sampled_from(STORE_KEYS))
    def get(self, name) -> None:
        assert self.store.get(self._key(name)) == self.model.get(name)

    @rule(name=st.sampled_from(STORE_KEYS))
    def overwrite_then_get_is_fresh(self, name) -> None:
        """Returned payloads are fresh objects: mutating one must not
        poison later reads (the aliasing hazard the store exists to
        prevent)."""
        if name not in self.model:
            return
        first = self.store.get(self._key(name))
        first["value"] = -1
        assert self.store.get(self._key(name)) == self.model[name]

    @rule(name=st.sampled_from(STORE_KEYS))
    def corrupt(self, name) -> None:
        """A torn/garbage entry degrades to a miss via quarantine."""
        if name not in self.model:
            return
        path = self.store._entry_path(self._key(name))
        path.write_text("{corrupt json" + str(self.rng.random()))
        assert self.store.get(self._key(name)) is None  # quarantined
        del self.model[name]
        assert self.store.get(self._key(name)) is None  # stays gone

    @rule()
    def clear(self) -> None:
        self.store.clear()
        self.model.clear()

    @invariant()
    def entry_count_matches(self) -> None:
        assert self.store.stats()["entries"] == len(self.model)


TestStoreStateful = StoreMachine.TestCase
