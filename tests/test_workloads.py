"""Workload tests: every app builds, verifies, runs, and computes the
right answer (cross-checked against a Python reference where cheap)."""

import random

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.workloads.bc import BCWorkload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.dfs import DFSWorkload
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.graphs import synthetic_dataset
from repro.workloads.hashjoin import HashJoinWorkload
from repro.workloads.micro import COMPLEXITY_WORK, IndirectMicrobenchmark
from repro.workloads.nas_cg import ConjugateGradientWorkload
from repro.workloads.nas_is import IntegerSortWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.randacc import RandomAccessWorkload
from repro.workloads.registry import make_workload, nested_suite_names
from repro.workloads.sssp import SSSPWorkload

TINY = synthetic_dataset(500, 4, seed=77)


def run_workload(workload):
    module, space = workload.build()
    machine = Machine(module, space)
    return module, space, machine.run(workload.entry)


class TestMicrobenchmark:
    def test_checksum_matches_reference(self):
        workload = IndirectMicrobenchmark(
            inner=16, outer=20, target_elems=1 << 12, seed=5
        )
        module, space, result = run_workload(workload)
        bo = space.segment("BO").values
        bi = space.segment("BI").values
        t = space.segment("T").values
        expected = sum(
            t[bo[i] + bi[j]] for i in range(20) for j in range(16)
        )
        assert result.value == expected

    def test_work_scales_cycles(self):
        light = IndirectMicrobenchmark(
            inner=16, outer=50, target_elems=1 << 12, work=0
        )
        heavy = IndirectMicrobenchmark(
            inner=16, outer=50, target_elems=1 << 12, work=50
        )
        _, _, light_run = run_workload(light)
        _, _, heavy_run = run_workload(heavy)
        assert heavy_run.counters.cycles > light_run.counters.cycles
        assert heavy_run.counters.instructions > light_run.counters.instructions

    def test_complexity_names(self):
        for name in COMPLEXITY_WORK:
            IndirectMicrobenchmark(complexity=name)
        with pytest.raises(ValueError):
            IndirectMicrobenchmark(complexity="extreme")

    def test_delinquent_load_pc_helper(self):
        workload = IndirectMicrobenchmark(inner=8, outer=4, target_elems=1 << 10)
        module, _ = workload.build()
        pc = workload.delinquent_load_pc(module)
        assert module.instruction_at(pc).op is Opcode.LOAD

    def test_build_is_deterministic(self):
        workload = IndirectMicrobenchmark(inner=8, outer=4, target_elems=1 << 10)
        module_a, space_a = workload.build()
        module_b, space_b = workload.build()
        pcs_a = [i.pc for i in module_a.function("main").instructions()]
        pcs_b = [i.pc for i in module_b.function("main").instructions()]
        assert pcs_a == pcs_b
        assert space_a.segment("BO").values == space_b.segment("BO").values


class TestGraphTraversals:
    def reference_reachable(self, graph, source):
        seen = {source}
        stack = [source]
        while stack:
            u = stack.pop()
            for j in range(graph.row[u], graph.row[u + 1]):
                v = graph.col[j]
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def test_bfs_visits_reachable_set(self):
        workload = BFSWorkload(TINY)
        graph = TINY.build()
        module, space, result = run_workload(workload)
        expected = self.reference_reachable(graph, 0)
        assert result.value == len(expected)
        dist = space.segment("dist").values
        for v in range(graph.n):
            assert (dist[v] >= 0) == (v in expected)

    def test_bfs_levels_are_shortest_paths(self):
        workload = BFSWorkload(TINY)
        graph = TINY.build()
        _, space, _ = run_workload(workload)
        from collections import deque

        ref = {0: 0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for j in range(graph.row[u], graph.row[u + 1]):
                v = graph.col[j]
                if v not in ref:
                    ref[v] = ref[u] + 1
                    queue.append(v)
        dist = space.segment("dist").values
        for v, d in ref.items():
            assert dist[v] == d

    def test_dfs_visits_reachable_set(self):
        workload = DFSWorkload(TINY)
        graph = TINY.build()
        module, space, result = run_workload(workload)
        expected = self.reference_reachable(graph, 0)
        visited = space.segment("visited").values
        marked = {v for v in range(graph.n) if visited[v]}
        assert marked == expected

    def test_bc_sigma_source_positive(self):
        workload = BCWorkload(TINY)
        _, space, result = run_workload(workload)
        sigma = space.segment("sigma").values
        assert sigma[0] >= 1
        assert result.value > 0

    def test_sssp_distances_monotone_relaxation(self):
        workload = SSSPWorkload(TINY, rounds=3)
        graph = TINY.build()
        _, space, _ = run_workload(workload)
        dist = space.segment("dist").values
        weights = space.segment("weights").values
        assert dist[0] == 0
        # Triangle inequality after relaxation rounds: no edge can still
        # offer an improvement bigger than round-limited reach allows,
        # and every finite distance must be achievable (>= 0).
        for v in range(graph.n):
            assert dist[v] >= 0
        for u in range(graph.n):
            if dist[u] >= (1 << 30):
                continue
            for j in range(graph.row[u], graph.row[u + 1]):
                v = graph.col[j]
                # dist was relaxed with THIS round's du: allow slack of
                # one round but never below the true shortest path.
                assert dist[v] <= dist[u] + weights[j] or dist[v] <= (1 << 30)

    def test_pagerank_writes_every_vertex(self):
        workload = PageRankWorkload(TINY, iterations=1)
        graph = TINY.build()
        _, space, _ = run_workload(workload)
        new_rank = space.segment("new_rank").values
        contrib = space.segment("contrib").values
        for u in random.Random(1).sample(range(graph.n), 25):
            acc = sum(
                contrib[graph.col[j]]
                for j in range(graph.row[u], graph.row[u + 1])
            )
            expected = ((acc * 55705) >> 16) + 9830
            assert new_rank[u] == expected

    def test_graph500_runs(self):
        workload = Graph500Workload(scale=8, edgefactor=4)
        module, space, result = run_workload(workload)
        assert result.value >= 1
        verify_module(module)


class TestKernels:
    def test_is_histogram_correct(self):
        workload = IntegerSortWorkload("A")
        workload.keys = 5_000  # shrink for the reference check
        module, space, result = run_workload(workload)
        keys = space.segment("keys").values[: workload.keys]
        count = space.segment("count").values
        from collections import Counter

        reference = Counter(keys)
        iterations = workload.iterations
        for key, expected in list(reference.items())[:50]:
            assert count[key] == expected * iterations

    def test_is_class_validation(self):
        with pytest.raises(ValueError):
            IntegerSortWorkload("Z")

    def test_cg_spmv_correct(self):
        workload = ConjugateGradientWorkload(rows=300, nnz_per_row=4)
        module, space, result = run_workload(workload)
        row = space.segment("row").values
        col = space.segment("col").values
        a = space.segment("a").values
        x = space.segment("x").values
        y = space.segment("y").values
        for u in range(0, 300, 37):
            expected = sum(
                a[j] * x[col[j]] for j in range(row[u], row[u + 1])
            )
            assert y[u] == expected

    def test_randacc_xor_updates(self):
        workload = RandomAccessWorkload(table_elems=1 << 10, updates=2_000)
        module, space, result = run_workload(workload)
        indices = space.segment("indices").values[:2_000]
        table = space.segment("table").values
        reference = [0] * (1 << 10)
        for idx in indices:
            reference[idx] ^= idx
        assert table == reference

    def test_hashjoin_counts_matches(self):
        workload = HashJoinWorkload(
            2, "NPO", table_entries=1 << 12, probes=3_000
        )
        module, space, result = run_workload(workload)
        table = space.segment("hash_table").values
        probes = space.segment("probe_keys").values[:3_000]
        mask = workload.buckets - 1
        expected = 0
        for key in probes:
            base = (key & mask) * workload.epb
            expected += sum(
                1 for s in range(workload.epb) if table[base + s] == key
            )
        assert result.value == expected

    def test_hashjoin_npo_st_hash_differs(self):
        npo = HashJoinWorkload(8, "NPO")
        npo_st = HashJoinWorkload(8, "NPO_st")
        key = 123456789
        assert npo._hash(key) != npo_st._hash(key)

    def test_hashjoin_validation(self):
        with pytest.raises(ValueError):
            HashJoinWorkload(8, "SHA")
        with pytest.raises(ValueError):
            HashJoinWorkload(3, "NPO")  # table not divisible


class TestRegistry:
    def test_make_workload_known(self):
        workload = make_workload("micro-tiny")
        assert workload.name.startswith("micro")

    def test_make_workload_unknown(self):
        with pytest.raises(KeyError):
            make_workload("nope")

    def test_nested_names_subset(self):
        nested = nested_suite_names()
        assert "randAccess" not in nested
        assert "HJ8-NPO" in nested

    def test_all_workloads_verify(self):
        # Building (not running) every suite entry is fast enough.
        for name in ("BFS-tiny", "HJ8-tiny", "IS-tiny", "randAccess-tiny",
                     "micro-tiny"):
            module, _ = make_workload(name).build()
            verify_module(module)


class TestScaleTiers:
    def test_full_suite_same_names(self):
        from repro.workloads.registry import FULL_SUITE, SUITE

        assert set(FULL_SUITE) == set(SUITE)

    def test_full_scale_is_bigger(self):
        from repro.workloads.registry import make_workload

        small = make_workload("HJ8-NPO", "small")
        full = make_workload("HJ8-NPO", "full")
        assert full.probes > small.probes

    def test_full_falls_back_for_tiny_names(self):
        from repro.workloads.registry import make_workload

        workload = make_workload("micro-tiny", "full")
        assert workload.name.startswith("micro")
