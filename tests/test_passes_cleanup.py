"""Tests for the post-injection cleanup (local CSE + DCE)."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.opcodes import Opcode
from repro.ir.verifier import verify_module
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace
from repro.passes.cleanup import (
    cleanup_module,
    dead_code_elimination,
    local_cse,
)
from tests.conftest import build_nested_indirect


def instruction_count(module):
    return sum(
        len(list(f.instructions())) for f in module.functions.values()
    )


class TestCSE:
    def test_merges_duplicate_pure_ops(self):
        module = Module("c")
        b = IRBuilder(module)
        b.function("main", params=["x"])
        b.at(b.block("entry"))
        a1 = b.add("x", 5, name="a1")
        a2 = b.add("x", 5, name="a2")  # duplicate
        total = b.mul(a1, a2, name="total")
        b.ret(total)
        module.finalize()
        replaced = local_cse(module.function("main"))
        assert replaced == 1
        module.finalize()
        verify_module(module)
        result = Machine(module, AddressSpace()).run("main", (3,))
        assert result.value == 64

    def test_does_not_merge_loads(self):
        space = AddressSpace()
        seg = space.allocate("d", [1], elem_size=8)
        module = Module("l")
        b = IRBuilder(module)
        b.function("main")
        b.at(b.block("entry"))
        v1 = b.load(seg.base, name="v1")
        b.store(seg.base, 99)
        v2 = b.load(seg.base, name="v2")  # NOT a duplicate: store between
        s = b.add(v1, v2, name="s")
        b.ret(s)
        module.finalize()
        assert local_cse(module.function("main")) == 0
        result = Machine(module, space).run("main")
        assert result.value == 100

    def test_rewrites_same_block_phi_back_edges(self):
        """A PHI may reference the removed duplicate through a back edge."""
        module = Module("p")
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        early = b.add(i, 1, name="early")
        late = b.add(i, 1, name="late")  # duplicate, referenced by phi
        b.add_incoming(i, loop, late)
        cond = b.lt(early, 10, name="cond")
        b.br(cond, loop, done)
        b.at(done)
        b.ret(i)
        module.finalize()
        assert local_cse(module.function("main")) == 1
        module.finalize()
        verify_module(module)
        assert Machine(module, AddressSpace()).run("main").value == 9

    def test_chained_duplicates_collapse(self):
        module = Module("chain")
        b = IRBuilder(module)
        b.function("main", params=["x"])
        b.at(b.block("entry"))
        a1 = b.add("x", 1, name="a1")
        b1 = b.mul(a1, 2, name="b1")
        a2 = b.add("x", 1, name="a2")
        b2 = b.mul(a2, 2, name="b2")  # dup once a2 -> a1
        s = b.add(b1, b2, name="s")
        b.ret(s)
        module.finalize()
        assert local_cse(module.function("main")) == 2
        module.finalize()
        verify_module(module)
        assert Machine(module, AddressSpace()).run("main", (4,)).value == 20


class TestDCE:
    def test_removes_unused_pure_chains(self):
        module = Module("d")
        b = IRBuilder(module)
        b.function("main", params=["x"])
        b.at(b.block("entry"))
        dead1 = b.add("x", 1, name="dead1")
        b.mul(dead1, 2, name="dead2")  # uses dead1; both removable
        live = b.add("x", 7, name="live")
        b.ret(live)
        module.finalize()
        removed = dead_code_elimination(module.function("main"))
        assert removed == 2
        module.finalize()
        verify_module(module)
        assert Machine(module, AddressSpace()).run("main", (1,)).value == 8

    def test_keeps_loads_stores_prefetches(self):
        space = AddressSpace()
        seg = space.allocate("d", [5], elem_size=8)
        module = Module("k")
        b = IRBuilder(module)
        b.function("main")
        b.at(b.block("entry"))
        b.load(seg.base, name="unused_load")
        b.prefetch(seg.base)
        b.store(seg.base, 1)
        b.ret(0)
        module.finalize()
        assert dead_code_elimination(module.function("main")) == 0
        ops = [i.op for i in module.function("main").instructions()]
        assert Opcode.LOAD in ops
        assert Opcode.PREFETCH in ops


class TestEndToEnd:
    def test_cleanup_preserves_semantics_and_shrinks(self):
        from repro.passes.ainsworth_jones import (
            AinsworthJonesConfig,
            AinsworthJonesPass,
        )

        module, space, expected = build_nested_indirect()
        no_cleanup = AinsworthJonesPass(
            AinsworthJonesConfig(cleanup=False)
        ).run(module)
        size_before = instruction_count(module)
        report = cleanup_module(module)
        size_after = instruction_count(module)
        assert size_after <= size_before
        verify_module(module)
        assert Machine(module, space).run("main").value == expected
        del no_cleanup, report

    def test_cleanup_reduces_multi_hint_duplication(self):
        """Two hints in one loop share address arithmetic after CSE."""
        from repro.core.hints import HintSet, PrefetchHint
        from repro.passes.aptget_pass import AptGetPass, AptGetPassConfig

        def build_with(cleanup: bool):
            module, space, expected = build_nested_indirect()
            loads = [
                inst
                for inst in module.function("main").instructions()
                if inst.op is Opcode.LOAD and inst.dst in ("t.v", "bi.v")
            ]
            hints = HintSet.from_hints(
                [
                    PrefetchHint(load_pc=i.pc, function="main", distance=4)
                    for i in loads
                ]
            )
            AptGetPass(hints, AptGetPassConfig(cleanup=cleanup)).run(module)
            return module, space, expected

        dirty, _, _ = build_with(False)
        clean, space, expected = build_with(True)
        assert instruction_count(clean) < instruction_count(dirty)
        verify_module(clean)
        assert Machine(clean, space).run("main").value == expected


class TestGEPCSE:
    def test_duplicate_geps_merged(self):
        module = Module("gep")
        b = IRBuilder(module)
        b.function("main", params=["i"])
        b.at(b.block("entry"))
        a1 = b.gep(0x1000, "i", 8, name="a1")
        a2 = b.gep(0x1000, "i", 8, name="a2")  # duplicate address calc
        v1 = b.load(a1, name="v1")
        v2 = b.load(a2, name="v2")
        s = b.add(v1, v2, name="s")
        b.ret(s)
        module.finalize()
        assert local_cse(module.function("main")) == 1
        # Loads remain (side effects), sharing one address register.
        ops = [i.op for i in module.function("main").instructions()]
        assert ops.count(Opcode.GEP) == 1
        assert ops.count(Opcode.LOAD) == 2

    def test_different_scales_not_merged(self):
        module = Module("gep2")
        b = IRBuilder(module)
        b.function("main", params=["i"])
        b.at(b.block("entry"))
        a1 = b.gep(0x1000, "i", 8, name="a1")
        a2 = b.gep(0x1000, "i", 64, name="a2")
        s = b.add(a1, a2, name="s")
        b.ret(s)
        module.finalize()
        assert local_cse(module.function("main")) == 0
