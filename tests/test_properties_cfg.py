"""Property-based tests for CFG analyses: dominators vs. a brute-force
reachability definition, and loop-detection invariants, on randomly
generated (reducible and irreducible) control-flow graphs."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis.cfg import (
    dominates,
    immediate_dominators,
    reverse_postorder,
)
from repro.analysis.loops import find_loops
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module

FAST = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def random_cfg(draw):
    """A random CFG as an edge map over n blocks (block 0 = entry).

    Every block gets 1-2 successors; unreachable blocks may exist (they
    are excluded from the analyses by construction).
    """
    n = draw(st.integers(min_value=1, max_value=10))
    edges = {}
    for i in range(n):
        count = draw(st.integers(min_value=0, max_value=2))
        if count == 0:
            edges[i] = []
        else:
            edges[i] = [
                draw(st.integers(min_value=0, max_value=n - 1))
                for _ in range(count)
            ]
    return n, edges


def build_cfg_module(n, edges):
    module = Module("cfg")
    b = IRBuilder(module)
    b.function("f", params=["c"])
    blocks = [b.block(f"b{i}") for i in range(n)]
    for i in range(n):
        b.at(blocks[i])
        successors = edges[i]
        if not successors:
            b.ret(0)
        elif len(successors) == 1 or successors[0] == successors[1]:
            b.jmp(blocks[successors[0]])
        else:
            b.br("c", blocks[successors[0]], blocks[successors[1]])
    module.finalize()
    return module.function("f")


def brute_force_dominators(function):
    """dom(b) = blocks whose removal disconnects entry from b."""
    from repro.analysis.cfg import successors_map

    successors = successors_map(function)
    entry = function.entry.name
    all_reachable = _reachable(successors, entry, removed=None)
    result = {}
    for target in all_reachable:
        doms = set()
        for candidate in all_reachable:
            if candidate == target:
                doms.add(candidate)
                continue
            reachable = _reachable(successors, entry, removed=candidate)
            if target not in reachable:
                doms.add(candidate)
        result[target] = doms
    return result


def _reachable(successors, entry, removed):
    if entry == removed:
        return set()
    seen = {entry}
    stack = [entry]
    while stack:
        node = stack.pop()
        for nxt in successors[node]:
            if nxt != removed and nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


@FAST
@given(random_cfg())
def test_dominators_match_brute_force(cfg):
    n, edges = cfg
    function = build_cfg_module(n, edges)
    idom = immediate_dominators(function)
    expected = brute_force_dominators(function)
    assert set(idom) == set(expected)
    for block, doms in expected.items():
        computed = {
            d for d in idom if dominates(idom, d, block)
        }
        assert computed == doms, (block, computed, doms)


@FAST
@given(random_cfg())
def test_rpo_covers_exactly_reachable(cfg):
    n, edges = cfg
    function = build_cfg_module(n, edges)
    from repro.analysis.cfg import successors_map

    order = reverse_postorder(function)
    reachable = _reachable(successors_map(function), "b0", removed=None)
    assert set(order) == reachable
    assert len(order) == len(set(order))
    assert order[0] == "b0"


@FAST
@given(random_cfg())
def test_loop_invariants(cfg):
    n, edges = cfg
    function = build_cfg_module(n, edges)
    loops = find_loops(function)
    idom = immediate_dominators(function)
    for loop in loops:
        # The header is in the body and dominates every body block.
        assert loop.header in loop.body
        for block in loop.body:
            assert dominates(idom, loop.header, block)
        # Every latch is a body block branching to the header.
        for latch in loop.latches:
            assert latch in loop.body
            assert loop.header in function.block(latch).successors()
        # Nesting is consistent.
        if loop.parent is not None:
            assert loop.body <= loop.parent.body
            assert loop in loop.parent.children
            assert loop.depth == loop.parent.depth + 1
