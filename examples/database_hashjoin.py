#!/usr/bin/env python3
"""Database hash-join probe: the paper's flagship outer-loop case (HJ8).

A hash-join probe hashes each tuple key and scans an 8-entry bucket —
an inner loop of just 8 iterations.  Equation 2 says the inner site can
never reach 80% coverage there (it would need trip >= 5 x distance), so
APT-GET prefetches the *next probes'* buckets from the outer loop
instead.  This example demonstrates the decision and quantifies both
choices by force-overriding the site.

Run:  python examples/database_hashjoin.py
"""

from repro.core.site import InjectionSite
from repro.experiments.runner import (
    hints_with_site,
    profile_workload,
    run_baseline,
    run_with_hints,
)
from repro.workloads import HashJoinWorkload


def main() -> None:
    for epb in (2, 8):
        make = lambda: HashJoinWorkload(epb, "NPO")  # noqa: E731
        workload = make()
        print(f"\n=== {workload.name} "
              f"({workload.buckets} buckets x {epb} entries) ===")

        baseline = run_baseline(make())
        print(f"  baseline: {baseline.cycles:12,.0f} cycles, "
              f"MPKI {baseline.perf.llc_mpki:.1f}")

        profile, hints = profile_workload(make())
        probe_hint = hints.hints[0]
        print(f"  profiled trip count: {probe_hint.trip_count:.1f} "
              f"(bucket scan), Eq-1 distance {probe_hint.distance}")
        print(f"  Eq-2 decision: {probe_hint.site.value} "
              f"(trip {probe_hint.trip_count:.1f} < "
              f"k x d = {5 * probe_hint.distance})")

        for site in (InjectionSite.INNER, InjectionSite.OUTER):
            forced = hints_with_site(hints, site)
            run = run_with_hints(make(), forced)
            speedup = baseline.cycles / run.cycles
            late = run.perf.late_prefetch_ratio
            print(f"  forced {site.value:5s}: {speedup:5.2f}x "
                  f"(late prefetches {late:.0%}, "
                  f"accuracy {run.perf.prefetch_accuracy:.0%})")

        chosen = run_with_hints(make(), hints)
        print(f"  APT-GET (Eq-2 choice): "
              f"{baseline.cycles / chosen.cycles:.2f}x")


if __name__ == "__main__":
    main()
