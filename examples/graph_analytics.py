#!/usr/bin/env python3
"""Graph analytics: APT-GET vs the static baseline on real graph kernels.

The paper's motivating workloads — BFS/PageRank-style traversals over CSR
graphs — have *short inner loops* (one per vertex's neighbour list), so
static inner-loop prefetching cannot run ahead.  This example shows:

* how much of the baseline's time is memory stalls (Fig 5's story);
* that the A&J static pass barely helps (or hurts);
* that APT-GET's Eq-2 moves the prefetch to the outer loop and wins;
* the per-hint diagnostics (measured trip counts, IC/MC latencies).

Run:  python examples/graph_analytics.py
"""

from repro.experiments.runner import (
    run_ainsworth_jones,
    run_apt_get,
    run_baseline,
)
from repro.workloads import BFSWorkload, PageRankWorkload, dataset


def evaluate(make_workload) -> None:
    workload = make_workload()
    print(f"\n=== {workload.name} ===")
    baseline = run_baseline(make_workload())
    print(f"  baseline     : {baseline.cycles:12,.0f} cycles, "
          f"{baseline.perf.memory_bound_fraction:.0%} memory-bound, "
          f"MPKI {baseline.perf.llc_mpki:.1f}")

    aj = run_ainsworth_jones(make_workload(), distance=32)
    print(f"  A&J static-32: {aj.cycles:12,.0f} cycles "
          f"({baseline.cycles / aj.cycles:.2f}x)")

    apt = run_apt_get(make_workload())
    print(f"  APT-GET      : {apt.cycles:12,.0f} cycles "
          f"({baseline.cycles / apt.cycles:.2f}x, "
          f"MPKI {apt.perf.llc_mpki:.1f})")
    assert apt.hints is not None
    for hint in apt.hints:
        trip = f"{hint.trip_count:.1f}" if hint.trip_count else "n/a"
        print(f"    hint {hint.load_pc:#x}: site={hint.site.value:5s} "
              f"distance={hint.effective_distance:<3d} trip={trip} "
              f"IC={hint.ic_latency} MC={hint.mc_latency} sweep={hint.sweep}")


def main() -> None:
    evaluate(lambda: BFSWorkload(dataset("loc-Brightkite")))
    evaluate(lambda: PageRankWorkload(dataset("web-Google")))


if __name__ == "__main__":
    main()
