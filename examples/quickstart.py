#!/usr/bin/env python3
"""Quickstart: the whole APT-GET workflow in ~40 lines.

We take the paper's Listing-1 microbenchmark (an indirect access
``T[BO[i] + BI[j]]`` inside a nested loop), measure the no-prefetching
baseline, then let APT-GET profile it once, derive prefetch hints
(Eq-1 distance, Eq-2 site), inject the prefetch slices, and measure the
speedup.

Run:  python examples/quickstart.py
"""

from repro.machine import Machine
from repro.passes import profile_and_optimize
from repro.workloads import IndirectMicrobenchmark


def main() -> None:
    workload = IndirectMicrobenchmark(
        inner=256, complexity="low", total_iterations=60_000
    )

    # 1. Baseline: build the 'binary' and run it on the simulated machine.
    module, space = workload.build()
    baseline = Machine(module, space).run("main")
    print(f"baseline: {baseline.counters.cycles:12,.0f} cycles "
          f"(IPC {baseline.perf.ipc:.3f}, "
          f"{baseline.perf.memory_bound_fraction:.0%} memory bound)")

    # 2. APT-GET: one profiling run -> hints -> injection pass -> rebuild.
    outcome = profile_and_optimize(workload.builder)
    print(f"profiled {len(outcome.profile.lbr_samples)} LBR samples; "
          f"{len(outcome.hints)} delinquent load(s) optimized:")
    for hint in outcome.hints:
        print(f"  load {hint.load_pc:#x}: IC={hint.ic_latency} cycles, "
              f"MC={hint.mc_latency} cycles -> distance {hint.distance}, "
              f"site {hint.site.value}")

    # 3. Measure the optimized build.
    optimized = Machine(outcome.module, outcome.space).run("main")
    assert optimized.value == baseline.value, "optimization changed results!"
    speedup = baseline.counters.cycles / optimized.counters.cycles
    print(f"APT-GET : {optimized.counters.cycles:12,.0f} cycles "
          f"(IPC {optimized.perf.ipc:.3f}, "
          f"late prefetches {optimized.perf.late_prefetch_ratio:.0%})")
    print(f"speedup : {speedup:.2f}x")


if __name__ == "__main__":
    main()
