#!/usr/bin/env python3
"""Look inside an LBR profile: delinquent loads, loop-latency
distributions, detected peaks, and the Eq-1/Eq-2 inputs (paper Fig 4).

Prints an ASCII histogram of the hottest load's loop-iteration latency —
you should see one peak per memory level (IC / +LLC / +DRAM), exactly
the multi-modal structure the paper's Fig 4 shows.

Run:  python examples/inspect_lbr_profile.py
"""

from repro.core import AptGet
from repro.machine import Machine
from repro.profiling import collect_profile
from repro.workloads import BFSWorkload, dataset


def ascii_histogram(latencies, bins=30, width=50) -> str:
    top = max(latencies)
    bin_width = max(1, top // bins)
    counts = {}
    for latency in latencies:
        bucket = (latency // bin_width) * bin_width
        counts[bucket] = counts.get(bucket, 0) + 1
    peak = max(counts.values())
    lines = []
    for bucket in sorted(counts):
        bar = "#" * max(1, counts[bucket] * width // peak)
        lines.append(f"  {bucket:5d}-{bucket + bin_width - 1:5d} | {bar}")
    return "\n".join(lines)


def main() -> None:
    workload = BFSWorkload(dataset("loc-Brightkite"))
    module, space = workload.build()
    machine = Machine(module, space)
    profile = collect_profile(machine, workload.entry)

    print(f"{len(profile.lbr_samples)} LBR snapshots, "
          f"{len(profile.load_miss_counts)} PCs with long-latency loads")
    print("\ndelinquent loads (by total sampled miss latency):")
    for pc in profile.delinquent_loads(top=5, min_count=4):
        count = profile.load_miss_counts[pc]
        total = profile.load_miss_latency[pc]
        print(f"  {pc:#x}: {count} samples, {total:,} cycles total")

    hottest = profile.delinquent_loads(top=1, min_count=4)[0]
    analysis = AptGet().analyze_load(module, profile, hottest)
    assert analysis is not None

    dist = analysis.inner_distribution
    print(f"\nloop-latency distribution of load {hottest:#x} "
          f"({dist.count} iteration samples):")
    print(ascii_histogram(dist.latencies))
    print(f"\ndetected peaks: {dist.peaks} (masses {dist.peak_masses})")
    print(f"IC latency (lowest peak): {dist.ic_latency} cycles")
    print(f"miss latency (highest peak): {dist.miss_latency} cycles")
    print(f"MC latency (hideable): {dist.mc_latency} cycles")

    hint = analysis.hint
    assert hint is not None
    trip = f"{hint.trip_count:.1f}" if hint.trip_count else "unmeasured"
    print(f"\nEq-1 distance = ceil(MC/IC) = {hint.distance}")
    print(f"measured inner trip count = {trip}")
    print(f"Eq-2 site = {hint.site.value} (sweep {hint.sweep})")


if __name__ == "__main__":
    main()
