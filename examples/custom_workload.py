#!/usr/bin/env python3
"""Bring your own kernel: optimize a custom IR program with APT-GET.

This is the 'library adoption' path: you write a kernel against the
public IR builder (here: a sparse gather-scatter,
``out[i] = weights[index[i]] * values[i]``), wrap it as a Workload, and
hand its builder to ``profile_and_optimize``.  Everything else — LBR
profiling, peak detection, Eq-1/Eq-2, slice extraction, injection — is
automatic.

Run:  python examples/custom_workload.py
"""

import random

from repro import AddressSpace, IRBuilder, Machine, Module
from repro.passes import profile_and_optimize
from repro.workloads import Workload


class SparseGather(Workload):
    """out[i] = weights[index[i]] * values[i] over a large weights table."""

    name = "sparse-gather"
    nested = False

    def __init__(self, n=100_000, table_elems=1 << 20, seed=42):
        self.n = n
        self.table_elems = table_elems
        self.seed = seed

    def _build(self):
        rng = random.Random(self.seed)
        space = AddressSpace()
        index = space.allocate(
            "index",
            [rng.randrange(self.table_elems) for _ in range(self.n + 600)],
            elem_size=8,
        )
        values = space.allocate(
            "values", [rng.randrange(100) for _ in range(self.n)], elem_size=8
        )
        weights = space.allocate(
            "weights",
            [rng.randrange(16) for _ in range(self.table_elems)],
            elem_size=8,
        )
        out = space.allocate("out", self.n, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")
        b.at(entry)
        b.jmp(loop)
        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        ia = b.gep(index.base, i, 8)
        idx = b.load(ia, name="idx")
        wa = b.gep(weights.base, idx, 8)
        w = b.load(wa, name="w")  # <- the delinquent indirect gather
        va = b.gep(values.base, i, 8)
        v = b.load(va, name="v")
        prod = b.mul(w, v)
        oa = b.gep(out.base, i, 8)
        b.store(oa, prod)
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        more = b.lt(i2, self.n)
        b.br(more, loop, done)
        b.at(done)
        b.ret(i2)
        return module.finalize(), space


def main() -> None:
    workload = SparseGather()

    module, space = workload.build()
    baseline = Machine(module, space).run("main")
    print(f"baseline: {baseline.counters.cycles:12,.0f} cycles "
          f"(MPKI {baseline.perf.llc_mpki:.1f})")

    outcome = profile_and_optimize(workload.builder)
    print(f"hints: {[(hex(h.load_pc), h.distance, h.site.value) for h in outcome.hints]}")

    optimized = Machine(outcome.module, outcome.space).run("main")
    # The transformation must not change program semantics:
    assert (
        outcome.space.segment("out").values == space.segment("out").values
    )
    print(f"APT-GET : {optimized.counters.cycles:12,.0f} cycles "
          f"-> {baseline.counters.cycles / optimized.counters.cycles:.2f}x "
          f"(prefetch accuracy {optimized.perf.prefetch_accuracy:.0%})")


if __name__ == "__main__":
    main()
