#!/usr/bin/env python3
"""Author a kernel in IR *text*, run it, and optimize it.

The IR has a printer/parser pair that round-trips, so kernels can be
written as plain text (handy for experiments and bug reports).  This
example writes a two-level indirect loop in text form, parses it, runs
it, applies the static A&J pass, and prints the transformed IR — you can
see the injected prefetch slice exactly as Listing 4 of the paper shows
it.

Run:  python examples/ir_text_workflow.py
"""

import random

from repro import AddressSpace, Machine
from repro.ir import format_module, parse_module
from repro.passes import AinsworthJonesConfig, AinsworthJonesPass

OUTER, INNER = 400, 16


def main() -> None:
    rng = random.Random(7)
    space = AddressSpace()
    bo = space.allocate(
        "BO", [rng.randrange(1 << 19) for _ in range(OUTER + 600)], elem_size=8
    )
    bi = space.allocate(
        "BI", [rng.randrange(1 << 19) for _ in range(INNER + 600)], elem_size=8
    )
    t = space.allocate(
        "T", [rng.randrange(100) for _ in range(1 << 20)], elem_size=8
    )

    source = f"""
    define main() {{
    entry:
      br label %outer
    outer:
      %i = phi [entry: 0], [latch: %i2]
      %acc_o = phi [entry: 0], [latch: %acc2]
      %p_bo = getelementptr {bo.base}, %i, scale 8
      br label %inner
    inner:
      %j = phi [outer: 0], [inner: %j2]
      %acc = phi [outer: %acc_o], [inner: %acc2]
      %bo_v = load [%p_bo]
      %p_bi = getelementptr {bi.base}, %j, scale 8
      %bi_v = load [%p_bi]
      %idx = add %bo_v, %bi_v
      %p_t = getelementptr {t.base}, %idx, scale 8
      %v = load [%p_t]
      %acc2 = add %acc, %v
      %j2 = add %j, 1
      %more = icmp slt %j2, {INNER}
      br %more, label %inner, label %latch
    latch:
      %i2 = add %i, 1
      %more_o = icmp slt %i2, {OUTER}
      br %more_o, label %outer, label %done
    done:
      ret %acc2
    }}
    """
    module = parse_module(source, name="textual")

    baseline = Machine(module, space).run("main")
    print(f"baseline: {baseline.counters.cycles:,.0f} cycles, "
          f"checksum {baseline.value}")

    report = AinsworthJonesPass(AinsworthJonesConfig(distance=4)).run(module)
    print(f"\ninjected {report.injection_count} prefetch slice(s); "
          f"transformed inner loop:\n")
    text = format_module(module)
    start = text.index("\ninner:") + 1
    end = text.index("\nlatch:") + 1
    print(text[start:end])

    # Fresh data, same addresses (the builder above is deterministic).
    space2 = AddressSpace()
    rng2 = random.Random(7)
    space2.allocate("BO", [rng2.randrange(1 << 19) for _ in range(OUTER + 600)], elem_size=8)
    space2.allocate("BI", [rng2.randrange(1 << 19) for _ in range(INNER + 600)], elem_size=8)
    space2.allocate("T", [rng2.randrange(100) for _ in range(1 << 20)], elem_size=8)
    optimized = Machine(module, space2).run("main")
    assert optimized.value == baseline.value
    print(f"optimized: {optimized.counters.cycles:,.0f} cycles "
          f"({baseline.counters.cycles / optimized.counters.cycles:.2f}x)")


if __name__ == "__main__":
    main()
