"""``apt-get-prefetch`` command line.

Mirrors the paper's workflow as subcommands:

* ``list``        — show available workloads and experiments;
* ``profile``     — run once with LBR/PEBS sampling, write a profile JSON
                    (the ``perf record`` step);
* ``analyze``     — turn a profile into a prefetch-hint file (Eq-1/Eq-2);
* ``run``         — run a workload under a scheme (baseline, the static
                    Ainsworth & Jones pass, or APT-GET end-to-end) and
                    print ``perf stat``-style results;
* ``sweep``       — measure a scheme × distance × cache-scale grid over
                    one workload in a single batched pass
                    (``--sweep axis=v1,v2,...``, repeatable);
* ``experiment``  — regenerate a paper table/figure (optionally in
                    parallel against a persistent artifact cache);
* ``cache``       — inspect or clear a tuning-service artifact cache;
* ``qa``          — generative differential fuzzing: ``fuzz`` random
                    programs through every engine/pass/tracing
                    combination, ``replay`` the regression corpus, or
                    ``shrink`` a failing case to a minimal program;
* ``serve``       — run the controller: durable job queue + HTTP front
                    end + ``N`` agent worker processes (see
                    docs/SERVICE.md);
* ``agent``       — run one standalone agent worker against an existing
                    queue directory (attach extra capacity from other
                    terminals or hosts sharing the filesystem);
* ``top``         — polling terminal status view of a queue: depth,
                    per-state job counts, agent liveness, and
                    span-derived latency percentiles;
* ``timeline``    — stitch a queue's service telemetry and any embedded
                    simulator traces into one Perfetto/Chrome-trace
                    JSON file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.aptget import AptGet, AptGetConfig
from repro.core.hints import HintSet
from repro.machine.config import ENGINE_ALIASES, ENGINES, MachineConfig
from repro.machine.machine import Machine
from repro.passes.ainsworth_jones import AinsworthJonesConfig, AinsworthJonesPass
from repro.passes.aptget_pass import AptGetPass
from repro.profiling.collect import collect_profile
from repro.profiling.profile import ExecutionProfile
from repro.workloads.registry import SUITE, TINY_SUITE, make_workload

_SCALES = ("tiny", "small", "full")


def _resolve_workload(args: argparse.Namespace):
    """One workload-resolution path for every subcommand: the normalized
    ``--workload``/``--scale`` flags name the instance."""
    return make_workload(args.workload, getattr(args, "scale", "small"))


def _machine_config(args: argparse.Namespace) -> Optional[MachineConfig]:
    """A MachineConfig honouring ``--engine`` (None -> session default)."""
    engine = getattr(args, "engine", None)
    if engine is None:
        return None
    return MachineConfig(engine=engine)


def _make_machine(module, space, args: argparse.Namespace) -> Machine:
    return Machine(module, space, config=_machine_config(args))


def _print_perf(result) -> None:
    summary = result.perf.summary()
    for key, value in summary.items():
        print(f"  {key:>22}: {value:,.4f}")


#: Raw software-prefetch counters surfaced by ``run`` (satellite of the
#: observability work: the lifecycle numbers without enabling tracing).
_SW_PREFETCH_COUNTERS = (
    "sw_prefetch_issued",
    "sw_prefetch_useful",
    "load_hit_pre_sw_pf",
    "sw_prefetch_early_evicted",
    "sw_prefetch_redundant",
    "sw_prefetch_dropped_mshr",
    "sw_prefetch_dropped_unmapped",
)


def _print_sw_prefetch(result) -> None:
    counters = result.counters.as_dict()
    if not counters.get("sw_prefetch_issued"):
        return
    print("software prefetches:")
    for key in _SW_PREFETCH_COUNTERS:
        print(f"  {key:>28}: {counters[key]:,.0f}")
    perf = result.perf
    print(f"  {'prefetch_accuracy':>28}: {perf.prefetch_accuracy:.4f}")
    print(f"  {'prefetch_timeliness':>28}: {perf.prefetch_timeliness:.4f}")


#: Axis name -> element parser for ``--sweep axis=v1,v2,...`` flags.
_SWEEP_AXES = {
    "schemes": str,
    "distances": int,
    "cache_scales": int,
}


def parse_sweep_axes(specs: Optional[Sequence[str]]) -> dict:
    """Parse repeated ``--sweep axis=v1,v2,...`` flags into axis tuples.

    The one sweep-grid syntax shared by ``sweep``, ``experiment`` and
    ``report``: each flag names one axis (``schemes``, ``distances`` or
    ``cache_scales``; dashes accepted) and its comma-separated values;
    repeating an axis extends it.  Returns only the axes that were
    given — callers fall back to :func:`repro.api.sweep`'s defaults for
    the rest.  Raises ``ValueError`` on malformed flags.
    """
    axes: dict = {}
    for spec in specs or ():
        name, sep, raw = spec.partition("=")
        name = name.strip().replace("-", "_")
        if not sep or name not in _SWEEP_AXES:
            raise ValueError(
                f"bad --sweep flag {spec!r}; expected "
                f"axis=v1,v2,... with axis one of {sorted(_SWEEP_AXES)}"
            )
        cast = _SWEEP_AXES[name]
        items = [v.strip() for v in raw.split(",") if v.strip()]
        if not items:
            raise ValueError(f"--sweep {spec!r} names no values")
        try:
            values = tuple(cast(v) for v in items)
        except ValueError:
            raise ValueError(
                f"--sweep {spec!r}: {name} values must be "
                f"{cast.__name__}s"
            ) from None
        axes[name] = axes.get(name, ()) + values
    return axes


def _add_sweep_flag(p: argparse.ArgumentParser, help_text: str) -> None:
    p.add_argument(
        "--sweep",
        action="append",
        metavar="AXIS=V1,V2,...",
        default=None,
        help=help_text
        + " (axes: schemes, distances, cache_scales; repeatable)",
    )


def _format_sweep_table(result) -> str:
    """Fixed-width per-cell summary of one ``SweepResult``."""
    lines = [
        f"{result.workload} [{result.scale}] sweep on engine "
        f"{result.engine}",
        f"  {'scheme':<10} {'dist':>5} {'cache':>6} {'cycles':>14} "
        f"{'vs-base':>8}  source",
    ]
    baselines = {
        entry["cache_scale"]: entry["run"]["counters"].get("cycles", 0.0)
        for entry in result.cells
        if entry["scheme"] == "baseline"
    }
    for entry in result.cells:
        cycles = entry["run"]["counters"].get("cycles", 0.0)
        base = baselines.get(entry["cache_scale"])
        ratio = f"{base / cycles:>8.3f}" if base and cycles else f"{'-':>8}"
        if entry["cached"]:
            source = "cache"
        elif entry["batched"]:
            # The executed batch tier: "batchturbo" for fused
            # superblock batches, "batch" for per-block chains.
            source = entry.get("tier") or "batch"
        else:
            source = "replay"
        distance = entry["distance"] if entry["distance"] is not None else "-"
        scale = f"1/{entry['cache_scale']}"
        lines.append(
            f"  {entry['scheme']:<10} {distance!s:>5} {scale:>6} "
            f"{cycles:>14,.0f} {ratio}  {source}"
        )
    execution = result.execution
    groups = ", ".join(
        f"{g['scheme']}:{g.get('tier') or 'batch' if g['batched'] else 'replay'}"
        + (
            f" ({g.get('reason_code') or ''}{': ' if g.get('reason_code') else ''}"
            f"{g['reason']})"
            if g.get("reason")
            else ""
        )
        for g in execution["groups"]
    ) or "all cached"
    lines.append(
        f"  cells: {len(result.cells)} "
        f"({execution['cached_cells']} cached, "
        f"{execution['computed_cells']} computed) — {groups}"
    )
    return "\n".join(lines)


def cmd_sweep(args: argparse.Namespace) -> int:
    import repro.api as api_v1
    from repro.service.api import configure_service, get_service

    try:
        axes = parse_sweep_axes(args.sweep)
    except ValueError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    if args.cache_dir is not None:
        service = configure_service(
            cache_dir=args.cache_dir, machine_config=_machine_config(args)
        )
    else:
        service = get_service()
    result = api_v1.sweep(
        args.workload,
        args.scale,
        engine=args.engine,
        service=service,
        **axes,
    )
    print(_format_sweep_table(result))
    if args.output:
        Path(args.output).write_text(result.to_json())
        print(f"wrote sweep payload -> {args.output}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    print("workloads (evaluation suite):")
    for name in SUITE:
        print(f"  {name}")
    print("workloads (tiny, for quick runs):")
    for name in TINY_SUITE:
        print(f"  {name}")
    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args)
    profile: Optional[ExecutionProfile] = None
    for _ in range(max(1, args.runs)):
        module, space = workload.build()
        machine = _make_machine(module, space, args)
        run_profile = collect_profile(
            machine, workload.entry, period=args.period
        )
        profile = run_profile if profile is None else profile.merge(run_profile)
    assert profile is not None
    Path(args.output).write_text(profile.to_json())
    print(
        f"profiled {workload.name}: {len(profile.lbr_samples)} LBR samples, "
        f"{len(profile.load_miss_counts)} distinct miss PCs -> {args.output}"
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args)
    module, _ = workload.build()
    profile = ExecutionProfile.from_json(Path(args.profile).read_text())
    analyzer = AptGet(AptGetConfig(k=args.k))
    hints = analyzer.analyze(module, profile)
    Path(args.output).write_text(hints.to_json())
    print(f"wrote {len(hints)} hint(s) -> {args.output}")
    for hint in hints:
        print(
            f"  load {hint.load_pc:#x}: distance={hint.distance} "
            f"site={hint.site.value} trip={hint.trip_count} "
            f"ic={hint.ic_latency} mc={hint.mc_latency}"
        )
    return 0


def _aggregate_timely(reports) -> float:
    used = sum(r.used for r in reports.values())
    timely = sum(r.timely for r in reports.values())
    return timely / used if used else 0.0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.profiling.report import format_profile_report

    if args.sweep:
        import repro.api as api_v1

        try:
            axes = parse_sweep_axes(args.sweep)
        except ValueError as error:
            print(f"report: {error}", file=sys.stderr)
            return 2
        result = api_v1.sweep(
            args.workload, args.scale, engine=args.engine, **axes
        )
        print(_format_sweep_table(result))
        return 0

    if args.sites:
        from repro.obs.sites import format_site_reports
        from repro.service.api import get_service

        service = get_service()
        eq1 = service.site_report(
            args.workload, args.scale, engine=args.engine
        )
        print(f"{args.workload}: per-site prefetch timeliness (Eq-1 distances)")
        print(format_site_reports(eq1))
        fixed = service.site_report(
            args.workload,
            args.scale,
            fixed_distance=args.fixed_distance,
            engine=args.engine,
        )
        print(
            f"\n{args.workload}: naive baseline "
            f"(inner site, fixed distance {args.fixed_distance})"
        )
        print(format_site_reports(fixed))
        print(
            f"\noverall timely fraction: "
            f"eq1={_aggregate_timely(eq1):.3f} "
            f"fixed-{args.fixed_distance}={_aggregate_timely(fixed):.3f}"
        )
        return 0

    workload = _resolve_workload(args)
    module, _ = workload.build()
    if args.profile:
        profile = ExecutionProfile.from_json(Path(args.profile).read_text())
    else:
        run_module, run_space = workload.build()
        machine = _make_machine(run_module, run_space, args)
        profile = collect_profile(machine, workload.entry)
    print(format_profile_report(module, profile, top=args.top))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args)
    module, space = workload.build()

    if args.scheme == "aj":
        report = AinsworthJonesPass(
            AinsworthJonesConfig(distance=args.distance)
        ).run(module)
        print(f"A&J injected {report.injection_count} prefetch slice(s)")
    elif args.scheme == "apt-get":
        if args.hints:
            hints = HintSet.from_json(Path(args.hints).read_text())
        else:
            profile_module, profile_space = workload.build()
            machine = _make_machine(profile_module, profile_space, args)
            profile = collect_profile(machine, workload.entry)
            hints = AptGet().analyze(profile_module, profile)
            print(f"profiled: {len(hints)} hint(s)")
        report = AptGetPass(hints).run(module)
        print(f"APT-GET injected {report.injection_count} prefetch slice(s)")

    machine = _make_machine(module, space, args)
    trace = machine.enable_tracing() if args.trace else None
    result = machine.run(workload.entry)
    print(f"{workload.name} [{args.scheme}]: ret={result.value}")
    _print_perf(result)
    _print_sw_prefetch(result)
    if trace is not None:
        from repro.obs.sites import format_site_reports, site_reports
        from repro.obs.timeline import write_chrome_trace

        write_chrome_trace(
            trace,
            args.trace,
            metadata={"workload": workload.name, "scheme": args.scheme},
        )
        counts = trace.event_counts()
        print(
            f"trace: {counts['spans']} prefetch span(s), "
            f"{counts['demand']} demand event(s) -> {args.trace} "
            "(open in https://ui.perfetto.dev)"
        )
        reports = site_reports(trace)
        if reports:
            print(format_site_reports(reports, histogram=False))
    if args.events:
        print("raw events:")
        for key, value in result.counters.as_dict().items():
            print(f"  {key:>28}: {value:,.0f}")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.ir.printer import format_module
    from repro.passes.ainsworth_jones import (
        AinsworthJonesConfig as _AJC,
        AinsworthJonesPass as _AJP,
    )

    workload = _resolve_workload(args)
    module, _ = workload.build()
    if args.scheme == "aj":
        _AJP(_AJC(distance=args.distance)).run(module)
    elif args.scheme == "apt-get":
        profile_module, profile_space = workload.build()
        machine = _make_machine(profile_module, profile_space, args)
        profile = collect_profile(machine, workload.entry)
        hints = AptGet().analyze(profile_module, profile)
        AptGetPass(hints).run(module)
    print(format_module(module))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.service.api import configure_service, get_service

    module = ALL_EXPERIMENTS.get(args.name)
    if module is None:
        print(f"unknown experiment {args.name!r}", file=sys.stderr)
        return 2
    explicit_service = (
        args.jobs is not None
        or args.cache_dir is not None
        or args.engine is not None
    )
    if explicit_service:
        service = configure_service(
            cache_dir=args.cache_dir,
            jobs=args.jobs or 1,
            machine_config=_machine_config(args),
        )
    else:
        service = get_service()
    if args.sweep:
        # Pre-warm the artifact cache with batched sweeps: sweep cells
        # are stored under exactly the keys sequential runs use, so the
        # experiment's measurements become cache hits.
        from repro.experiments.runner import scale_suite

        try:
            axes = parse_sweep_axes(args.sweep)
        except ValueError as error:
            print(f"experiment: {error}", file=sys.stderr)
            return 2
        for name in scale_suite(args.scale):
            warmed = service.sweep(
                name, args.scale, engine=args.engine, **axes
            )
            execution = warmed["execution"]
            print(
                f"prewarmed {name}: {execution['computed_cells']} "
                f"cell(s) computed, {execution['cached_cells']} cached"
            )
    result = module.run(args.scale)
    print(result.to_text())
    service.flush_metrics()
    if explicit_service:
        counters = service.metrics.counters()
        print(
            f"cache: {counters.get('cache.hits', 0)} hit(s), "
            f"{counters.get('cache.misses', 0)} miss(es), "
            f"{counters.get('service.jobs', 0)} job(s), "
            f"{counters.get('service.errors', 0)} error(s)"
        )
    if args.output:
        payload = {
            "experiment": result.experiment,
            "title": result.title,
            "headers": result.headers,
            "rows": result.rows,
            "summary": result.summary,
        }
        Path(args.output).write_text(json.dumps(payload, indent=2))
    return 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.service.store import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    stats = store.stats()
    kinds = " ".join(f"{k}={v}" for k, v in stats["by_kind"].items()) or "-"
    print(f"artifact cache at {stats['root']} (schema v{stats['schema']})")
    print(f"  entries: {stats['entries']} ({kinds})")
    print(f"  size: {stats['size_bytes']} bytes")
    print(f"  quarantined: {stats['quarantined']}")
    counters = store.read_metrics()
    print(
        "code cache: "
        f"{stats['by_kind'].get('codecache', 0)} compiled module(s), "
        f"{counters.get('codecache.hits', 0)} hit(s), "
        f"{counters.get('codecache.misses', 0)} miss(es), "
        f"{counters.get('codecache.invalidated', 0)} invalidated"
    )
    fallbacks = {
        name[len("batch.fallback."):]: value
        for name, value in counters.items()
        if name.startswith("batch.fallback.")
    }
    if fallbacks:
        detail = ", ".join(
            f"{code}={count}" for code, count in sorted(fallbacks.items())
        )
        print(f"batch fallbacks: {sum(fallbacks.values())} ({detail})")
    print("cumulative metrics:")
    if not counters:
        print("  (none recorded)")
    for name, value in sorted(counters.items()):
        print(f"  {name}: {value}")
    return 0


def cmd_cache_clear(args: argparse.Namespace) -> int:
    from repro.service.store import ArtifactStore

    removed = ArtifactStore(args.cache_dir).clear()
    print(f"cleared {removed} cached artifact(s) from {args.cache_dir}")
    return 0


def cmd_qa_fuzz(args: argparse.Namespace) -> int:
    from repro.qa.fuzz import run_fuzz

    corpus_dir = Path(args.corpus) if args.corpus else None
    stats = run_fuzz(
        budget=args.budget,
        seed=args.seed,
        corpus_dir=corpus_dir,
        shrink=not args.no_shrink,
        model_cases=args.model_cases,
        progress=print,
    )
    print(stats.summary())
    return 0 if stats.ok else 1


def cmd_qa_replay(args: argparse.Namespace) -> int:
    from repro.qa.corpus import default_corpus_dir, iter_cases
    from repro.qa.oracle import oracle_failure

    corpus_dir = Path(args.corpus) if args.corpus else default_corpus_dir()
    total = failures = 0
    for name, case in iter_cases(corpus_dir):
        total += 1
        failure = oracle_failure(case["spec"])
        if failure is None:
            print(f"  PASS {name}")
        else:
            failures += 1
            print(f"  FAIL {name}: {failure.summary()}")
    if not total:
        print(f"no corpus cases under {corpus_dir}")
        return 0
    print(f"replayed {total} case(s), {failures} failure(s)")
    return 0 if failures == 0 else 1


def cmd_qa_shrink(args: argparse.Namespace) -> int:
    from repro.qa.corpus import load_case, save_case
    from repro.qa.oracle import focused_config, oracle_failure
    from repro.qa.shrink import count_blocks, shrink_spec

    case = load_case(Path(args.case))
    spec = case["spec"]
    failure = oracle_failure(spec)
    if failure is None:
        print(f"{args.case}: passes the oracle; nothing to shrink")
        return 0
    print(f"{args.case}: {failure.summary()}")
    shrink_oracle = focused_config(failure)
    shrunk = shrink_spec(
        spec, lambda s: oracle_failure(s, shrink_oracle) is not None
    )
    blocks = count_blocks(shrunk)
    out_dir = Path(args.output) if args.output else Path(args.case).parent
    path = save_case(
        shrunk,
        corpus_dir=out_dir,
        failure=failure.to_dict(),
        note=f"shrunk from {case['name']} ({case.get('note', '')})".strip(),
    )
    print(f"shrunk to {blocks} block(s) -> {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.serve.controller import Controller

    if args.access_log:
        # The access log emits INFO records on ``repro.serve.http``;
        # give that logger a stderr handler so the CLI flag actually
        # produces output (the default root level is WARNING).
        logger = logging.getLogger("repro.serve.http")
        logger.setLevel(logging.INFO)
        if not logger.handlers:
            logger.addHandler(logging.StreamHandler())

    controller = Controller(
        args.queue_dir,
        cache_dir=args.cache_dir,
        agents=args.agents,
        host=args.host,
        port=args.port,
        lease=args.lease,
        max_attempts=args.max_attempts,
        max_depth=args.max_depth,
        engine=args.engine,
        telemetry=not args.no_telemetry,
        access_log=args.access_log,
    )
    controller.start()
    print(
        f"repro.serve: listening on http://{controller.host}:"
        f"{controller.port} (queue {args.queue_dir}, "
        f"{controller.num_agents} agent(s), lease {controller.lease:g}s)"
    )
    print("endpoints: POST /v1/jobs[?priority=N]  GET /v1/jobs/<id>  "
          "DELETE /v1/jobs/<id>  GET /v1/jobs/<id>/events  "
          "GET /v1/results/<id>  /healthz  /metrics")
    try:
        controller.wait()
    except KeyboardInterrupt:
        pass
    finally:
        controller.stop()
        stats = controller.queue.stats()
        print(f"stopped; queue states: {stats['by_state']}")
    return 0


def cmd_agent(args: argparse.Namespace) -> int:
    from repro.serve.agent import AgentWorker, main_loop

    worker = AgentWorker(
        args.queue_dir,
        cache_dir=args.cache_dir,
        agent_id=args.agent_id,
        lease=args.lease,
        poll_interval=args.poll,
        engine=args.engine,
        telemetry=not args.no_telemetry,
    )
    print(f"agent {worker.agent_id}: draining {args.queue_dir}")
    executed = main_loop(worker, max_jobs=args.max_jobs)
    print(f"agent {worker.agent_id}: executed {executed} job(s)")
    return 0


#: Histograms whose span-derived percentiles ``top`` surfaces, in
#: display order (queue-span latencies first, then job wall time).
_TOP_HISTOGRAMS = (
    "serve.span.claimed_seconds",
    "serve.span.running_seconds",
    "serve.span.job_seconds",
    "serve.job.seconds",
    "serve.claim.latency",
)


def _pid_alive(pid: int) -> bool:
    import os

    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def _render_top(queue_dir: str) -> str:
    """One frame of the ``top`` view (pure string; tested directly)."""
    import time as _time

    from repro.serve.agent import metrics_dir
    from repro.serve.queue import STATES, JobQueue
    from repro.service.metrics import (
        iter_snapshots,
        merge_snapshots,
        snapshot_quantile,
    )

    stats = JobQueue(queue_dir).stats()
    lines = [
        f"repro.serve top — queue {queue_dir} "
        f"({_time.strftime('%H:%M:%S')})",
        f"  depth {stats['depth']} live / {stats['total']} total",
        "  states  "
        + "  ".join(f"{s}={stats['by_state'][s]}" for s in STATES),
    ]
    snapshots = list(iter_snapshots(metrics_dir(queue_dir)))
    alive = 0
    agent_lines = []
    for path, _ in snapshots:
        try:
            pid = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        up = _pid_alive(pid)
        alive += up
        agent_lines.append(f"    pid {pid}: {'alive' if up else 'gone'}")
    lines.append(f"  workers {alive} alive / {len(agent_lines)} known")
    lines.extend(agent_lines)
    merged = merge_snapshots(metrics_dir(queue_dir)).to_dict()
    histograms = merged.get("histograms", {})
    shown = [n for n in _TOP_HISTOGRAMS if n in histograms]
    shown += sorted(n for n in histograms if n not in _TOP_HISTOGRAMS)
    if shown:
        lines.append("  latency percentiles (seconds)")
    for name in shown:
        data = histograms[name]
        quantiles = " ".join(
            f"p{int(q * 100)}={value:.4f}"
            for q, value in (
                (q, snapshot_quantile(data, q)) for q in (0.5, 0.9, 0.99)
            )
            if value is not None
        )
        if quantiles:
            lines.append(
                f"    {name:<28} {quantiles} (n={data['count']})"
            )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    iterations = args.iterations
    shown = 0
    try:
        while True:
            frame = _render_top(args.queue_dir)
            if not args.no_clear and shown:
                print("\x1b[2J\x1b[H", end="")
            print(frame)
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import merged_timeline, telemetry_dir
    from repro.obs.timeline import validate_chrome_trace

    try:
        document = merged_timeline(
            telemetry_dir(args.queue_dir), job=args.job, trace=args.trace
        )
    except ValueError as exc:
        print(f"timeline: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"timeline: invalid document: {problem}", file=sys.stderr)
        return 1
    Path(args.output).write_text(
        json.dumps(document, indent=1, sort_keys=True)
    )
    meta = document["otherData"]
    print(
        f"timeline: {len(document['traceEvents'])} event(s) from "
        f"{len(meta['traces'])} trace(s) ({len(meta['sim_traces'])} with "
        f"simulator timelines) -> {args.output} "
        "(open in https://ui.perfetto.dev)"
    )
    return 0


def _add_common_flags(p: argparse.ArgumentParser) -> None:
    """The normalized per-workload flags shared by every subcommand:
    ``--workload``, ``--scale``, ``--engine``."""
    p.add_argument("--workload", "-w", required=True, help="workload name")
    p.add_argument(
        "--scale",
        choices=_SCALES,
        default="small",
        help="input tier (default: small)",
    )
    p.add_argument(
        "--engine",
        choices=ENGINES + tuple(ENGINE_ALIASES),
        default=None,
        help="execution engine (default: REPRO_ENGINE env var, else fast)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="apt-get-prefetch",
        description="APT-GET profile-guided software prefetching (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and experiments").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser("profile", help="collect an LBR/PEBS profile")
    _add_common_flags(p)
    p.add_argument("--output", "-o", default="profile.json")
    p.add_argument("--period", type=int, default=None)
    p.add_argument(
        "--runs", type=int, default=1, help="profiling runs to merge"
    )
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("analyze", help="profile -> prefetch hints")
    _add_common_flags(p)
    p.add_argument("--profile", required=True)
    p.add_argument("--output", "-o", default="hints.json")
    p.add_argument("--k", type=float, default=5.0, help="Eq-2 constant")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("report", help="perf-report-style profile summary")
    _add_common_flags(p)
    p.add_argument(
        "--profile", default=None, help="profile JSON (default: profile now)"
    )
    p.add_argument("--top", type=int, default=10)
    p.add_argument(
        "--sites",
        action="store_true",
        help="per-injection-site prefetch timeliness (Eq-1 vs a fixed-"
        "distance inner-site baseline) from traced runs",
    )
    p.add_argument(
        "--distance",
        dest="fixed_distance",
        type=int,
        default=4,
        help="distance for the naive baseline compared by --sites",
    )
    # Hidden legacy spelling of --distance.
    p.add_argument(
        "--fixed-distance",
        dest="fixed_distance",
        type=int,
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    _add_sweep_flag(
        p, "print a batched config-sweep table instead of a profile report"
    )
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("run", help="run a workload under a scheme")
    _add_common_flags(p)
    p.add_argument(
        "--scheme", choices=("baseline", "aj", "apt-get"), default="baseline"
    )
    p.add_argument(
        "--distance", type=int, default=32, help="static distance for --scheme aj"
    )
    p.add_argument("--hints", default=None, help="hint file for --scheme apt-get")
    p.add_argument(
        "--events", action="store_true", help="also dump raw PMU counters"
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="trace the prefetch lifecycle and export a Chrome-trace/"
        "Perfetto timeline to this file",
    )
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "sweep",
        help="measure a scheme × distance × cache-scale grid in one "
        "batched pass",
    )
    _add_common_flags(p)
    _add_sweep_flag(p, "one sweep axis, e.g. --sweep distances=4,8,16")
    p.add_argument(
        "--cache-dir",
        default=None,
        help="persistent artifact cache directory (default: in-memory)",
    )
    p.add_argument(
        "--output", "-o", default=None,
        help="also write the SweepResult payload JSON here",
    )
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "disasm", help="print a workload's IR (optionally after a pass)"
    )
    _add_common_flags(p)
    p.add_argument(
        "--scheme", choices=("baseline", "aj", "apt-get"), default="baseline"
    )
    p.add_argument("--distance", type=int, default=32)
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name")
    p.add_argument("--scale", choices=_SCALES, default="small")
    p.add_argument(
        "--engine",
        choices=ENGINES + tuple(ENGINE_ALIASES),
        default=None,
        help="execution engine for uncached measurements",
    )
    p.add_argument("--output", "-o", default=None, help="also write JSON")
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for suite measurements (default: 1)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="persistent artifact cache directory (default: in-memory)",
    )
    _add_sweep_flag(
        p, "pre-warm the cache with batched sweeps over the suite"
    )
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser(
        "cache", help="inspect or clear a tuning-service artifact cache"
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pc = cache_sub.add_parser("stats", help="entry counts + cumulative metrics")
    pc.add_argument("--cache-dir", required=True)
    pc.set_defaults(fn=cmd_cache_stats)
    pc = cache_sub.add_parser("clear", help="delete every cached artifact")
    pc.add_argument("--cache-dir", required=True)
    pc.set_defaults(fn=cmd_cache_clear)

    p = sub.add_parser(
        "qa", help="differential fuzzing and the regression corpus"
    )
    qa_sub = p.add_subparsers(dest="qa_command", required=True)
    pq = qa_sub.add_parser(
        "fuzz", help="fuzz generated programs through the full oracle"
    )
    pq.add_argument(
        "--budget", type=int, default=50, help="programs to generate"
    )
    pq.add_argument("--seed", type=int, default=0, help="base seed")
    pq.add_argument(
        "--corpus",
        default=None,
        help="save shrunk failures here (default: do not save)",
    )
    pq.add_argument(
        "--model-cases",
        type=int,
        default=100,
        help="Eq-1/Eq-2 analytic oracle cases to sweep first",
    )
    pq.add_argument(
        "--no-shrink", action="store_true", help="skip failure minimization"
    )
    pq.set_defaults(fn=cmd_qa_fuzz)
    pq = qa_sub.add_parser(
        "replay", help="re-run the oracle over every corpus case"
    )
    pq.add_argument(
        "--corpus", default=None, help="corpus dir (default: tests/corpus)"
    )
    pq.set_defaults(fn=cmd_qa_replay)
    pq = qa_sub.add_parser(
        "shrink", help="minimize one failing corpus case file"
    )
    pq.add_argument("case", help="path to a corpus case JSON")
    pq.add_argument(
        "--output",
        "-o",
        default=None,
        help="directory for the shrunk case (default: alongside the input)",
    )
    pq.set_defaults(fn=cmd_qa_shrink)

    p = sub.add_parser(
        "serve",
        help="controller: durable job queue + HTTP API + agent workers",
    )
    p.add_argument(
        "--queue-dir", required=True, help="durable queue directory"
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="shared artifact cache (default: <queue-dir>/cache)",
    )
    p.add_argument(
        "--agents", type=int, default=1,
        help="agent worker processes to spawn (0 = front end only)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023)
    p.add_argument(
        "--lease", type=float, default=30.0,
        help="claim lease seconds (a dead agent's job is requeued "
        "after at most this long)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3,
        help="claims a job may burn before parking as failed/lost",
    )
    p.add_argument(
        "--max-depth", type=int, default=None,
        help="backpressure bound on live jobs (429 past it)",
    )
    p.add_argument(
        "--engine",
        choices=ENGINES + tuple(ENGINE_ALIASES),
        default=None,
        help="execution engine for agent measurements",
    )
    p.add_argument(
        "--access-log",
        action="store_true",
        help="log every HTTP request as one JSON line at INFO",
    )
    p.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable job-lifecycle span journaling (and the "
        "/v1/jobs/<id>/events endpoint)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "agent", help="standalone agent worker for an existing queue"
    )
    p.add_argument("--queue-dir", required=True)
    p.add_argument(
        "--cache-dir", default=None,
        help="shared artifact cache (default: <queue-dir>/cache)",
    )
    p.add_argument("--agent-id", default=None, help="override the agent id")
    p.add_argument("--lease", type=float, default=30.0)
    p.add_argument(
        "--poll", type=float, default=0.2,
        help="idle poll interval in seconds",
    )
    p.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after this many jobs (default: run until signalled)",
    )
    p.add_argument(
        "--engine",
        choices=ENGINES + tuple(ENGINE_ALIASES),
        default=None,
        help="execution engine for measurements",
    )
    p.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable job-lifecycle span journaling",
    )
    p.set_defaults(fn=cmd_agent)

    p = sub.add_parser(
        "top",
        help="polling status view of a queue: depth, per-state counts, "
        "worker liveness, span latency percentiles",
    )
    p.add_argument("--queue-dir", required=True)
    p.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    p.add_argument(
        "--iterations", type=int, default=None,
        help="frames to render before exiting (default: until Ctrl-C)",
    )
    p.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "timeline",
        help="export a queue's merged service+simulator telemetry as "
        "Perfetto/Chrome-trace JSON",
    )
    p.add_argument("--queue-dir", required=True)
    p.add_argument("--output", "-o", default="timeline.json")
    p.add_argument(
        "--job", default=None, help="restrict to one job id"
    )
    p.add_argument(
        "--trace", default=None, help="restrict to one trace id"
    )
    p.set_defaults(fn=cmd_timeline)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
