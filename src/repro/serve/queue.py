"""Durable on-disk job queue for the controller/agent service.

One sqlite database (``<queue-dir>/queue.sqlite3``) holds every job the
service has ever been asked to run.  All state transitions happen
inside ``BEGIN IMMEDIATE`` transactions, so they are atomic across
processes and crash-safe: a SIGKILL at any point leaves the queue in
the last committed state, never a torn one.

Job lifecycle::

    submit ──> queued ──claim──> claimed ──start──> running ──complete──> done
                 ▲                  │                  │
                 │                  ├──fail (retries left, backoff)──┐
                 │                  │                  │             │
                 ├──────────────────┴──────────────────┴─────────────┘
                 │                  │                  │
                 │       lease lapses (reap): retries left -> queued
                 │                  │                  │
                 │                  └──> lost   (no retries left)
                 ├── fail with no retries left ──> failed
                 └── cancel ──> cancelled   (queued: immediately;
                                claimed/running: at the agent's next
                                start/heartbeat check-in)

* **Leases + heartbeats** — a claim grants a time-bounded lease; the
  agent extends it by heartbeating.  A job whose lease lapses (agent
  SIGKILLed, wedged, partitioned) is *reaped*: requeued with backoff if
  attempts remain, else marked ``lost``.  Reaping happens inside every
  ``claim`` and in the controller's reaper loop, so lost work is
  recovered even when only agents (or only the controller) survive.
* **Retry with backoff** — an application failure requeues the job with
  ``not_before = now + backoff * 2**(attempts-1)`` until
  ``max_attempts`` claims have been burned, then parks it as
  ``failed`` (terminal, with the error recorded).
* **Idempotent dedup** — jobs are keyed by the same engine-aware
  artifact-key digests :class:`~repro.service.api.TuningService`
  computes (see :meth:`TuningService.request_key`), so submitting the
  same request twice returns the same job; resubmitting a terminal
  ``failed``/``lost`` job revives it with a fresh retry budget.
* **Backpressure** — an optional ``max_depth`` bounds live (queued +
  claimed + running) jobs; past it, ``submit`` raises
  :class:`QueueFull` (the HTTP front end maps this to 429).
* **Priority** — claims pop the highest ``priority`` first, oldest
  ``queued_at`` breaking ties, so urgent work preempts the backlog
  without starving equal-priority jobs.
* **Cancellation** — ``cancel`` flips queued jobs straight to the
  terminal ``cancelled`` state; for active jobs it sets a
  ``cancel_requested`` flag honored at the agent's next
  ``start``/``heartbeat`` (and by the reaper if the agent died), while
  a ``complete`` that races the flag wins — finished work is kept.
  Cancelled jobs revive on resubmit exactly like ``failed``/``lost``.

Every mutation is attributed: completes/fails/heartbeats must name the
agent holding the lease, so a zombie agent whose job was reclaimed
cannot clobber the rightful owner's result.

**Telemetry** — every job carries a ``trace_id`` correlation id, and
when a :class:`~repro.obs.telemetry.Telemetry` sink is attached each
lifecycle transition journals span events (deterministic ids
``<job>:<state>:a<attempt>`` under a ``job`` root span, plus
``dedup``/``resubmit``/``retry``/``lease-reclaim`` instants).  Events
are collected *inside* the transaction but emitted only after COMMIT,
so a rolled-back transition never journals phantom spans; whichever
process commits a transition emits its events, which is why span ids
are deterministic rather than process-local.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.obs.telemetry import Telemetry
from repro.service.metrics import MetricsRegistry

#: Valid job states (the journal/state-machine vocabulary).
STATES = (
    "queued", "claimed", "running", "done", "failed", "lost", "cancelled",
)

#: States a job can be in while an agent may still act on it.
ACTIVE_STATES = ("claimed", "running")

#: States counting against the ``max_depth`` backpressure bound.
LIVE_STATES = ("queued", "claimed", "running")

#: Terminal states (nothing will happen without a resubmit).
TERMINAL_STATES = ("done", "failed", "lost", "cancelled")

DEFAULT_LEASE = 30.0
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF = 0.5

#: Buckets for the submit->claim latency histogram (seconds).
CLAIM_LATENCY_BUCKETS = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0, 300.0,
)

#: Buckets for the span-latency histograms (claimed/running/whole-job).
SPAN_SECONDS_BUCKETS = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0, 300.0,
    1800.0,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            TEXT PRIMARY KEY,
    dedup_key     TEXT NOT NULL UNIQUE,
    kind          TEXT NOT NULL,
    request       TEXT NOT NULL,
    state         TEXT NOT NULL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL,
    agent         TEXT,
    created       REAL NOT NULL,
    updated       REAL NOT NULL,
    queued_at     REAL NOT NULL,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_expires REAL,
    result        TEXT,
    error         TEXT,
    trace_id      TEXT,
    priority      INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state, not_before, queued_at);
CREATE INDEX IF NOT EXISTS jobs_claim_order
    ON jobs(state, not_before, priority DESC, queued_at);
"""

_COLUMNS = (
    "id", "dedup_key", "kind", "request", "state", "attempts",
    "max_attempts", "agent", "created", "updated", "queued_at",
    "not_before", "lease_expires", "result", "error", "trace_id",
    "priority", "cancel_requested",
)

#: Columns added after the v1 schema; existing databases are migrated
#: in place with ``ALTER TABLE`` (CREATE TABLE IF NOT EXISTS never adds
#: columns to an existing table).
_MIGRATIONS = (
    ("trace_id", "ALTER TABLE jobs ADD COLUMN trace_id TEXT"),
    ("priority",
     "ALTER TABLE jobs ADD COLUMN priority INTEGER NOT NULL DEFAULT 0"),
    ("cancel_requested",
     "ALTER TABLE jobs ADD COLUMN cancel_requested INTEGER NOT NULL"
     " DEFAULT 0"),
)


class QueueFull(RuntimeError):
    """``submit`` refused: the queue is at its ``max_depth`` bound."""


@dataclass
class JobRecord:
    """One job row, decoded.  ``request``/``result`` are payload dicts."""

    id: str
    dedup_key: str
    kind: str
    request: dict
    state: str
    attempts: int
    max_attempts: int
    agent: Optional[str]
    created: float
    updated: float
    queued_at: float
    not_before: float
    lease_expires: Optional[float]
    result: Optional[dict]
    error: Optional[str]
    trace_id: Optional[str] = None
    priority: int = 0
    cancel_requested: int = 0

    @classmethod
    def from_row(cls, row) -> "JobRecord":
        data = dict(zip(_COLUMNS, row))
        data["request"] = json.loads(data["request"])
        if data["result"] is not None:
            data["result"] = json.loads(data["result"])
        return cls(**data)

    def as_dict(self, include_request: bool = False) -> dict:
        """JSON-safe status view (what ``GET /v1/jobs/<id>`` serves)."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "agent": self.agent,
            "created": self.created,
            "updated": self.updated,
            "error": self.error,
            "trace": self.trace_id,
            "priority": self.priority,
            "cancel_requested": bool(self.cancel_requested),
        }
        if include_request:
            out["request"] = self.request
        return out


class JobQueue:
    """The durable queue; see the module docstring for semantics.

    ``clock`` is injectable so tests (including the stateful property
    tests) can drive lease expiry deterministically.  Every public
    method opens its own short-lived sqlite connection, so one
    :class:`JobQueue` instance is safe to share across threads and the
    same directory is safe to share across processes.
    """

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        *,
        lease: float = DEFAULT_LEASE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = DEFAULT_BACKOFF,
        max_depth: Optional[int] = None,
        clock: Callable[[], float] = time.time,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.queue_dir = Path(queue_dir)
        self.db_path = self.queue_dir / "queue.sqlite3"
        self.lease = float(lease)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff = float(backoff)
        self.max_depth = max_depth
        self.clock = clock
        self.metrics = metrics or MetricsRegistry()
        self.telemetry = telemetry
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        # executescript() commits on its own; no transaction wrapper.
        conn = sqlite3.connect(self.db_path, timeout=30.0)
        try:
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(jobs)")
            }
            migrated = False
            for column, statement in _MIGRATIONS:
                if column not in columns:
                    conn.execute(statement)
                    migrated = True
            if migrated:
                conn.commit()
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Connection / transaction plumbing.
    # ------------------------------------------------------------------
    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(self.db_path, timeout=30.0, isolation_level=None)
        try:
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("BEGIN IMMEDIATE")
            yield conn
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        finally:
            conn.close()

    def _fetch(self, conn: sqlite3.Connection, job_id: str) -> Optional[JobRecord]:
        row = conn.execute(
            f"SELECT {', '.join(_COLUMNS)} FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        return JobRecord.from_row(row) if row is not None else None

    # ------------------------------------------------------------------
    # Span-event plumbing (collected in-tx, emitted after COMMIT).
    # ------------------------------------------------------------------
    @staticmethod
    def _span(job_id: str, state: str, attempts: int) -> str:
        """Deterministic cross-process span id for one state visit."""
        return f"{job_id}:{state}:a{attempts}"

    def _note(
        self, pending: list, ev: str, trace: Optional[str], name: str,
        *, span: str, job: str, t: float, parent: Optional[str] = None,
        **attrs,
    ) -> None:
        if self.telemetry is None or not trace:
            return
        base = {"trace": trace, "name": name, "span": span, "job": job,
                "t": t}
        if parent is not None:
            base["parent"] = parent
        pending.append((ev, base, attrs))

    def _flush_events(self, pending: list) -> None:
        if self.telemetry is None:
            return
        for ev, base, attrs in pending:
            self.telemetry.emit(ev, **base, **attrs)

    def _terminal_events(
        self, pending: list, job_id: str, trace: Optional[str],
        state: str, attempts: int, now: float, updated: float,
        created: float, outcome: str, error: Optional[str] = None,
    ) -> None:
        """Close the active state span and the ``job`` root span."""
        attrs = {} if error is None else {"error": error}
        if state in ACTIVE_STATES:
            self.metrics.histogram(
                "serve.span.running_seconds", SPAN_SECONDS_BUCKETS
            ).observe(max(0.0, now - updated))
            self._note(pending, "close", trace, state,
                       span=self._span(job_id, state, attempts),
                       job=job_id, t=now, **attrs)
        self.metrics.histogram(
            "serve.span.job_seconds", SPAN_SECONDS_BUCKETS
        ).observe(max(0.0, now - created))
        self._note(pending, "close", trace, "job", span=job_id,
                   job=job_id, t=now, state=outcome, **attrs)

    @staticmethod
    def _short_error(error: Optional[str]) -> Optional[str]:
        """Last line of a traceback, bounded — span attrs, not logs."""
        if not error:
            return error
        line = error.strip().splitlines()[-1]
        return line[:200]

    # ------------------------------------------------------------------
    # Submission + dedup.
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        request: dict,
        *,
        dedup_key: Optional[str] = None,
        max_attempts: Optional[int] = None,
        trace_id: Optional[str] = None,
        priority: int = 0,
    ) -> tuple[JobRecord, bool]:
        """Enqueue a request; returns ``(record, deduped)``.

        ``dedup_key`` is normally the request's artifact-key digest.  A
        live or ``done`` job with the same key is returned as-is
        (``deduped=True``); a terminal ``failed``/``lost``/``cancelled``
        one is revived in place with a fresh attempt budget.  With no
        key, the job id itself is used (no dedup).  ``trace_id``
        propagates a caller-supplied correlation id; omitted, a fresh
        one is minted.  A dedup hit keeps the original job's trace id
        (the duplicate submission is journaled as a ``dedup`` instant).

        ``priority`` orders claims: higher first, age breaking ties
        (default 0; negative deprioritizes).  A dedup hit on a *queued*
        job raises its priority to the larger of the two, so a later
        urgent submission accelerates the queued duplicate instead of
        being swallowed by it.
        """
        now = self.clock()
        encoded = json.dumps(request, sort_keys=True)
        budget = self.max_attempts if max_attempts is None else max(1, int(max_attempts))
        job_id = "j-" + uuid.uuid4().hex[:12]
        key = dedup_key if dedup_key is not None else job_id
        pending: list = []
        with self._tx() as conn:
            self._reap(conn, now, pending)
            row = conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM jobs WHERE dedup_key=?",
                (key,),
            ).fetchone()
            if row is not None:
                record = JobRecord.from_row(row)
                if record.state in ("failed", "lost", "cancelled"):
                    prior = record.state
                    conn.execute(
                        "UPDATE jobs SET state='queued', attempts=0, agent=NULL,"
                        " lease_expires=NULL, result=NULL, error=NULL,"
                        " not_before=0, queued_at=?, updated=?, max_attempts=?,"
                        " priority=?, cancel_requested=0,"
                        " trace_id=COALESCE(trace_id, ?) WHERE id=?",
                        (now, now, budget, int(priority), trace_id, record.id),
                    )
                    self.metrics.inc("serve.resubmitted")
                    record = self._fetch(conn, record.id)
                    trace = record.trace_id
                    self._note(pending, "point", trace, "resubmit",
                               span=record.id, job=record.id, t=now,
                               prior=prior)
                    self._note(pending, "open", trace, "job", span=record.id,
                               job=record.id, t=now, kind=record.kind,
                               revived=True)
                    self._note(pending, "open", trace, "queued",
                               span=self._span(record.id, "queued", 0),
                               job=record.id, t=now, parent=record.id)
                    outcome = (record, False)
                else:
                    if (
                        record.state == "queued"
                        and int(priority) > record.priority
                    ):
                        conn.execute(
                            "UPDATE jobs SET priority=?, updated=?"
                            " WHERE id=? AND state='queued'",
                            (int(priority), now, record.id),
                        )
                        record = self._fetch(conn, record.id)
                    self.metrics.inc("serve.deduped")
                    self._note(pending, "point", record.trace_id, "dedup",
                               span=record.id, job=record.id, t=now)
                    outcome = (record, True)
            else:
                if self.max_depth is not None:
                    live = conn.execute(
                        "SELECT COUNT(*) FROM jobs WHERE state IN (?,?,?)",
                        LIVE_STATES,
                    ).fetchone()[0]
                    if live >= self.max_depth:
                        self.metrics.inc("serve.rejected_full")
                        raise QueueFull(
                            f"queue at max depth {self.max_depth} "
                            f"({live} live job(s))"
                        )
                trace = trace_id or ("tr-" + uuid.uuid4().hex[:12])
                conn.execute(
                    "INSERT INTO jobs (id, dedup_key, kind, request, state,"
                    " attempts, max_attempts, created, updated, queued_at,"
                    " not_before, trace_id, priority)"
                    " VALUES (?,?,?,?, 'queued', 0, ?, ?, ?, ?, 0, ?, ?)",
                    (job_id, key, kind, encoded, budget, now, now, now, trace,
                     int(priority)),
                )
                self.metrics.inc("serve.submitted")
                self._note(pending, "open", trace, "job", span=job_id,
                           job=job_id, t=now, kind=kind)
                self._note(pending, "open", trace, "queued",
                           span=self._span(job_id, "queued", 0), job=job_id,
                           t=now, parent=job_id)
                outcome = (self._fetch(conn, job_id), False)
        self._flush_events(pending)
        return outcome

    # ------------------------------------------------------------------
    # Claim / heartbeat / transitions.
    # ------------------------------------------------------------------
    def claim(self, agent: str) -> Optional[JobRecord]:
        """Claim the best runnable job for ``agent`` (or ``None``).

        "Best" is highest priority first, then oldest (``queued_at``),
        then id — so priority preempts age but never starves equal-
        priority work.  Also reaps lapsed leases first, so a dead
        agent's work is recovered by whichever live agent claims next —
        no controller required.
        """
        now = self.clock()
        pending: list = []
        with self._tx() as conn:
            self._reap(conn, now, pending)
            row = conn.execute(
                "SELECT id, queued_at, attempts, trace_id FROM jobs"
                " WHERE state='queued' AND not_before<=?"
                " ORDER BY priority DESC, queued_at, id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                record = None
            else:
                job_id, queued_at, attempts, trace = row
                conn.execute(
                    "UPDATE jobs SET state='claimed', agent=?, attempts=attempts+1,"
                    " lease_expires=?, updated=? WHERE id=? AND state='queued'",
                    (agent, now + self.lease, now, job_id),
                )
                self.metrics.inc("serve.claimed")
                self.metrics.histogram(
                    "serve.claim_seconds", CLAIM_LATENCY_BUCKETS
                ).observe(max(0.0, now - queued_at))
                self._note(pending, "close", trace, "queued",
                           span=self._span(job_id, "queued", attempts),
                           job=job_id, t=now)
                self._note(pending, "open", trace, "claimed",
                           span=self._span(job_id, "claimed", attempts + 1),
                           job=job_id, t=now, parent=job_id, agent=agent)
                record = self._fetch(conn, job_id)
        self._flush_events(pending)
        return record

    def start(self, job_id: str, agent: str) -> bool:
        """claimed -> running (lease also refreshed).

        ``False`` also covers a cancel that raced the claim: the job is
        flipped to ``cancelled`` before any work starts.
        """
        now = self.clock()
        pending: list = []
        with self._tx() as conn:
            row = conn.execute(
                "SELECT attempts, trace_id, updated, created,"
                " cancel_requested FROM jobs"
                " WHERE id=? AND agent=? AND state='claimed'",
                (job_id, agent),
            ).fetchone()
            if row is not None and row[4]:
                attempts, trace, claimed_at, created, _ = row
                self._cancel_active(
                    conn, pending, job_id, "claimed", attempts, trace,
                    claimed_at, created, now,
                )
                self._flush_events(pending)
                return False
            cur = conn.execute(
                "UPDATE jobs SET state='running', lease_expires=?, updated=?"
                " WHERE id=? AND agent=? AND state='claimed'",
                (now + self.lease, now, job_id, agent),
            )
            ok = cur.rowcount == 1
            if ok and row is not None:
                attempts, trace, claimed_at = row[:3]
                self.metrics.histogram(
                    "serve.span.claimed_seconds", SPAN_SECONDS_BUCKETS
                ).observe(max(0.0, now - claimed_at))
                self._note(pending, "close", trace, "claimed",
                           span=self._span(job_id, "claimed", attempts),
                           job=job_id, t=now)
                self._note(pending, "open", trace, "running",
                           span=self._span(job_id, "running", attempts),
                           job=job_id, t=now, parent=job_id, agent=agent)
        self._flush_events(pending)
        return ok

    def heartbeat(self, job_id: str, agent: str) -> bool:
        """Extend the lease; ``False`` means stop working on the job.

        ``False`` covers both "reclaimed from under us" and "cancel
        requested": a cancellation that lands while the job is active is
        honored here, at the next heartbeat — the job flips to
        ``cancelled`` and the agent abandons the work.
        """
        now = self.clock()
        pending: list = []
        with self._tx() as conn:
            row = conn.execute(
                "SELECT state, attempts, trace_id, updated, created,"
                " cancel_requested FROM jobs"
                " WHERE id=? AND agent=? AND state IN (?, ?)",
                (job_id, agent, *ACTIVE_STATES),
            ).fetchone()
            if row is None:
                ok = False
            elif row[5]:
                state, attempts, trace, updated, created, _ = row
                self._cancel_active(
                    conn, pending, job_id, state, attempts, trace,
                    updated, created, now,
                )
                ok = False
            else:
                conn.execute(
                    "UPDATE jobs SET lease_expires=?, updated=?"
                    " WHERE id=? AND agent=? AND state IN (?, ?)",
                    (now + self.lease, now, job_id, agent, *ACTIVE_STATES),
                )
                ok = True
        if ok:
            self.metrics.inc("serve.heartbeats")
        self._flush_events(pending)
        return ok

    def _cancel_active(
        self, conn: sqlite3.Connection, pending: list, job_id: str,
        state: str, attempts: int, trace: Optional[str], updated: float,
        created: float, now: float,
    ) -> None:
        """Flip an active job with a pending cancel to ``cancelled``."""
        conn.execute(
            "UPDATE jobs SET state='cancelled', agent=NULL,"
            " lease_expires=NULL, updated=?,"
            " error=COALESCE(error, 'cancelled') WHERE id=?",
            (now, job_id),
        )
        self.metrics.inc("serve.cancelled")
        self._terminal_events(
            pending, job_id, trace, state, attempts, now, updated,
            created, "cancelled", error="cancelled",
        )

    def complete(self, job_id: str, agent: str, result: dict) -> bool:
        """running|claimed -> done, recording the result payload."""
        now = self.clock()
        pending: list = []
        with self._tx() as conn:
            row = conn.execute(
                "SELECT state, attempts, trace_id, updated, created FROM jobs"
                " WHERE id=? AND agent=? AND state IN (?, ?)",
                (job_id, agent, *ACTIVE_STATES),
            ).fetchone()
            cur = conn.execute(
                "UPDATE jobs SET state='done', result=?, error=NULL,"
                " lease_expires=NULL, cancel_requested=0, updated=?"
                " WHERE id=? AND agent=? AND state IN (?, ?)",
                (
                    json.dumps(result, sort_keys=True),
                    now, job_id, agent, *ACTIVE_STATES,
                ),
            )
            ok = cur.rowcount == 1
            if ok and row is not None:
                state, attempts, trace, updated, created = row
                self._terminal_events(
                    pending, job_id, trace, state, attempts, now, updated,
                    created, "done",
                )
        if ok:
            self.metrics.inc("serve.done")
        else:
            self.metrics.inc("serve.stale_completions")
        self._flush_events(pending)
        return ok

    def fail(self, job_id: str, agent: str, error: str) -> Optional[str]:
        """Record an application failure.

        Returns the job's new state (``queued`` if it will be retried,
        ``failed`` if its attempt budget is spent, ``cancelled`` if a
        cancel was pending — no point retrying work nobody wants) or
        ``None`` when the job was not ours to fail (reclaimed from
        under us).
        """
        now = self.clock()
        pending: list = []
        with self._tx() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts, state, trace_id, updated,"
                " created, cancel_requested FROM jobs"
                " WHERE id=? AND agent=? AND state IN (?, ?)",
                (job_id, agent, *ACTIVE_STATES),
            ).fetchone()
            if row is None:
                self.metrics.inc("serve.stale_failures")
                return None
            (attempts, max_attempts, state, trace, updated, created,
             cancel_requested) = row
            brief = self._short_error(error)
            if cancel_requested:
                self._cancel_active(
                    conn, pending, job_id, state, attempts, trace,
                    updated, created, now,
                )
                self._flush_events(pending)
                return "cancelled"
            if attempts >= max_attempts:
                conn.execute(
                    "UPDATE jobs SET state='failed', error=?, agent=NULL,"
                    " lease_expires=NULL, updated=? WHERE id=?",
                    (error, now, job_id),
                )
                self.metrics.inc("serve.failed")
                self._terminal_events(
                    pending, job_id, trace, state, attempts, now, updated,
                    created, "failed", error=brief,
                )
                new_state = "failed"
            else:
                delay = self._backoff_delay(attempts)
                conn.execute(
                    "UPDATE jobs SET state='queued', error=?, agent=NULL,"
                    " lease_expires=NULL, not_before=?, queued_at=?, updated=?"
                    " WHERE id=?",
                    (error, now + delay, now, now, job_id),
                )
                self.metrics.inc("serve.retries")
                self._note(pending, "close", trace, state,
                           span=self._span(job_id, state, attempts),
                           job=job_id, t=now, error=brief)
                self._note(pending, "point", trace, "retry", span=job_id,
                           job=job_id, t=now, attempt=attempts,
                           backoff=round(delay, 6))
                self._note(pending, "open", trace, "queued",
                           span=self._span(job_id, "queued", attempts),
                           job=job_id, t=now, parent=job_id)
                new_state = "queued"
        self._flush_events(pending)
        return new_state

    def _backoff_delay(self, attempts: int) -> float:
        return self.backoff * (2 ** max(0, attempts - 1))

    # ------------------------------------------------------------------
    # Cancellation.
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Optional[str]:
        """Request cancellation; returns the job's resulting state.

        * ``queued`` jobs flip to ``cancelled`` immediately (terminal).
        * Active (``claimed``/``running``) jobs get ``cancel_requested``
          set and keep running until the owning agent next checks in —
          ``start``/``heartbeat`` then flip the job to ``cancelled``
          and tell the agent to abandon the work.  Returns
          ``"cancelling"``.  A ``complete``/``fail`` that lands before
          that check-in wins the race: finished work is kept.
        * Terminal jobs are left untouched (their state is returned, so
          the HTTP layer can answer 409 for ``done``/``failed``/``lost``
          and idempotent 200 for ``cancelled``).
        * Unknown ids return ``None``.
        """
        now = self.clock()
        pending: list = []
        with self._tx() as conn:
            record = self._fetch(conn, job_id)
            if record is None:
                return None
            if record.state == "queued":
                conn.execute(
                    "UPDATE jobs SET state='cancelled', agent=NULL,"
                    " lease_expires=NULL, updated=?,"
                    " error=COALESCE(error, 'cancelled') WHERE id=?",
                    (now, job_id),
                )
                self.metrics.inc("serve.cancelled")
                self._note(pending, "close", record.trace_id, "queued",
                           span=self._span(job_id, "queued", record.attempts),
                           job=job_id, t=now, cancelled=True)
                self._note(pending, "close", record.trace_id, "job",
                           span=job_id, job=job_id, t=now, state="cancelled")
                outcome = "cancelled"
            elif record.state in ACTIVE_STATES:
                if not record.cancel_requested:
                    conn.execute(
                        "UPDATE jobs SET cancel_requested=1, updated=?"
                        " WHERE id=?",
                        (now, job_id),
                    )
                    self.metrics.inc("serve.cancel_requested")
                    self._note(pending, "point", record.trace_id,
                               "cancel-request", span=job_id, job=job_id,
                               t=now, state=record.state)
                outcome = "cancelling"
            else:
                outcome = record.state
        self._flush_events(pending)
        return outcome

    # ------------------------------------------------------------------
    # Lease reaping (crash recovery).
    # ------------------------------------------------------------------
    def _reap(
        self, conn: sqlite3.Connection, now: float,
        pending: Optional[list] = None,
    ) -> int:
        """Requeue (or park as ``lost``) every job whose lease lapsed."""
        if pending is None:
            pending = []
        rows = conn.execute(
            "SELECT id, attempts, max_attempts, state, trace_id, updated,"
            " created, cancel_requested FROM jobs"
            " WHERE state IN (?, ?) AND lease_expires IS NOT NULL"
            " AND lease_expires<?",
            (*ACTIVE_STATES, now),
        ).fetchall()
        for (job_id, attempts, max_attempts, state, trace, updated,
             created, cancel_requested) in rows:
            self._note(pending, "point", trace, "lease-reclaim", span=job_id,
                       job=job_id, t=now, attempt=attempts, state=state)
            if cancel_requested:
                # A cancel was pending when the agent died; honor it
                # instead of requeueing work nobody wants anymore.
                self._cancel_active(
                    conn, pending, job_id, state, attempts, trace,
                    updated, created, now,
                )
            elif attempts >= max_attempts:
                conn.execute(
                    "UPDATE jobs SET state='lost', agent=NULL,"
                    " lease_expires=NULL, updated=?,"
                    " error=COALESCE(error, 'lease expired') WHERE id=?",
                    (now, job_id),
                )
                self.metrics.inc("serve.lost")
                self._terminal_events(
                    pending, job_id, trace, state, attempts, now, updated,
                    created, "lost", error="lease expired",
                )
            else:
                conn.execute(
                    "UPDATE jobs SET state='queued', agent=NULL,"
                    " lease_expires=NULL, not_before=?, queued_at=?,"
                    " updated=? WHERE id=?",
                    (now + self._backoff_delay(attempts), now, now, job_id),
                )
                self.metrics.inc("serve.requeued")
                self._note(pending, "close", trace, state,
                           span=self._span(job_id, state, attempts),
                           job=job_id, t=now, reclaimed=True)
                self._note(pending, "open", trace, "queued",
                           span=self._span(job_id, "queued", attempts),
                           job=job_id, t=now, parent=job_id)
        return len(rows)

    def requeue_lapsed(self) -> int:
        """Reap now (the controller's reaper loop); returns jobs moved."""
        pending: list = []
        with self._tx() as conn:
            count = self._reap(conn, self.clock(), pending)
        self._flush_events(pending)
        return count

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._tx() as conn:
            return self._fetch(conn, job_id)

    def list_jobs(
        self,
        state: Optional[str] = None,
        agent: Optional[str] = None,
        limit: int = 100,
    ) -> list[JobRecord]:
        query = f"SELECT {', '.join(_COLUMNS)} FROM jobs"
        clauses, params = [], []
        if state is not None:
            clauses.append("state=?")
            params.append(state)
        if agent is not None:
            clauses.append("agent=?")
            params.append(agent)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created LIMIT ?"
        params.append(int(limit))
        with self._tx() as conn:
            rows = conn.execute(query, params).fetchall()
        return [JobRecord.from_row(row) for row in rows]

    def stats(self) -> dict:
        """Job counts by state plus the live depth."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        by_state = {state: 0 for state in STATES}
        by_state.update(dict(rows))
        return {
            "by_state": by_state,
            "depth": sum(by_state[s] for s in LIVE_STATES),
            "total": sum(by_state.values()),
        }
