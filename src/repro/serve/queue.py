"""Durable on-disk job queue for the controller/agent service.

One sqlite database (``<queue-dir>/queue.sqlite3``) holds every job the
service has ever been asked to run.  All state transitions happen
inside ``BEGIN IMMEDIATE`` transactions, so they are atomic across
processes and crash-safe: a SIGKILL at any point leaves the queue in
the last committed state, never a torn one.

Job lifecycle::

    submit ──> queued ──claim──> claimed ──start──> running ──complete──> done
                 ▲                  │                  │
                 │                  ├──fail (retries left, backoff)──┐
                 │                  │                  │             │
                 ├──────────────────┴──────────────────┴─────────────┘
                 │                  │                  │
                 │       lease lapses (reap): retries left -> queued
                 │                  │                  │
                 │                  └──> lost   (no retries left)
                 └── fail with no retries left ──> failed

* **Leases + heartbeats** — a claim grants a time-bounded lease; the
  agent extends it by heartbeating.  A job whose lease lapses (agent
  SIGKILLed, wedged, partitioned) is *reaped*: requeued with backoff if
  attempts remain, else marked ``lost``.  Reaping happens inside every
  ``claim`` and in the controller's reaper loop, so lost work is
  recovered even when only agents (or only the controller) survive.
* **Retry with backoff** — an application failure requeues the job with
  ``not_before = now + backoff * 2**(attempts-1)`` until
  ``max_attempts`` claims have been burned, then parks it as
  ``failed`` (terminal, with the error recorded).
* **Idempotent dedup** — jobs are keyed by the same engine-aware
  artifact-key digests :class:`~repro.service.api.TuningService`
  computes (see :meth:`TuningService.request_key`), so submitting the
  same request twice returns the same job; resubmitting a terminal
  ``failed``/``lost`` job revives it with a fresh retry budget.
* **Backpressure** — an optional ``max_depth`` bounds live (queued +
  claimed + running) jobs; past it, ``submit`` raises
  :class:`QueueFull` (the HTTP front end maps this to 429).

Every mutation is attributed: completes/fails/heartbeats must name the
agent holding the lease, so a zombie agent whose job was reclaimed
cannot clobber the rightful owner's result.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.service.metrics import MetricsRegistry

#: Valid job states (the journal/state-machine vocabulary).
STATES = ("queued", "claimed", "running", "done", "failed", "lost")

#: States a job can be in while an agent may still act on it.
ACTIVE_STATES = ("claimed", "running")

#: States counting against the ``max_depth`` backpressure bound.
LIVE_STATES = ("queued", "claimed", "running")

#: Terminal states (nothing will happen without a resubmit).
TERMINAL_STATES = ("done", "failed", "lost")

DEFAULT_LEASE = 30.0
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF = 0.5

#: Buckets for the submit->claim latency histogram (seconds).
CLAIM_LATENCY_BUCKETS = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0, 300.0,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            TEXT PRIMARY KEY,
    dedup_key     TEXT NOT NULL UNIQUE,
    kind          TEXT NOT NULL,
    request       TEXT NOT NULL,
    state         TEXT NOT NULL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL,
    agent         TEXT,
    created       REAL NOT NULL,
    updated       REAL NOT NULL,
    queued_at     REAL NOT NULL,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_expires REAL,
    result        TEXT,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state, not_before, queued_at);
"""

_COLUMNS = (
    "id", "dedup_key", "kind", "request", "state", "attempts",
    "max_attempts", "agent", "created", "updated", "queued_at",
    "not_before", "lease_expires", "result", "error",
)


class QueueFull(RuntimeError):
    """``submit`` refused: the queue is at its ``max_depth`` bound."""


@dataclass
class JobRecord:
    """One job row, decoded.  ``request``/``result`` are payload dicts."""

    id: str
    dedup_key: str
    kind: str
    request: dict
    state: str
    attempts: int
    max_attempts: int
    agent: Optional[str]
    created: float
    updated: float
    queued_at: float
    not_before: float
    lease_expires: Optional[float]
    result: Optional[dict]
    error: Optional[str]

    @classmethod
    def from_row(cls, row) -> "JobRecord":
        data = dict(zip(_COLUMNS, row))
        data["request"] = json.loads(data["request"])
        if data["result"] is not None:
            data["result"] = json.loads(data["result"])
        return cls(**data)

    def as_dict(self, include_request: bool = False) -> dict:
        """JSON-safe status view (what ``GET /v1/jobs/<id>`` serves)."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "agent": self.agent,
            "created": self.created,
            "updated": self.updated,
            "error": self.error,
        }
        if include_request:
            out["request"] = self.request
        return out


class JobQueue:
    """The durable queue; see the module docstring for semantics.

    ``clock`` is injectable so tests (including the stateful property
    tests) can drive lease expiry deterministically.  Every public
    method opens its own short-lived sqlite connection, so one
    :class:`JobQueue` instance is safe to share across threads and the
    same directory is safe to share across processes.
    """

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        *,
        lease: float = DEFAULT_LEASE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = DEFAULT_BACKOFF,
        max_depth: Optional[int] = None,
        clock: Callable[[], float] = time.time,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.queue_dir = Path(queue_dir)
        self.db_path = self.queue_dir / "queue.sqlite3"
        self.lease = float(lease)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff = float(backoff)
        self.max_depth = max_depth
        self.clock = clock
        self.metrics = metrics or MetricsRegistry()
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        # executescript() commits on its own; no transaction wrapper.
        conn = sqlite3.connect(self.db_path, timeout=30.0)
        try:
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Connection / transaction plumbing.
    # ------------------------------------------------------------------
    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(self.db_path, timeout=30.0, isolation_level=None)
        try:
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("BEGIN IMMEDIATE")
            yield conn
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        finally:
            conn.close()

    def _fetch(self, conn: sqlite3.Connection, job_id: str) -> Optional[JobRecord]:
        row = conn.execute(
            f"SELECT {', '.join(_COLUMNS)} FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        return JobRecord.from_row(row) if row is not None else None

    # ------------------------------------------------------------------
    # Submission + dedup.
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        request: dict,
        *,
        dedup_key: Optional[str] = None,
        max_attempts: Optional[int] = None,
    ) -> tuple[JobRecord, bool]:
        """Enqueue a request; returns ``(record, deduped)``.

        ``dedup_key`` is normally the request's artifact-key digest.  A
        live or ``done`` job with the same key is returned as-is
        (``deduped=True``); a terminal ``failed``/``lost`` one is
        revived in place with a fresh attempt budget.  With no key, the
        job id itself is used (no dedup).
        """
        now = self.clock()
        encoded = json.dumps(request, sort_keys=True)
        budget = self.max_attempts if max_attempts is None else max(1, int(max_attempts))
        job_id = "j-" + uuid.uuid4().hex[:12]
        key = dedup_key if dedup_key is not None else job_id
        with self._tx() as conn:
            self._reap(conn, now)
            row = conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM jobs WHERE dedup_key=?",
                (key,),
            ).fetchone()
            if row is not None:
                record = JobRecord.from_row(row)
                if record.state in ("failed", "lost"):
                    conn.execute(
                        "UPDATE jobs SET state='queued', attempts=0, agent=NULL,"
                        " lease_expires=NULL, result=NULL, error=NULL,"
                        " not_before=0, queued_at=?, updated=?, max_attempts=?"
                        " WHERE id=?",
                        (now, now, budget, record.id),
                    )
                    self.metrics.inc("serve.resubmitted")
                    return self._fetch(conn, record.id), False
                self.metrics.inc("serve.deduped")
                return record, True
            if self.max_depth is not None:
                live = conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state IN (?,?,?)",
                    LIVE_STATES,
                ).fetchone()[0]
                if live >= self.max_depth:
                    self.metrics.inc("serve.rejected_full")
                    raise QueueFull(
                        f"queue at max depth {self.max_depth} "
                        f"({live} live job(s))"
                    )
            conn.execute(
                "INSERT INTO jobs (id, dedup_key, kind, request, state,"
                " attempts, max_attempts, created, updated, queued_at,"
                " not_before) VALUES (?,?,?,?, 'queued', 0, ?, ?, ?, ?, 0)",
                (job_id, key, kind, encoded, budget, now, now, now),
            )
            self.metrics.inc("serve.submitted")
            return self._fetch(conn, job_id), False

    # ------------------------------------------------------------------
    # Claim / heartbeat / transitions.
    # ------------------------------------------------------------------
    def claim(self, agent: str) -> Optional[JobRecord]:
        """Claim the oldest runnable job for ``agent`` (or ``None``).

        Also reaps lapsed leases first, so a dead agent's work is
        recovered by whichever live agent claims next — no controller
        required.
        """
        now = self.clock()
        with self._tx() as conn:
            self._reap(conn, now)
            row = conn.execute(
                "SELECT id, queued_at FROM jobs"
                " WHERE state='queued' AND not_before<=?"
                " ORDER BY queued_at, id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            job_id, queued_at = row
            conn.execute(
                "UPDATE jobs SET state='claimed', agent=?, attempts=attempts+1,"
                " lease_expires=?, updated=? WHERE id=? AND state='queued'",
                (agent, now + self.lease, now, job_id),
            )
            self.metrics.inc("serve.claimed")
            self.metrics.histogram(
                "serve.claim_seconds", CLAIM_LATENCY_BUCKETS
            ).observe(max(0.0, now - queued_at))
            return self._fetch(conn, job_id)

    def start(self, job_id: str, agent: str) -> bool:
        """claimed -> running (lease also refreshed)."""
        now = self.clock()
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state='running', lease_expires=?, updated=?"
                " WHERE id=? AND agent=? AND state='claimed'",
                (now + self.lease, now, job_id, agent),
            )
            return cur.rowcount == 1

    def heartbeat(self, job_id: str, agent: str) -> bool:
        """Extend the lease; ``False`` means the job was reclaimed."""
        now = self.clock()
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires=?, updated=?"
                " WHERE id=? AND agent=? AND state IN (?, ?)",
                (now + self.lease, now, job_id, agent, *ACTIVE_STATES),
            )
            ok = cur.rowcount == 1
        if ok:
            self.metrics.inc("serve.heartbeats")
        return ok

    def complete(self, job_id: str, agent: str, result: dict) -> bool:
        """running|claimed -> done, recording the result payload."""
        now = self.clock()
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state='done', result=?, error=NULL,"
                " lease_expires=NULL, updated=?"
                " WHERE id=? AND agent=? AND state IN (?, ?)",
                (
                    json.dumps(result, sort_keys=True),
                    now, job_id, agent, *ACTIVE_STATES,
                ),
            )
            ok = cur.rowcount == 1
        if ok:
            self.metrics.inc("serve.done")
        else:
            self.metrics.inc("serve.stale_completions")
        return ok

    def fail(self, job_id: str, agent: str, error: str) -> Optional[str]:
        """Record an application failure.

        Returns the job's new state (``queued`` if it will be retried,
        ``failed`` if its attempt budget is spent) or ``None`` when the
        job was not ours to fail (reclaimed from under us).
        """
        now = self.clock()
        with self._tx() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE id=? AND agent=? AND state IN (?, ?)",
                (job_id, agent, *ACTIVE_STATES),
            ).fetchone()
            if row is None:
                self.metrics.inc("serve.stale_failures")
                return None
            attempts, max_attempts = row
            if attempts >= max_attempts:
                conn.execute(
                    "UPDATE jobs SET state='failed', error=?, agent=NULL,"
                    " lease_expires=NULL, updated=? WHERE id=?",
                    (error, now, job_id),
                )
                self.metrics.inc("serve.failed")
                return "failed"
            conn.execute(
                "UPDATE jobs SET state='queued', error=?, agent=NULL,"
                " lease_expires=NULL, not_before=?, queued_at=?, updated=?"
                " WHERE id=?",
                (error, now + self._backoff_delay(attempts), now, now, job_id),
            )
            self.metrics.inc("serve.retries")
            return "queued"

    def _backoff_delay(self, attempts: int) -> float:
        return self.backoff * (2 ** max(0, attempts - 1))

    # ------------------------------------------------------------------
    # Lease reaping (crash recovery).
    # ------------------------------------------------------------------
    def _reap(self, conn: sqlite3.Connection, now: float) -> int:
        """Requeue (or park as ``lost``) every job whose lease lapsed."""
        rows = conn.execute(
            "SELECT id, attempts, max_attempts FROM jobs"
            " WHERE state IN (?, ?) AND lease_expires IS NOT NULL"
            " AND lease_expires<?",
            (*ACTIVE_STATES, now),
        ).fetchall()
        for job_id, attempts, max_attempts in rows:
            if attempts >= max_attempts:
                conn.execute(
                    "UPDATE jobs SET state='lost', agent=NULL,"
                    " lease_expires=NULL, updated=?,"
                    " error=COALESCE(error, 'lease expired') WHERE id=?",
                    (now, job_id),
                )
                self.metrics.inc("serve.lost")
            else:
                conn.execute(
                    "UPDATE jobs SET state='queued', agent=NULL,"
                    " lease_expires=NULL, not_before=?, queued_at=?,"
                    " updated=? WHERE id=?",
                    (now + self._backoff_delay(attempts), now, now, job_id),
                )
                self.metrics.inc("serve.requeued")
        return len(rows)

    def requeue_lapsed(self) -> int:
        """Reap now (the controller's reaper loop); returns jobs moved."""
        with self._tx() as conn:
            return self._reap(conn, self.clock())

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._tx() as conn:
            return self._fetch(conn, job_id)

    def list_jobs(
        self,
        state: Optional[str] = None,
        agent: Optional[str] = None,
        limit: int = 100,
    ) -> list[JobRecord]:
        query = f"SELECT {', '.join(_COLUMNS)} FROM jobs"
        clauses, params = [], []
        if state is not None:
            clauses.append("state=?")
            params.append(state)
        if agent is not None:
            clauses.append("agent=?")
            params.append(agent)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created LIMIT ?"
        params.append(int(limit))
        with self._tx() as conn:
            rows = conn.execute(query, params).fetchall()
        return [JobRecord.from_row(row) for row in rows]

    def stats(self) -> dict:
        """Job counts by state plus the live depth."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        by_state = {state: 0 for state in STATES}
        by_state.update(dict(rows))
        return {
            "by_state": by_state,
            "depth": sum(by_state[s] for s in LIVE_STATES),
            "total": sum(by_state.values()),
        }
