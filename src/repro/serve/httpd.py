"""Stdlib HTTP front end for the job-queue service.

``http.server``-based (no dependencies), threaded, JSON in/out.  The
wire format is exactly the frozen v1 :mod:`repro.api` payloads — they
round-trip losslessly through JSON, so a client posts
``request.to_payload()`` and rehydrates the fetched result with
``api.result_from_payload``.

Endpoints:

========================  ============================================
``POST /v1/jobs``         submit a Profile/Run/SiteReport/Suite/Sweep
                          request payload; replies ``{"id", "state",
                          "deduped"}`` (202 accepted, 200 when deduped
                          onto an existing job, 400 malformed, 429
                          queue full).  ``?priority=<int>`` orders the
                          queue: higher claims first, age breaking
                          ties (default 0)
``GET /v1/jobs/<id>``     job status (state/attempts/agent/error/trace/
                          priority)
``DELETE /v1/jobs/<id>``  cancel: a queued job flips straight to
                          ``cancelled``; an active one is flagged and
                          stops at the agent's next check-in (replies
                          ``{"id", "state"}`` with ``cancelled`` |
                          ``cancelling``; 404 unknown id, 409 already
                          ``done``/``failed``/``lost``)
``GET /v1/results/<id>``  the result payload once ``done`` (409 while
                          pending, 410 when cancelled, 500 body with
                          the error when the job ended
                          ``failed``/``lost``)
``GET /v1/jobs/<id>/events``  the job's telemetry span stream as
                          NDJSON: a finished job replays its full
                          journal (byte-identical across reads); an
                          in-flight job streams live via chunked
                          transfer encoding until it reaches a
                          terminal state or ``?timeout=`` lapses
                          (404 when telemetry is disabled)
``GET /healthz``          liveness + queue depth
``GET /metrics``          Prometheus text exposition (version 0.0.4):
                          queue depth by state, merged controller+agent
                          counters (cache hit ratio, retries, …) and
                          histograms (claim latency, job seconds,
                          span latencies) with p50/p90/p99 gauges
========================  ============================================

Access logging: with ``access_log=True`` every request is logged as one
JSON object (method, path, status, duration_ms) at INFO on the
``repro.serve.http`` logger; otherwise requests log at DEBUG only.
"""

from __future__ import annotations

import json
import logging
import re
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional

from repro.obs.telemetry import JournalTail, _record_key, render_records
from repro.service.metrics import MetricsRegistry, snapshot_quantile
from repro.serve.queue import TERMINAL_STATES, JobQueue, QueueFull

logger = logging.getLogger("repro.serve.http")

_MAX_BODY = 8 * 1024 * 1024  # a request payload is small; 8 MiB is ample

#: Prometheus text-exposition format version (the content type clients
#: key parsing off).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantile gauges rendered per histogram.
_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))

#: Streaming-endpoint pacing: journal poll interval and the default /
#: maximum time an in-flight stream stays open.
_EVENTS_POLL_INTERVAL = 0.1
_EVENTS_DEFAULT_TIMEOUT = 30.0
_EVENTS_MAX_TIMEOUT = 300.0


def _sanitize(name: str) -> str:
    """Metric name -> Prometheus-legal identifier."""
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def render_metrics_text(
    registry: MetricsRegistry, queue_stats: Optional[dict] = None
) -> str:
    """Prometheus text-exposition rendering of a merged registry.

    Every family gets a ``# TYPE`` line; each histogram additionally
    renders interpolated p50/p90/p99 estimates as sibling gauges
    (``<name>_p50`` …) so latency percentiles are scrapeable without
    PromQL.
    """
    lines: list[str] = []
    if queue_stats is not None:
        lines.append("# TYPE repro_queue_jobs gauge")
        for state, count in sorted(queue_stats["by_state"].items()):
            lines.append(f'repro_queue_jobs{{state="{state}"}} {count}')
        lines.append("# TYPE repro_queue_depth gauge")
        lines.append(f"repro_queue_depth {queue_stats['depth']}")
    snapshot = registry.to_dict()
    counters = snapshot["counters"]
    for name, value in counters.items():
        base = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total {value}")
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits + misses:
        lines.append("# TYPE repro_cache_hit_ratio gauge")
        lines.append(
            f"repro_cache_hit_ratio {hits / (hits + misses):.6f}"
        )
    for name, data in snapshot["histograms"].items():
        base = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for bound, count in data["buckets"].items():
            cumulative += count
            lines.append(f'{base}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{base}_count {data['count']}")
        lines.append(f"{base}_sum {data['sum']:.6f}")
        for q, label in _QUANTILES:
            value = snapshot_quantile(data, q)
            if value is not None:
                lines.append(f"# TYPE {base}_{label} gauge")
                lines.append(f"{base}_{label} {value:.6f}")
    return "\n".join(lines) + "\n"


class ServeHTTPServer(ThreadingHTTPServer):
    """The HTTP server plus its service wiring (queue + callbacks)."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        queue: JobQueue,
        *,
        dedup_key_fn: Callable[[object], str],
        metrics_fn: Optional[Callable[[], MetricsRegistry]] = None,
        health_fn: Optional[Callable[[], dict]] = None,
        telemetry_dir: Optional[str | Path] = None,
        access_log: bool = False,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.queue = queue
        self.dedup_key_fn = dedup_key_fn
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn
        #: Where span journals live; ``None`` disables ``/events``.
        self.telemetry_dir = (
            Path(telemetry_dir) if telemetry_dir is not None else None
        )
        self.access_log = bool(access_log)


class ServeHandler(BaseHTTPRequestHandler):
    server: ServeHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("%s %s", self.address_string(), format % args)

    def log_request(self, code="-", size="-"):
        """Structured JSON access line (INFO) when enabled, else the
        stdlib's per-request line routed to DEBUG via log_message."""
        if getattr(self.server, "access_log", False):
            try:
                status = int(code)
            except (TypeError, ValueError):
                status = str(code)
            started = getattr(self, "_request_started", None)
            duration_ms = (
                round((time.perf_counter() - started) * 1000.0, 3)
                if started is not None
                else None
            )
            logger.info(json.dumps(
                {
                    "method": self.command,
                    "path": self.path,
                    "status": status,
                    "duration_ms": duration_ms,
                    "client": self.address_string(),
                },
                sort_keys=True,
            ))
        else:
            super().log_request(code, size)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0 or length > _MAX_BODY:
            self._send_json(
                400, {"error": f"bad Content-Length (max {_MAX_BODY})"}
            )
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError as error:
            self._send_json(400, {"error": f"invalid JSON: {error}"})
            return None
        if not isinstance(body, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return body

    # ------------------------------------------------------------------
    # Routes.
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._request_started = time.perf_counter()
        path, _, query = self.path.partition("?")
        if path.rstrip("/") != "/v1/jobs":
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        try:
            priority = int(
                urllib.parse.parse_qs(query).get("priority", ["0"])[0]
            )
        except ValueError:
            self._send_json(
                400, {"error": "priority must be an integer"}
            )
            return
        body = self._read_body()
        if body is None:
            return
        from repro import api as api_v1

        try:
            request = api_v1.request_from_payload(body)
            dedup_key = self.server.dedup_key_fn(request)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            record, deduped = self.server.queue.submit(
                type(request).__name__,
                request.to_payload(),
                dedup_key=dedup_key,
                trace_id=getattr(request, "trace", None),
                priority=priority,
            )
        except QueueFull as error:
            self._send_json(429, {"error": str(error)})
            return
        self._send_json(
            200 if deduped else 202,
            {"id": record.id, "state": record.state, "deduped": deduped,
             "trace": record.trace_id},
        )

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._request_started = time.perf_counter()
        path = self.path.partition("?")[0].rstrip("/")
        match = re.fullmatch(r"/v1/jobs/([A-Za-z0-9_.-]+)", path)
        if match is None:
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        job_id = match.group(1)
        state = self.server.queue.cancel(job_id)
        if state is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
        elif state in ("cancelled", "cancelling"):
            self._send_json(200, {"id": job_id, "state": state})
        else:
            self._send_json(
                409,
                {"id": job_id, "state": state,
                 "error": f"job already terminal ({state})"},
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._request_started = time.perf_counter()
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            stats = self.server.queue.stats()
            payload = {"ok": True, "queue": stats}
            if self.server.health_fn is not None:
                payload.update(self.server.health_fn())
            self._send_json(200, payload)
            return
        if path == "/metrics":
            registry = (
                self.server.metrics_fn()
                if self.server.metrics_fn is not None
                else self.server.queue.metrics
            )
            self._send_text(
                200,
                render_metrics_text(registry, self.server.queue.stats()),
                content_type=METRICS_CONTENT_TYPE,
            )
            return
        events = re.fullmatch(r"/v1/jobs/([A-Za-z0-9_.-]+)/events", path)
        if events is not None:
            self._serve_events(events.group(1), query)
            return
        match = re.fullmatch(r"/v1/(jobs|results)/([A-Za-z0-9_.-]+)", path)
        if match is None:
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        view, job_id = match.groups()
        record = self.server.queue.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return
        if view == "jobs":
            self._send_json(200, record.as_dict())
            return
        if record.state == "done":
            self._send_json(200, record.result)
        elif record.state == "cancelled":
            self._send_json(
                410,
                {"id": record.id, "state": record.state,
                 "error": record.error or "cancelled"},
            )
        elif record.state in ("failed", "lost"):
            self._send_json(
                500,
                {"id": record.id, "state": record.state,
                 "error": record.error},
            )
        else:
            self._send_json(
                409,
                {"id": record.id, "state": record.state,
                 "error": "result not ready"},
            )

    # ------------------------------------------------------------------
    # Streaming span events (GET /v1/jobs/<id>/events).
    # ------------------------------------------------------------------
    def _serve_events(self, job_id: str, query: str) -> None:
        """NDJSON span stream for one job.

        Terminal job: the full merged journal in one fixed-length
        response — deterministic rendering, so two reads are
        byte-identical.  Live job: chunked transfer encoding, tailing
        the journals until the job reaches a terminal state (the final
        poll drains everything, including the closing spans) or the
        requested timeout lapses.
        """
        directory = self.server.telemetry_dir
        if directory is None:
            self._send_json(404, {"error": "telemetry disabled"})
            return
        record = self.server.queue.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return
        params = urllib.parse.parse_qs(query)
        try:
            timeout = float(params.get("timeout", [_EVENTS_DEFAULT_TIMEOUT])[0])
        except ValueError:
            timeout = _EVENTS_DEFAULT_TIMEOUT
        timeout = min(max(0.0, timeout), _EVENTS_MAX_TIMEOUT)
        tail = JournalTail(directory, job=job_id)
        if record.state in TERMINAL_STATES:
            # The queue journals a terminal transition's closing spans
            # *after* the commit that made the state visible, so an
            # immediate read could catch the gap; wait briefly for the
            # root-span close so replays are complete (and therefore
            # byte-identical across reads).
            records = tail.poll()
            settle = time.monotonic() + 2.0
            while records and not any(
                r.get("ev") == "close" and r.get("span") == job_id
                for r in records
            ) and time.monotonic() < settle:
                time.sleep(0.05)
                records.extend(tail.poll())
            records.sort(key=_record_key)
            self._send_text(
                200, render_records(records),
                content_type="application/x-ndjson",
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        deadline = time.monotonic() + timeout
        try:
            while True:
                record = self.server.queue.get(job_id)
                done = record is None or record.state in TERMINAL_STATES
                # Poll *after* the state check: a terminal state is
                # journaled before it is visible, so this final drain
                # includes the closing spans.
                batch = tail.poll()
                if batch:
                    self._write_chunk(render_records(batch).encode("utf-8"))
                if done or time.monotonic() >= deadline:
                    break
                time.sleep(_EVENTS_POLL_INTERVAL)
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()
