"""Stdlib HTTP front end for the job-queue service.

``http.server``-based (no dependencies), threaded, JSON in/out.  The
wire format is exactly the frozen v1 :mod:`repro.api` payloads — they
round-trip losslessly through JSON, so a client posts
``request.to_payload()`` and rehydrates the fetched result with
``api.result_from_payload``.

Endpoints:

========================  ============================================
``POST /v1/jobs``         submit a Profile/Run/SiteReport/Suite request
                          payload; replies ``{"id", "state", "deduped"}``
                          (202 accepted, 200 when deduped onto an
                          existing job, 400 malformed, 429 queue full)
``GET /v1/jobs/<id>``     job status (state/attempts/agent/error)
``GET /v1/results/<id>``  the result payload once ``done`` (409 while
                          pending, 500 body with the error when the job
                          ended ``failed``/``lost``)
``GET /healthz``          liveness + queue depth
``GET /metrics``          Prometheus-style text: queue depth by state,
                          merged controller+agent counters (cache hit
                          ratio, retries, …) and histograms (claim
                          latency, job seconds)
========================  ============================================
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.service.metrics import MetricsRegistry
from repro.serve.queue import JobQueue, QueueFull

_MAX_BODY = 8 * 1024 * 1024  # a request payload is small; 8 MiB is ample


def _sanitize(name: str) -> str:
    """Metric name -> Prometheus-legal identifier."""
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def render_metrics_text(
    registry: MetricsRegistry, queue_stats: Optional[dict] = None
) -> str:
    """Prometheus text-exposition rendering of a merged registry."""
    lines: list[str] = []
    if queue_stats is not None:
        lines.append("# TYPE repro_queue_jobs gauge")
        for state, count in sorted(queue_stats["by_state"].items()):
            lines.append(f'repro_queue_jobs{{state="{state}"}} {count}')
        lines.append(f"repro_queue_depth {queue_stats['depth']}")
    snapshot = registry.to_dict()
    counters = snapshot["counters"]
    for name, value in counters.items():
        lines.append(f"repro_{_sanitize(name)}_total {value}")
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits + misses:
        lines.append(
            f"repro_cache_hit_ratio {hits / (hits + misses):.6f}"
        )
    for name, data in snapshot["histograms"].items():
        base = f"repro_{_sanitize(name)}"
        cumulative = 0
        for bound, count in data["buckets"].items():
            cumulative += count
            lines.append(f'{base}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{base}_count {data['count']}")
        lines.append(f"{base}_sum {data['sum']:.6f}")
    return "\n".join(lines) + "\n"


class ServeHTTPServer(ThreadingHTTPServer):
    """The HTTP server plus its service wiring (queue + callbacks)."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        queue: JobQueue,
        *,
        dedup_key_fn: Callable[[object], str],
        metrics_fn: Optional[Callable[[], MetricsRegistry]] = None,
        health_fn: Optional[Callable[[], dict]] = None,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.queue = queue
        self.dedup_key_fn = dedup_key_fn
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn


class ServeHandler(BaseHTTPRequestHandler):
    server: ServeHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        import logging

        logging.getLogger("repro.serve.http").debug(
            "%s %s", self.address_string(), format % args
        )

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0 or length > _MAX_BODY:
            self._send_json(
                400, {"error": f"bad Content-Length (max {_MAX_BODY})"}
            )
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError as error:
            self._send_json(400, {"error": f"invalid JSON: {error}"})
            return None
        if not isinstance(body, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return body

    # ------------------------------------------------------------------
    # Routes.
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/v1/jobs":
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        body = self._read_body()
        if body is None:
            return
        from repro import api as api_v1

        try:
            request = api_v1.request_from_payload(body)
            dedup_key = self.server.dedup_key_fn(request)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            record, deduped = self.server.queue.submit(
                type(request).__name__,
                request.to_payload(),
                dedup_key=dedup_key,
            )
        except QueueFull as error:
            self._send_json(429, {"error": str(error)})
            return
        self._send_json(
            200 if deduped else 202,
            {"id": record.id, "state": record.state, "deduped": deduped},
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            stats = self.server.queue.stats()
            payload = {"ok": True, "queue": stats}
            if self.server.health_fn is not None:
                payload.update(self.server.health_fn())
            self._send_json(200, payload)
            return
        if path == "/metrics":
            registry = (
                self.server.metrics_fn()
                if self.server.metrics_fn is not None
                else self.server.queue.metrics
            )
            self._send_text(
                200,
                render_metrics_text(registry, self.server.queue.stats()),
            )
            return
        match = re.fullmatch(r"/v1/(jobs|results)/([A-Za-z0-9_.-]+)", path)
        if match is None:
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        view, job_id = match.groups()
        record = self.server.queue.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return
        if view == "jobs":
            self._send_json(200, record.as_dict())
            return
        if record.state == "done":
            self._send_json(200, record.result)
        elif record.state in ("failed", "lost"):
            self._send_json(
                500,
                {"id": record.id, "state": record.state,
                 "error": record.error},
            )
        else:
            self._send_json(
                409,
                {"id": record.id, "state": record.state,
                 "error": "result not ready"},
            )
