"""``repro.serve`` — the controller/agent job-queue service.

The production-scale front half of the tuning service: where
:mod:`repro.service` gives one process a cached, parallel
:class:`~repro.service.api.TuningService`, this package turns that into
a long-lived **service**: a durable on-disk queue of v1 API requests, a
fleet of agent worker processes sharing one content-addressed artifact
cache, and a dependency-free HTTP front end.

* :mod:`repro.serve.queue`      — crash-safe sqlite job queue
  (``queued → claimed → running → done|failed|lost``) with lease-based
  claims, heartbeats, retry-with-backoff, artifact-key dedup and
  ``max_depth`` backpressure;
* :mod:`repro.serve.agent`      — worker processes that claim jobs,
  execute them through the frozen v1 :mod:`repro.api` payloads (the
  wire *and* journal format) and heartbeat while they run;
* :mod:`repro.serve.controller` — supervises agents, reaps lapsed
  leases, merges per-agent metric snapshots;
* :mod:`repro.serve.httpd`      — ``POST /v1/jobs``, ``GET
  /v1/jobs/<id>``, ``GET /v1/results/<id>``, ``GET /healthz``,
  ``GET /metrics``.

See ``docs/SERVICE.md`` for the state diagram, the on-disk layout and a
two-terminal controller+agent walkthrough.
"""

from repro.serve.agent import AgentWorker, default_agent_id, metrics_dir
from repro.serve.controller import Controller
from repro.serve.httpd import ServeHTTPServer, render_metrics_text
from repro.serve.queue import (
    ACTIVE_STATES,
    LIVE_STATES,
    STATES,
    TERMINAL_STATES,
    JobQueue,
    JobRecord,
    QueueFull,
)

__all__ = [
    "ACTIVE_STATES",
    "AgentWorker",
    "Controller",
    "JobQueue",
    "JobRecord",
    "LIVE_STATES",
    "QueueFull",
    "STATES",
    "ServeHTTPServer",
    "TERMINAL_STATES",
    "default_agent_id",
    "metrics_dir",
    "render_metrics_text",
]
