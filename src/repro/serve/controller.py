"""The controller: HTTP front end + agent supervision + lease reaping.

One controller process per queue directory:

* serves the HTTP API (:mod:`repro.serve.httpd`) — submissions are
  deduplicated against the queue by their engine-aware artifact-key
  digest before they are enqueued;
* optionally spawns ``N`` agent subprocesses (``repro.cli agent``)
  sharing the queue and the artifact cache — standalone agents started
  by hand against the same ``--queue-dir`` join the same pool;
* runs a **reaper loop**: requeues jobs whose lease lapsed (an agent
  SIGKILLed mid-run loses its claim after at most one lease interval)
  and folds the agents' per-pid metric snapshots into the store's
  cumulative ``metrics.json`` — the controller is the *only* writer of
  that shared file, so agent flushes can never clobber each other.

The controller executes no jobs itself; with ``agents=0`` it is a pure
front end over whatever external agents attach.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Optional

from repro.machine.config import MachineConfig
from repro.obs.telemetry import (
    Telemetry,
    merged_timeline,
    telemetry_dir,
)
from repro.service.api import TuningService
from repro.service.metrics import MetricsRegistry, iter_snapshots
from repro.serve.agent import metrics_dir
from repro.serve.httpd import ServeHTTPServer
from repro.serve.queue import JobQueue

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8023


class Controller:
    """Front end + supervisor for one queue directory."""

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        cache_dir: Optional[str | os.PathLike] = None,
        *,
        agents: int = 1,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        lease: float = 30.0,
        max_attempts: int = 3,
        backoff: float = 0.5,
        max_depth: Optional[int] = None,
        engine: Optional[str] = None,
        reap_interval: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: bool = True,
        access_log: bool = False,
    ) -> None:
        self.queue_dir = Path(queue_dir)
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None
            else self.queue_dir / "cache"
        )
        self.num_agents = max(0, int(agents))
        self.lease = float(lease)
        self.engine = engine
        self.reap_interval = (
            float(reap_interval)
            if reap_interval is not None
            else max(0.2, self.lease / 2.0)
        )
        self.metrics = metrics or MetricsRegistry()
        self.telemetry_enabled = bool(telemetry)
        self.telemetry = (
            Telemetry(telemetry_dir(queue_dir))
            if self.telemetry_enabled
            else None
        )
        self.queue = JobQueue(
            queue_dir,
            lease=lease,
            max_attempts=max_attempts,
            backoff=backoff,
            max_depth=max_depth,
            metrics=self.metrics,
            telemetry=self.telemetry,
        )
        config = MachineConfig(engine=engine) if engine else None
        #: Used for request keys and shared-store access; the controller
        #: itself never executes jobs through it.
        self.service = TuningService(
            cache_dir=self.cache_dir,
            metrics=self.metrics,
            machine_config=config,
            auto_flush=False,
        )
        self.server = ServeHTTPServer(
            (host, port),
            self.queue,
            dedup_key_fn=lambda request: self.service.request_key(
                request
            ).digest(),
            metrics_fn=self.merged_metrics,
            health_fn=self._health,
            telemetry_dir=(
                telemetry_dir(queue_dir) if self.telemetry_enabled else None
            ),
            access_log=access_log,
        )
        self.host, self.port = self.server.server_address[:2]
        self.agents: list[subprocess.Popen] = []
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        #: Per-snapshot counters already folded into metrics.json, so
        #: repeated folds only add deltas (snapshots are cumulative).
        self._folded: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        for _ in range(self.num_agents):
            self.spawn_agent()
        server_thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="serve-http",
        )
        reaper_thread = threading.Thread(
            target=self._reaper_loop, daemon=True, name="serve-reaper"
        )
        self._threads = [server_thread, reaper_thread]
        for thread in self._threads:
            thread.start()

    def spawn_agent(self) -> subprocess.Popen:
        """Start one ``repro.cli agent`` subprocess on this queue."""
        argv = [
            sys.executable, "-m", "repro.cli", "agent",
            "--queue-dir", str(self.queue_dir),
            "--cache-dir", str(self.cache_dir),
            "--lease", str(self.lease),
        ]
        if self.engine:
            argv += ["--engine", self.engine]
        if not self.telemetry_enabled:
            argv += ["--no-telemetry"]
        process = subprocess.Popen(argv)
        self.agents.append(process)
        self.metrics.inc("serve.agents_spawned")
        return process

    def wait(self) -> None:
        """Block until :meth:`stop` (e.g. from a signal handler)."""
        while not self._stop.is_set():
            self._stop.wait(0.5)

    def stop(self, agent_timeout: float = 5.0) -> None:
        self._stop.set()
        self.server.shutdown()
        self.server.server_close()
        for process in self.agents:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + agent_timeout
        for process in self.agents:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self.fold_metrics()

    # ------------------------------------------------------------------
    # Reaping + metrics merging.
    # ------------------------------------------------------------------
    def _reaper_loop(self) -> None:
        while not self._stop.wait(self.reap_interval):
            try:
                self.queue.requeue_lapsed()
                self.fold_metrics()
            except Exception:  # pragma: no cover - keep the loop alive
                self.metrics.inc("serve.reaper_errors")

    def merged_metrics(self) -> MetricsRegistry:
        """Controller counters + every agent snapshot, freshly merged
        (what ``/metrics`` renders)."""
        merged = MetricsRegistry()
        merged.merge_snapshot(self.metrics.to_dict())
        for _, snapshot in iter_snapshots(metrics_dir(self.queue_dir)):
            merged.merge_snapshot(snapshot)
        return merged

    def fold_metrics(self) -> None:
        """Fold agent snapshot *deltas* into the store's cumulative
        ``metrics.json``.  Snapshots are cumulative per process, so the
        controller remembers what it already folded per file and adds
        only the difference — idempotent across repeated folds."""
        for path, snapshot in iter_snapshots(metrics_dir(self.queue_dir)):
            counters = {
                name: value
                for name, value in snapshot.get("counters", {}).items()
                if isinstance(value, (int, float))
            }
            previous = self._folded.get(path.name, {})
            deltas = {
                name: int(value) - previous.get(name, 0)
                for name, value in counters.items()
            }
            deltas = {k: v for k, v in deltas.items() if v}
            if deltas:
                self.service.store.merge_metrics(deltas)
            self._folded[path.name] = {
                name: int(value) for name, value in counters.items()
            }

    def export_timeline(
        self,
        path: str | os.PathLike,
        *,
        job: Optional[str] = None,
        trace: Optional[str] = None,
    ) -> Path:
        """Write the merged service+simulator Perfetto timeline for one
        job/trace (or everything) to ``path``; returns it."""
        if not self.telemetry_enabled:
            raise RuntimeError("telemetry is disabled on this controller")
        document = merged_timeline(
            telemetry_dir(self.queue_dir), job=job, trace=trace
        )
        path = Path(path)
        path.write_text(json.dumps(document, indent=1, sort_keys=True))
        return path

    def _health(self) -> dict:
        return {
            "agents": {
                "spawned": len(self.agents),
                "alive": sum(
                    1 for p in self.agents if p.poll() is None
                ),
            },
            "cache_dir": str(self.cache_dir),
        }
