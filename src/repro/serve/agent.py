"""Agent workers: claim jobs from the durable queue and execute them.

An :class:`AgentWorker` is the unit of horizontal scale in the
controller/agent architecture.  Any number of agents — spawned by the
controller (``repro.cli serve --agents N``) or started standalone on
the same filesystem (``repro.cli agent --queue-dir …``) — share one
queue and one content-addressed artifact cache:

* **claim** the oldest runnable job (reaping lapsed leases on the way,
  so a SIGKILLed sibling's work is picked up by whoever claims next);
* **execute** it through the frozen v1 :mod:`repro.api` dataclasses —
  the queue's journaled payloads *are* the wire format, so rehydrating
  a request and running it is one ``request_from_payload`` +
  ``execute`` pair;
* **heartbeat** from a background thread while the (potentially long)
  simulation runs, keeping the lease alive;
* **complete** with the result payload (artifacts land in the shared
  :class:`~repro.service.store.ArtifactStore` as a side effect of
  execution, so a later duplicate request is a pure cache hit), or
  **fail** and let the queue decide between retry-with-backoff and a
  terminal ``failed``.

Agents are *warm workers*: their :class:`TuningService` points at the
queue's shared cache directory, which auto-enables the persistent AOT
code cache (:mod:`repro.machine.codecache`) in the same store — the
first agent to compile a workload's turbo superblocks publishes them as
``codecache`` artifacts, and every later agent (or respawn) loads the
marshaled code objects instead of re-running codegen.  Cold-build cost
is paid once per (IR, engine, config) across the whole fleet, not once
per process; ``codecache.hit/miss/invalidated`` counters ride the
normal per-pid metric snapshots.

Metrics: each agent owns one :class:`MetricsRegistry` shared by its
queue handle and its :class:`TuningService` (``auto_flush=False``), and
republishes it as ``metrics/metrics-<pid>.json`` after every job — the
controller merges these for ``/metrics`` and the cumulative
``metrics.json``; the agent itself never touches a shared file.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from pathlib import Path
from typing import Optional

from repro.machine.config import MachineConfig
from repro.obs import telemetry as obs_telemetry
from repro.service.api import TuningService
from repro.service.metrics import MetricsRegistry, write_snapshot
from repro.serve.queue import JobQueue, JobRecord

#: Job-execution wall-clock histogram buckets (seconds).
_JOB_SECONDS_BUCKETS = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)


def default_agent_id() -> str:
    """``agent-<host>-<pid>``: unique per process, greppable per host."""
    return f"agent-{socket.gethostname()}-{os.getpid()}"


def metrics_dir(queue_dir: str | os.PathLike) -> Path:
    """Where per-process metric snapshots live for one queue."""
    return Path(queue_dir) / "metrics"


class AgentWorker:
    """One worker process's claim/execute/heartbeat loop."""

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        cache_dir: Optional[str | os.PathLike] = None,
        *,
        agent_id: Optional[str] = None,
        lease: float = 30.0,
        poll_interval: float = 0.2,
        heartbeat_interval: Optional[float] = None,
        engine: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        service: Optional[TuningService] = None,
        telemetry: bool = True,
    ) -> None:
        self.queue_dir = Path(queue_dir)
        self.agent_id = agent_id or default_agent_id()
        self.poll_interval = float(poll_interval)
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None
            else max(0.05, lease / 3.0)
        )
        self.metrics = metrics or MetricsRegistry()
        self.telemetry = (
            obs_telemetry.Telemetry(obs_telemetry.telemetry_dir(queue_dir))
            if telemetry
            else None
        )
        self.queue = JobQueue(
            queue_dir, lease=lease, metrics=self.metrics,
            telemetry=self.telemetry,
        )
        if service is not None:
            self.service = service
        else:
            if cache_dir is None:
                cache_dir = self.queue_dir / "cache"
            config = MachineConfig(engine=engine) if engine else None
            self.service = TuningService(
                cache_dir=cache_dir,
                metrics=self.metrics,
                machine_config=config,
                auto_flush=False,
            )

    # ------------------------------------------------------------------
    def run_one(self) -> bool:
        """Claim and execute at most one job; ``True`` if one ran."""
        job = self.queue.claim(self.agent_id)
        if job is None:
            return False
        self._execute(job)
        return True

    def run_forever(
        self,
        stop: Optional[threading.Event] = None,
        max_jobs: Optional[int] = None,
    ) -> int:
        """Drain the queue until stopped; returns jobs executed."""
        stop = stop or threading.Event()
        executed = 0
        self.publish_metrics()
        while not stop.is_set():
            if self.run_one():
                executed += 1
                if max_jobs is not None and executed >= max_jobs:
                    break
            else:
                stop.wait(self.poll_interval)
        self.publish_metrics()
        return executed

    # ------------------------------------------------------------------
    def _execute(self, job: JobRecord) -> None:
        if not self.queue.start(job.id, self.agent_id):
            # Cancelled (or reclaimed) between claim and start; don't
            # burn a simulation on work nobody wants.
            self.metrics.inc("serve.start_rejected")
            return
        stop_heartbeat = threading.Event()
        beats = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.id, stop_heartbeat),
            daemon=True,
        )
        beats.start()
        started = time.perf_counter()
        try:
            result, error = self._run_job(job)
            if error is not None:
                self.queue.fail(job.id, self.agent_id, error)
            else:
                self.queue.complete(job.id, self.agent_id, result.to_payload())
        finally:
            stop_heartbeat.set()
            beats.join()
            self.metrics.histogram(
                "serve.job_seconds", _JOB_SECONDS_BUCKETS
            ).observe(time.perf_counter() - started)
            self.publish_metrics()

    def _run_job(self, job: JobRecord):
        """Execute one journaled payload under an ``execute`` telemetry
        span (when the job carries a trace id and telemetry is on).
        Returns ``(result, error)``; exactly one is non-``None``.  The
        span closes *before* the queue records the outcome, so the
        execute span nests cleanly inside the ``running`` state span.
        """
        from repro import api as api_v1

        def run():
            request = api_v1.request_from_payload(job.request)
            return api_v1.execute(request, service=self.service), None

        if self.telemetry is None or not job.trace_id:
            try:
                return run()
            except Exception:
                return None, traceback.format_exc(limit=8).strip()
        with obs_telemetry.job_scope(
            self.telemetry,
            trace=job.trace_id,
            job=job.id,
            attempts=job.attempts,
            agent=self.agent_id,
            kind=job.kind,
        ) as span_attrs:
            try:
                return run()
            except Exception:
                error = traceback.format_exc(limit=8).strip()
                span_attrs["error"] = error.splitlines()[-1][:200]
                return None, error

    def _heartbeat_loop(self, job_id: str, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            if not self.queue.heartbeat(job_id, self.agent_id):
                # Either the lease lapsed and the job was reclaimed, or
                # a cancel request was honored (the queue flipped the
                # job to ``cancelled``); in both cases our eventual
                # complete/fail will be rejected as stale.
                self.metrics.inc("serve.heartbeat_rejected")
                return

    # ------------------------------------------------------------------
    def publish_metrics(self) -> None:
        """Atomically rewrite this process's ``metrics-<pid>.json``."""
        write_snapshot(self.metrics, metrics_dir(self.queue_dir))


def main_loop(worker: AgentWorker, max_jobs: Optional[int] = None) -> int:
    """CLI entry: run until SIGTERM/SIGINT (installed only when possible —
    i.e. on the main thread), then exit cleanly with jobs-executed."""
    import signal

    stop = threading.Event()

    def _stop(signum, frame):  # pragma: no cover - signal plumbing
        stop.set()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    return worker.run_forever(stop=stop, max_jobs=max_jobs)
