"""The prefetch-tuning service layer: a persistent, parallel
profile-and-tuning substrate underneath the CLI and the experiment
harness.

APT-GET is pitched as an AutoFDO-style profile-in-production workflow
(paper §3.4): profiles are collected continuously, derived artifacts
(hint files, run summaries) are cached, and tuning decisions are served
to many consumers.  This package is that layer for the reproduction:

* :mod:`repro.service.store`   — content-addressed, schema-versioned,
  disk-backed artifact store (profiles, hint sets, run summaries);
* :mod:`repro.service.pool`    — multiprocess job executor with
  per-job timeouts, bounded retry and failure isolation;
* :mod:`repro.service.metrics` — in-process counters and latency
  histograms (cache hits/misses, job durations, retries, timeouts);
* :mod:`repro.service.api`     — the :class:`TuningService` façade the
  experiment runner and the CLI sit on top of.
"""

from repro.service.api import TuningService, configure_service, get_service
from repro.service.metrics import MetricsRegistry
from repro.service.pool import Job, JobOutcome, JobPool
from repro.service.store import ArtifactStore, CacheKey, MemoryStore

__all__ = [
    "ArtifactStore",
    "CacheKey",
    "Job",
    "JobOutcome",
    "JobPool",
    "MemoryStore",
    "MetricsRegistry",
    "TuningService",
    "configure_service",
    "get_service",
]
