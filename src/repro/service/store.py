"""Content-addressed artifact store for the tuning service.

Artifacts (execution profiles, hint sets, scheme-run summaries, and
per-injection-site timeliness rollups under the ``sites`` kind) are
keyed by a stable SHA-256 digest of the :class:`CacheKey` — (artifact
kind, workload name, scale, machine-config fingerprint, extra params,
schema version) — and stored as schema-versioned JSON files:

    <root>/v<schema>/<kind>/<digest[:2]>/<digest>.json
    <root>/quarantine/            # corrupt entries, kept for debugging
    <root>/metrics.json           # cumulative service counters

Writes are atomic (write to a temp file in the destination directory,
then ``os.replace``), so a concurrent reader never observes a partial
entry.  Reads are corruption-tolerant: an entry that fails to parse, or
whose recorded key/schema does not match the request, is *quarantined*
(moved aside) and treated as a miss — a bad byte on disk degrades to a
recompute, never a crash.

:class:`MemoryStore` provides the same interface backed by an
in-process dict of serialized entries; it is the default when no cache
directory is configured and gives the same fresh-objects-per-read
guarantee (payloads are re-decoded on every ``get``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.service.metrics import MetricsRegistry

#: Bump when the payload layout of any artifact kind changes; old
#: entries then miss (and are quarantined on read) instead of being
#: misinterpreted.
SCHEMA_VERSION = 1


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config) -> str:
    """Stable short digest of a (frozen, nested) dataclass config.

    Top-level fields the config names in a ``_NONSEMANTIC_FIELDS``
    class attribute (e.g. ``MachineConfig.code_cache``, a filesystem
    location) are dropped before hashing: they change where artifacts
    live, never what is computed, so identical work must share keys
    across cache locations.
    """
    data = dataclasses.asdict(config)
    for name in getattr(config, "_NONSEMANTIC_FIELDS", ()):
        data.pop(name, None)
    raw = canonical_json(data)
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached artifact."""

    kind: str  # "profile", "run", "sites", ...
    workload: str
    scale: str
    config: str  # machine-config fingerprint
    params: tuple[tuple[str, str], ...] = ()
    schema: int = SCHEMA_VERSION

    @classmethod
    def make(
        cls,
        kind: str,
        workload: str,
        scale: str,
        config: str,
        **params,
    ) -> "CacheKey":
        items = tuple(sorted((k, str(v)) for k, v in params.items()))
        return cls(
            kind=kind,
            workload=workload,
            scale=scale,
            config=config,
            params=items,
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "scale": self.scale,
            "config": self.config,
            "params": [list(pair) for pair in self.params],
            "schema": self.schema,
        }

    def digest(self) -> str:
        return hashlib.sha256(
            canonical_json(self.as_dict()).encode("utf-8")
        ).hexdigest()


def _encode_entry(key: CacheKey, payload: dict) -> str:
    return json.dumps(
        {"schema": key.schema, "key": key.as_dict(), "payload": payload},
        sort_keys=True,
    )


def _decode_entry(text: str, key: CacheKey) -> Optional[dict]:
    """Parse + validate an entry; None means corrupt/mismatched."""
    try:
        raw = json.loads(text)
    except (ValueError, TypeError):
        return None
    if not isinstance(raw, dict) or "payload" not in raw:
        return None
    if raw.get("schema") != key.schema or raw.get("key") != key.as_dict():
        return None
    return raw["payload"]


class ArtifactStore:
    """Disk-backed store; see module docstring for the on-disk layout."""

    def __init__(
        self,
        root: str | os.PathLike,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics or MetricsRegistry()
        self.version_dir = self.root / f"v{SCHEMA_VERSION}"
        self.quarantine_dir = self.root / "quarantine"

    # ------------------------------------------------------------------
    def _entry_path(self, key: CacheKey) -> Path:
        digest = key.digest()
        return self.version_dir / key.kind / digest[:2] / f"{digest}.json"

    def get(self, key: CacheKey) -> Optional[dict]:
        path = self._entry_path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        payload = _decode_entry(text, key)
        if payload is None:
            self._quarantine(path)
        return payload

    def put(self, key: CacheKey, payload: dict) -> None:
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(_encode_entry(key, payload))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside instead of failing or re-reading it."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_dir / f"{path.name}.{suffix}"
        try:
            os.replace(path, target)
        except OSError:
            pass
        self.metrics.inc("cache.quarantined")
        self.metrics.event("cache.quarantine", path=str(path))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Entry counts per kind + total size + quarantine count."""
        by_kind: dict[str, int] = {}
        size = 0
        if self.version_dir.is_dir():
            for kind_dir in sorted(self.version_dir.iterdir()):
                if not kind_dir.is_dir():
                    continue
                count = 0
                for entry in kind_dir.glob("*/*.json"):
                    if entry.name.startswith("."):
                        # A concurrent writer's not-yet-renamed temp
                        # file (or a crashed writer's leftover) is not
                        # an entry; pathlib's glob matches dotfiles.
                        continue
                    count += 1
                    try:
                        size += entry.stat().st_size
                    except OSError:
                        pass
                by_kind[kind_dir.name] = count
        quarantined = (
            sum(1 for _ in self.quarantine_dir.iterdir())
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "root": str(self.root),
            "schema": SCHEMA_VERSION,
            "entries": sum(by_kind.values()),
            "by_kind": by_kind,
            "size_bytes": size,
            "quarantined": quarantined,
        }

    def clear(self) -> int:
        """Delete every entry (and quarantined file); returns count removed."""
        removed = 0
        for directory in (self.version_dir, self.quarantine_dir):
            if not directory.is_dir():
                continue
            for path in sorted(
                directory.rglob("*"), key=lambda p: len(p.parts), reverse=True
            ):
                try:
                    if path.is_dir():
                        path.rmdir()
                    else:
                        path.unlink()
                        removed += 1
                except OSError:
                    pass
            try:
                directory.rmdir()
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Cumulative metrics persistence (shared by `cache stats` across
    # processes: each service flushes its counter deltas here).
    # ------------------------------------------------------------------
    @property
    def metrics_path(self) -> Path:
        return self.root / "metrics.json"

    def read_metrics(self) -> dict[str, int]:
        try:
            raw = json.loads(self.metrics_path.read_text())
        except (OSError, ValueError):
            return {}
        counters = raw.get("counters", {})
        if not isinstance(counters, dict):
            return {}
        return {
            str(k): int(v)
            for k, v in counters.items()
            if isinstance(v, (int, float))
        }

    def merge_metrics(self, deltas: dict[str, int]) -> None:
        """Atomically add counter deltas into ``metrics.json``.

        The read-modify-write cycle is guarded by a best-effort lock
        file so two processes flushing at once cannot clobber each
        other's deltas (multi-*process* agents should still prefer the
        per-pid snapshot protocol in :mod:`repro.service.metrics`, which
        needs no cross-process coordination at all).
        """
        if not any(deltas.values()):
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with self._metrics_lock():
            counters = self.read_metrics()
            for name, delta in deltas.items():
                counters[name] = counters.get(name, 0) + delta
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-metrics-", suffix=".json", dir=self.root
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(
                        json.dumps({"counters": counters}, sort_keys=True)
                    )
                os.replace(tmp_name, self.metrics_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    @contextmanager
    def _metrics_lock(self, timeout: float = 5.0, stale: float = 30.0):
        """O_EXCL spin lock around the metrics read-modify-write.

        Best-effort by design: a lock older than ``stale`` seconds is
        presumed orphaned (its holder crashed) and broken; failing to
        acquire within ``timeout`` proceeds unlocked rather than
        wedging the caller — a rare double-count beats a deadlock.
        """
        lock_path = self.root / "metrics.lock"
        deadline = time.monotonic() + timeout
        fd = None
        while True:
            try:
                fd = os.open(
                    lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                break
            except FileExistsError:
                try:
                    age = time.time() - lock_path.stat().st_mtime
                    if age > stale:
                        lock_path.unlink()
                        continue
                except OSError:
                    pass
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.005)
        try:
            yield
        finally:
            if fd is not None:
                os.close(fd)
                try:
                    lock_path.unlink()
                except OSError:
                    pass


class MemoryStore:
    """Dict-backed store with the same interface as :class:`ArtifactStore`.

    Entries are held *serialized* and re-decoded on every ``get``, so a
    cache hit always returns fresh objects — callers mutating a returned
    artifact can never poison the cache (the aliasing hazard the old
    ``lru_cache`` layer had).
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._entries: dict[str, str] = {}
        self._kinds: dict[str, str] = {}

    def get(self, key: CacheKey) -> Optional[dict]:
        text = self._entries.get(key.digest())
        if text is None:
            return None
        payload = _decode_entry(text, key)
        if payload is None:
            del self._entries[key.digest()]
            self.metrics.inc("cache.quarantined")
        return payload

    def put(self, key: CacheKey, payload: dict) -> None:
        digest = key.digest()
        self._entries[digest] = _encode_entry(key, payload)
        self._kinds[digest] = key.kind

    def stats(self) -> dict:
        by_kind: dict[str, int] = {}
        for kind in self._kinds.values():
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {
            "root": None,
            "schema": SCHEMA_VERSION,
            "entries": len(self._entries),
            "by_kind": dict(sorted(by_kind.items())),
            "size_bytes": sum(len(t) for t in self._entries.values()),
            "quarantined": 0,
        }

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        self._kinds.clear()
        return removed

    def read_metrics(self) -> dict[str, int]:
        return {}

    def merge_metrics(self, deltas: dict[str, int]) -> None:
        pass
