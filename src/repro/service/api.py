"""The :class:`TuningService` façade: cached, parallel profile/analyze/
measure on top of the artifact store and the job pool.

This is the AutoFDO-style service loop of the paper's deployment story
(§3.4) in miniature: consumers ask for tuning artifacts (an execution
profile, a hint set, a scheme-run summary, a whole suite comparison);
the service answers from the content-addressed store when it can and
schedules the missing work — in parallel across worker processes when
configured — when it cannot.

Cache hits return **fresh deserialized objects** on every call.  The
old ``lru_cache`` layer in ``experiments/runner.py`` handed out shared
mutable ``SchemeRun``/``HintSet`` instances, so one experiment mutating
a cached object (e.g. ``run.profile = ...``) silently leaked into every
other consumer; store-backed reads cannot alias.
"""

from __future__ import annotations

import json
import os
from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.core.hints import HintSet
from repro.core.site import InjectionSite
from repro.experiments.runner import (
    SchemeRun,
    WorkloadComparison,
    hints_with_distance,
    hints_with_site,
    profile_workload,
    run_ainsworth_jones,
    run_baseline,
    run_with_hints,
    scale_suite,
)
from repro.machine.batch import BatchCell, run_batch
from repro.machine.codecache import resolve as code_cache_resolve
from repro.machine.config import MachineConfig, normalize_engine
from repro.machine.machine import Machine, RunResult
from repro.obs import telemetry
from repro.obs.sites import SiteReport, site_reports
from repro.passes.aptget_pass import AptGetPass
from repro.machine.pmu import Counters
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
    PassReport,
)
from repro.profiling.profile import ExecutionProfile
from repro.service.metrics import MetricsRegistry
from repro.service.pool import Job, JobPool
from repro.service.store import (
    ArtifactStore,
    CacheKey,
    MemoryStore,
    config_fingerprint,
)
from repro.workloads.registry import make_workload

#: Default ceiling on one profile/measure job (seconds); generous for
#: "full"-scale runs, small enough that a wedged worker cannot stall a
#: suite forever.  Only enforced on the multiprocess path.
DEFAULT_JOB_TIMEOUT = 1800.0
DEFAULT_RETRIES = 1

#: Buckets for the per-site timely-fraction histogram (a fraction, not
#: a latency, so the registry's second-scale defaults would be useless).
_TIMELY_FRACTION_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


# ----------------------------------------------------------------------
# Artifact (de)serialization: payloads are plain JSON-able dicts.
# ----------------------------------------------------------------------
def _counters_from_dict(raw: dict) -> Counters:
    counters = Counters()
    for f in dataclass_fields(Counters):
        if f.name in raw:
            setattr(counters, f.name, raw[f.name])
    return counters


def profile_to_payload(profile: ExecutionProfile, hints: HintSet) -> dict:
    return {
        "profile": json.loads(profile.to_json()),
        "counters": profile.counters.as_dict(),
        "hints": json.loads(hints.to_json()),
    }


def profile_from_payload(payload: dict) -> tuple[ExecutionProfile, HintSet]:
    profile = ExecutionProfile.from_json(json.dumps(payload["profile"]))
    profile.counters = _counters_from_dict(payload.get("counters", {}))
    hints = HintSet.from_json(json.dumps(payload["hints"]))
    return profile, hints


def run_to_payload(run: SchemeRun) -> dict:
    payload: dict = {
        "scheme": run.scheme,
        "value": run.result.value,
        "counters": run.result.counters.as_dict(),
        "report": None,
        "hints": None,
    }
    if run.report is not None:
        payload["report"] = {
            "injected": run.report.injected,
            "skipped": run.report.skipped,
            "added_instructions": run.report.added_instructions,
        }
    if run.hints is not None:
        payload["hints"] = json.loads(run.hints.to_json())
    return payload


def run_from_payload(payload: dict) -> SchemeRun:
    report = None
    if payload.get("report") is not None:
        raw = payload["report"]
        report = PassReport(
            injected=list(raw.get("injected", [])),
            skipped=list(raw.get("skipped", [])),
            added_instructions=raw.get("added_instructions", 0),
        )
    hints = None
    if payload.get("hints") is not None:
        hints = HintSet.from_json(json.dumps(payload["hints"]))
    return SchemeRun(
        scheme=payload["scheme"],
        result=RunResult(
            value=payload["value"],
            counters=_counters_from_dict(payload.get("counters", {})),
        ),
        report=report,
        hints=hints,
    )


# ----------------------------------------------------------------------
# Worker jobs (module-level: must be picklable for the process pool).
# Each recomputes exactly the artifacts the parent found missing and
# returns payload dicts; the parent owns all store writes, so the store
# is single-writer even with many workers.
# ----------------------------------------------------------------------
def _suite_job(
    name: str,
    scale: str,
    aj_distance: int,
    needs: tuple[str, ...],
    hints_payload: Optional[dict],
    config: MachineConfig,
) -> dict:
    out: dict = {}
    hints: Optional[HintSet] = None
    if "profile" in needs:
        profile, hints = profile_workload(
            make_workload(name, scale), config=config
        )
        out["profile"] = profile_to_payload(profile, hints)
    elif hints_payload is not None:
        hints = HintSet.from_json(json.dumps(hints_payload))
    if "baseline" in needs:
        out["baseline"] = run_to_payload(
            run_baseline(make_workload(name, scale), config=config)
        )
    if "aj" in needs:
        out["aj"] = run_to_payload(
            run_ainsworth_jones(
                make_workload(name, scale),
                distance=aj_distance,
                config=config,
            )
        )
    if "apt" in needs:
        if hints is None:
            raise RuntimeError(
                f"apt run for {name!r} requested without hints"
            )
        out["apt"] = run_to_payload(
            run_with_hints(make_workload(name, scale), hints, config=config)
        )
    return out


#: Artifact pieces making up one workload's suite comparison.
_SUITE_PIECES = ("profile", "baseline", "aj", "apt")


#: Schemes a sweep cell may name (matches RunRequest's contract).
SWEEP_SCHEMES = ("baseline", "aj", "apt-get")


def sweep_cell_grid(
    schemes: Sequence[str],
    distances: Sequence[int],
    cache_scales: Sequence[int],
) -> list[tuple[str, Optional[int], int]]:
    """Expand sweep axes into the canonical cell list.

    Cells are ``(scheme, distance, cache_scale)`` triples; the distance
    axis only applies to ``aj`` (the other schemes carry ``None``), so
    a grid never contains redundant cells.  Axes are sorted and
    deduplicated, making the expansion order-insensitive — two requests
    naming the same grid in different orders produce identical cell
    lists and therefore identical artifact/dedup keys.
    """
    unknown = sorted(set(schemes) - set(SWEEP_SCHEMES))
    if unknown:
        raise ValueError(
            f"unknown sweep scheme(s) {unknown}; "
            f"expected a subset of {list(SWEEP_SCHEMES)}"
        )
    if not schemes:
        raise ValueError("sweep needs at least one scheme")
    if not cache_scales:
        raise ValueError("sweep needs at least one cache scale")
    if any(int(s) < 1 for s in cache_scales):
        raise ValueError("cache scales must be positive integers")
    if "aj" in schemes:
        if not distances:
            raise ValueError("an aj sweep needs at least one distance")
        if any(int(d) < 1 for d in distances):
            raise ValueError("prefetch distances must be >= 1")
    cells: list[tuple[str, Optional[int], int]] = []
    for scheme in sorted(set(schemes)):
        cell_distances: tuple
        if scheme == "aj":
            cell_distances = tuple(sorted({int(d) for d in distances}))
        else:
            cell_distances = (None,)
        for distance in cell_distances:
            for cache_scale in sorted({int(s) for s in cache_scales}):
                cells.append((scheme, distance, cache_scale))
    return cells


class TuningService:
    """Profile-and-tuning façade over the store, pool and metrics.

    ``cache_dir=None`` (the default) uses an in-process
    :class:`MemoryStore` — same semantics, no persistence — so library
    users pay for a disk cache only when they ask for one.
    """

    def __init__(
        self,
        cache_dir: Optional[str | os.PathLike] = None,
        jobs: int = 1,
        timeout: Optional[float] = DEFAULT_JOB_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        machine_config: Optional[MachineConfig] = None,
        auto_flush: bool = True,
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.store: ArtifactStore | MemoryStore
        if cache_dir is not None:
            self.store = ArtifactStore(cache_dir, metrics=self.metrics)
        else:
            self.store = MemoryStore(metrics=self.metrics)
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.config = machine_config or MachineConfig()
        # Warm-engine default: a service that persists artifacts also
        # persists compiled engines, in the same directory — so serve
        # agents sharing a queue's cache dir skip cold builds.  An
        # explicit ``code_cache`` (including a disabled spelling like
        # "off", or REPRO_CODE_CACHE in the environment) wins.
        if cache_dir is not None and self.config.code_cache is None:
            self.config = replace(self.config, code_cache=str(cache_dir))
        self.code_cache = code_cache_resolve(
            self.config.code_cache, metrics=self.metrics
        )
        # ``code_cache`` is non-semantic (excluded from the
        # fingerprint), so artifact keys are unchanged by the above.
        self._fingerprint = config_fingerprint(self.config)
        self._flushed_counters: dict[str, int] = {}
        #: ``repro.serve`` agents set this False: they publish metrics
        #: through per-process snapshot files instead (one writer per
        #: file), and the controller folds the deltas into the store's
        #: cumulative ``metrics.json`` exactly once.
        self.auto_flush = auto_flush

    # ------------------------------------------------------------------
    # Keys + store access with hit/miss accounting.
    # ------------------------------------------------------------------
    def _config_for(self, engine: Optional[str]) -> MachineConfig:
        """This service's config, with a per-request engine override."""
        if engine is None:
            return self.config
        engine = normalize_engine(engine)
        if engine == self.config.engine:
            return self.config
        return replace(self.config, engine=engine)

    def _key(
        self,
        kind: str,
        workload: str,
        scale: str,
        config: Optional[MachineConfig] = None,
        **params,
    ) -> CacheKey:
        """Build an artifact key.

        Every key names the engine and the memory-hierarchy fingerprint
        explicitly (on top of the whole-config fingerprint), so runs
        with different engines or cache geometries can never collide in
        a shared cache directory — and a human reading the store can
        tell which engine produced an artifact.
        """
        config = config if config is not None else self.config
        fingerprint = (
            self._fingerprint
            if config is self.config
            else config_fingerprint(config)
        )
        return CacheKey.make(
            kind,
            workload,
            scale,
            fingerprint,
            engine=config.engine,
            mem=config_fingerprint(config.memory),
            **params,
        )

    def _get(self, key: CacheKey) -> Optional[dict]:
        payload = self.store.get(key)
        if payload is None:
            self.metrics.inc("cache.misses")
            self.metrics.event(
                "cache.miss", kind=key.kind, workload=key.workload
            )
        else:
            self.metrics.inc("cache.hits")
            self.metrics.event(
                "cache.hit", kind=key.kind, workload=key.workload
            )
        telemetry.annotate(
            "artifact-cache", kind=key.kind, workload=key.workload,
            hit=payload is not None,
        )
        return payload

    def _put(self, key: CacheKey, payload: dict) -> None:
        """``store.put`` under a telemetry span (no-op outside a job)."""
        with telemetry.phase("store.put", kind=key.kind,
                             workload=key.workload):
            self.store.put(key, payload)

    def request_key(self, request) -> CacheKey:
        """The engine-aware artifact key identifying a v1 request.

        For profile/run/site-report requests this is *exactly* the key
        the corresponding artifact is cached under, so the ``repro.serve``
        queue deduplicating on its digest is idempotent with the cache:
        two submissions of one request share one execution and one
        stored artifact.  Suite requests get a composite key in the same
        family (kind ``suite``) naming the resolved workload list; sweep
        requests a composite key (kind ``sweep``) naming the canonical
        axis grid, so two submissions of the same grid in any axis order
        share one digest.
        """
        from repro import api as api_v1

        config = self._config_for(getattr(request, "engine", None))
        if isinstance(request, api_v1.ProfileRequest):
            return self._key(
                "profile", request.workload, request.scale, config=config
            )
        if isinstance(request, api_v1.RunRequest):
            params = {"scheme": request.scheme}
            if request.scheme == "aj":
                params["distance"] = request.distance
            return self._key(
                "run", request.workload, request.scale, config=config,
                **params,
            )
        if isinstance(request, api_v1.SiteReportRequest):
            params = {}
            if request.fixed_distance is not None:
                params["fixed_distance"] = request.fixed_distance
            return self._key(
                "sites", request.workload, request.scale, config=config,
                **params,
            )
        if isinstance(request, api_v1.SweepRequest):
            return self._key(
                "sweep", request.workload, request.scale, config=config,
                schemes="+".join(request.schemes),
                distances=request.distances,
                cache_scales=request.cache_scales,
            )
        if isinstance(request, api_v1.SuiteRequest):
            names = (
                tuple(request.workloads)
                if request.workloads is not None
                else tuple(scale_suite(request.scale))
            )
            return self._key(
                "suite", "+".join(names), request.scale, config=config,
                aj_distance=request.aj_distance,
            )
        raise TypeError(
            f"cannot key request of type {type(request).__name__}"
        )

    def execute(self, request):
        """Run one ``repro.api`` v1 request against this service.

        Typed dispatch: a :class:`repro.api.ProfileRequest` returns a
        ``ProfileResult``, and so on.  This is the canonical v1 entry
        point; the named methods below are thin wrappers kept for
        ergonomics and compatibility.
        """
        from repro import api as api_v1

        return api_v1.execute(request, service=self)

    @staticmethod
    def _shim_workload(workload: Optional[str], name: Optional[str]) -> str:
        """Reject the legacy ``name=`` keyword (removed in this release).

        ``name=`` was deprecated when the v1 surface landed and has now
        been retired; the parameter is kept in the signatures solely so
        stragglers get this targeted error instead of an opaque
        ``TypeError``.
        """
        if name is not None:
            raise ValueError(
                "the legacy name= keyword was removed; pass workload= "
                "instead, e.g. service.profile(workload="
                f"{name!r})"
            )
        if workload is None:
            raise TypeError("missing required argument: workload")
        return workload

    # ------------------------------------------------------------------
    # Single-artifact API (inline compute on miss).
    # ------------------------------------------------------------------
    def profile(
        self,
        workload: Optional[str] = None,
        scale: str = "small",
        *,
        engine: Optional[str] = None,
        name: Optional[str] = None,
    ) -> tuple[ExecutionProfile, HintSet]:
        """Cached profiling run + hint analysis (APT-GET steps 1-5)."""
        workload = self._shim_workload(workload, name)
        config = self._config_for(engine)
        key = self._key("profile", workload, scale, config=config)
        payload = self._get(key)
        if payload is None:
            profile, hints = profile_workload(
                make_workload(workload, scale), config=config
            )
            payload = profile_to_payload(profile, hints)
            self._put(key, payload)
        return profile_from_payload(payload)

    def analyze(
        self,
        workload: Optional[str] = None,
        scale: str = "small",
        *,
        engine: Optional[str] = None,
        name: Optional[str] = None,
    ) -> HintSet:
        """The hint set APT-GET derives for a workload (cached)."""
        workload = self._shim_workload(workload, name)
        return self.profile(workload, scale, engine=engine)[1]

    def baseline(
        self,
        workload: Optional[str] = None,
        scale: str = "small",
        *,
        engine: Optional[str] = None,
        name: Optional[str] = None,
    ) -> SchemeRun:
        """Cached non-prefetching baseline measurement."""
        workload = self._shim_workload(workload, name)
        return self.run(workload, scale, scheme="baseline", engine=engine)

    def run(
        self,
        workload: str,
        scale: str = "small",
        *,
        scheme: str = "baseline",
        distance: int = 32,
        engine: Optional[str] = None,
    ) -> SchemeRun:
        """Cached measurement of one scheme on one workload.

        ``scheme`` is ``baseline`` (no prefetching), ``aj`` (Ainsworth &
        Jones fixed-distance injection, parameterized by ``distance``)
        or ``apt-get`` (profile-guided hints; profiles via this cache).
        """
        config = self._config_for(engine)
        if scheme == "baseline":
            key = self._key("run", workload, scale, config=config,
                            scheme="baseline")
            compute = lambda: run_baseline(  # noqa: E731
                make_workload(workload, scale), config=config
            )
        elif scheme == "aj":
            key = self._key("run", workload, scale, config=config,
                            scheme="aj", distance=distance)
            compute = lambda: run_ainsworth_jones(  # noqa: E731
                make_workload(workload, scale),
                distance=distance,
                config=config,
            )
        elif scheme == "apt-get":
            key = self._key("run", workload, scale, config=config,
                            scheme="apt-get")

            def compute():
                _, hints = self.profile(workload, scale, engine=engine)
                return run_with_hints(
                    make_workload(workload, scale), hints, config=config
                )

        else:
            raise ValueError(
                f"unknown scheme {scheme!r}; "
                "expected baseline, aj, or apt-get"
            )
        payload = self._get(key)
        if payload is None:
            payload = run_to_payload(compute())
            self._put(key, payload)
        return run_from_payload(payload)

    # ------------------------------------------------------------------
    # Batched multi-config sweeps.
    # ------------------------------------------------------------------
    def _cell_config(
        self, config: MachineConfig, cache_scale: int
    ) -> MachineConfig:
        if cache_scale == 1:
            return config
        return replace(config, memory=config.memory.scaled(cache_scale))

    def _cell_key(
        self,
        workload: str,
        scale: str,
        scheme: str,
        distance: Optional[int],
        cell_config: MachineConfig,
    ):
        """The artifact key for one sweep cell.

        Deliberately *identical* to the key the equivalent sequential
        ``run()`` produces under the same machine config, so sweep
        cells and single runs share one artifact: a sweep warms the
        cache for later single runs and vice versa.
        """
        params = {"scheme": scheme}
        if scheme == "aj":
            params["distance"] = distance
        return self._key(
            "run", workload, scale, config=cell_config, **params
        )

    def sweep(
        self,
        workload: str,
        scale: str = "small",
        *,
        schemes: Sequence[str] = ("aj",),
        distances: Sequence[int] = (4, 8, 16, 32, 64),
        cache_scales: Sequence[int] = (1,),
        engine: Optional[str] = None,
    ) -> dict:
        """Measure a config grid over one workload in batched passes.

        The grid is ``sweep_cell_grid(schemes, distances, cache_scales)``;
        each cell is cached under exactly the key the equivalent single
        ``run()`` would use.  Missing cells are grouped per scheme and
        executed through :func:`repro.machine.batch.run_batch` — one
        pass over the instruction stream per group when the cells align,
        per-cell sequential replay when they do not (the ``execution``
        metadata records which happened and why).

        Returns a payload dict (``cells`` + ``execution``); the v1
        :class:`repro.api.SweepRequest` path wraps it in a
        ``SweepResult``.
        """
        config = self._config_for(engine)
        grid = sweep_cell_grid(schemes, distances, cache_scales)
        cells: list[dict] = []
        misses: list[int] = []
        keys = []
        for scheme, distance, cache_scale in grid:
            cell_config = self._cell_config(config, cache_scale)
            key = self._cell_key(
                workload, scale, scheme, distance, cell_config
            )
            keys.append(key)
            payload = self._get(key)
            cells.append(
                {
                    "scheme": scheme,
                    "distance": distance,
                    "cache_scale": cache_scale,
                    "cached": payload is not None,
                    "batched": None,
                    "tier": None,
                    "run": payload,
                }
            )
            if payload is None:
                misses.append(len(cells) - 1)

        groups: list[dict] = []
        by_scheme: dict[str, list[int]] = {}
        for index in misses:
            by_scheme.setdefault(cells[index]["scheme"], []).append(index)
        for scheme, indices in by_scheme.items():
            group_meta = self._run_sweep_group(
                workload, scale, scheme, indices, cells, keys, config,
                engine,
            )
            groups.append(group_meta)

        self.metrics.inc("sweep.cells", len(grid))
        self.metrics.inc("sweep.cached_cells", len(grid) - len(misses))
        self.flush_metrics()
        return {
            "workload": workload,
            "scale": scale,
            "engine": config.engine,
            "cells": cells,
            "execution": {
                "cached_cells": len(grid) - len(misses),
                "computed_cells": len(misses),
                "groups": groups,
            },
        }

    def _run_sweep_group(
        self,
        workload: str,
        scale: str,
        scheme: str,
        indices: list[int],
        cells: list[dict],
        keys: list,
        config: MachineConfig,
        engine: Optional[str],
    ) -> dict:
        """Build, batch-execute and store one scheme's missing cells."""
        batch_cells: list[BatchCell] = []
        reports: list = []
        hint_sets: list = []
        entry = None
        for index in indices:
            cell = cells[index]
            cell_config = self._cell_config(config, cell["cache_scale"])
            instance = make_workload(workload, scale)
            entry = instance.entry
            label = self._cell_label(scheme, cell["distance"])
            with telemetry.build_phase(instance.name, scheme=label):
                module, space = instance.build()
                report = None
                hints = None
                if scheme == "aj":
                    report = AinsworthJonesPass(
                        AinsworthJonesConfig(distance=cell["distance"])
                    ).run(module)
                elif scheme == "apt-get":
                    hints = self._profile_with_config(
                        workload, scale, cell_config
                    )[1]
                    report = AptGetPass(hints).run(module)
            reports.append(report)
            hint_sets.append(hints)
            batch_cells.append(BatchCell(module, space, cell_config))

        with telemetry.phase(
            "sweep.batch", scheme=scheme, cells=len(indices)
        ):
            outcome = run_batch(batch_cells, function=entry)
        telemetry.annotate(
            "sweep.outcome",
            scheme=scheme,
            cells=len(indices),
            batched=outcome.batched,
            tier=outcome.tier,
            reason=outcome.reason,
        )
        self.metrics.inc(
            "sweep.batched_cells" if outcome.batched
            else "sweep.fallback_cells",
            len(indices),
        )
        if not outcome.batched and outcome.reason_code:
            # Per-cause fallback counter: ``batch.fallback.<code>`` —
            # lets dashboards tell a shape mismatch from a divergence
            # mid-run without parsing the human-readable reason.
            self.metrics.inc(f"batch.fallback.{outcome.reason_code}")
        self.metrics.event(
            "sweep.group",
            scheme=scheme,
            cells=len(indices),
            batched=outcome.batched,
            tier=outcome.tier,
        )

        for position, index in enumerate(indices):
            cell = cells[index]
            run = SchemeRun(
                self._cell_label(scheme, cell["distance"]),
                outcome.results[position],
                report=reports[position],
                hints=hint_sets[position],
            )
            payload = run_to_payload(run)
            self._put(keys[index], payload)
            cell["run"] = payload
            cell["batched"] = outcome.batched
            cell["tier"] = outcome.tier
        return {
            "scheme": scheme,
            "cells": len(indices),
            "batched": outcome.batched,
            "tier": outcome.tier,
            "reason": outcome.reason,
            "reason_code": outcome.reason_code,
        }

    @staticmethod
    def _cell_label(scheme: str, distance: Optional[int]) -> str:
        """The SchemeRun label, matching the sequential runner's."""
        return f"aj-{distance}" if scheme == "aj" else scheme

    def _profile_with_config(
        self, workload: str, scale: str, config: MachineConfig
    ) -> tuple[ExecutionProfile, HintSet]:
        """`profile()` under an explicit (possibly cache-scaled) config."""
        key = self._key("profile", workload, scale, config=config)
        payload = self._get(key)
        if payload is None:
            profile, hints = profile_workload(
                make_workload(workload, scale), config=config
            )
            payload = profile_to_payload(profile, hints)
            self._put(key, payload)
        return profile_from_payload(payload)

    def site_report(
        self,
        workload: Optional[str] = None,
        scale: str = "small",
        fixed_distance: Optional[int] = None,
        *,
        engine: Optional[str] = None,
        name: Optional[str] = None,
    ) -> dict[str, SiteReport]:
        """Per-injection-site timeliness rollups from one traced run
        (cached under the ``sites`` artifact kind).

        With the default ``fixed_distance=None`` the workload runs with
        its Eq-1/Eq-2 hints.  Passing a distance instead measures the
        naive baseline — every hint forced to the inner site at that
        fixed distance (a compiler's ``-fprefetch-loop-arrays`` shape) —
        so the two calls together show what profile-guided distance and
        site selection buy.

        Fresh (uncached) computations feed aggregate event counts into
        this service's :class:`MetricsRegistry` under ``obs.prefetch.*``
        and observe each site's timely fraction in the
        ``obs.site.timely_fraction`` histogram.
        """
        workload = self._shim_workload(workload, name)
        config = self._config_for(engine)
        params = {}
        if fixed_distance is not None:
            params["fixed_distance"] = fixed_distance
        key = self._key("sites", workload, scale, config=config, **params)
        payload = self._get(key)
        if payload is None:
            _, hints = self.profile(workload, scale, engine=engine)
            if fixed_distance is not None:
                hints = hints_with_distance(
                    hints_with_site(hints, InjectionSite.INNER),
                    fixed_distance,
                )
            instance = make_workload(workload, scale)
            with telemetry.build_phase(instance.name, scheme="sites"):
                module, space = instance.build()
                AptGetPass(hints).run(module)
            machine = Machine(module, space, config=config)
            trace = machine.enable_tracing()
            with telemetry.run_phase(machine, scheme="sites", traced=True):
                machine.run(instance.entry)
            reports = site_reports(trace)
            payload = {
                "sites": {
                    label: report.to_dict()
                    for label, report in reports.items()
                }
            }
            self._put(key, payload)
            # A traced run is the one place the simulator-level
            # prefetch-lifecycle timeline exists; export it keyed by
            # the job's trace id so the controller can stitch it under
            # this job's engine.run span (merged Perfetto view).
            context = telemetry.current()
            if context is not None:
                from repro.obs.timeline import chrome_trace

                context.put_sim_trace(chrome_trace(
                    trace,
                    metadata={"workload": workload, "scale": scale},
                ))
            for field in (
                "issued", "timely", "late", "early_evicted", "unused"
            ):
                total = sum(getattr(r, field) for r in reports.values())
                if total:
                    self.metrics.inc(f"obs.prefetch.{field}", total)
            for report in reports.values():
                if report.used:
                    self.metrics.histogram(
                        "obs.site.timely_fraction",
                        _TIMELY_FRACTION_BUCKETS,
                    ).observe(report.timely_fraction)
            self.flush_metrics()
        return {
            label: SiteReport.from_dict(raw)
            for label, raw in payload["sites"].items()
        }

    # ------------------------------------------------------------------
    # Suite comparison (parallel compute of misses).
    # ------------------------------------------------------------------
    def compare_suite(
        self,
        scale: str = "small",
        aj_distance: int = 32,
        names: Optional[Iterable[str]] = None,
        jobs: Optional[int] = None,
        *,
        engine: Optional[str] = None,
    ) -> dict[str, WorkloadComparison]:
        """Baseline + A&J + APT-GET over a suite, cache-backed.

        Missing per-workload artifacts are computed by the job pool.  A
        workload whose job raises or times out (after retries) comes
        back as a :class:`WorkloadComparison` with ``error`` set and no
        runs — an error row — while every other workload completes.
        """
        config = self._config_for(engine)
        names = list(names) if names is not None else scale_suite(scale)
        state: dict[str, dict] = {}
        errors: dict[str, str] = {}
        pending: list[Job] = []
        for name in names:
            cached: dict[str, dict] = {}
            for piece in _SUITE_PIECES:
                key = self._piece_key(piece, name, scale, aj_distance, config)
                payload = self._get(key)
                if payload is not None:
                    cached[piece] = payload
            state[name] = cached
            needs = tuple(p for p in _SUITE_PIECES if p not in cached)
            if needs:
                hints_payload = (
                    cached["profile"]["hints"] if "profile" in cached else None
                )
                pending.append(
                    Job(
                        key=name,
                        fn=_suite_job,
                        args=(
                            name,
                            scale,
                            aj_distance,
                            needs,
                            hints_payload,
                            config,
                        ),
                    )
                )

        if pending:
            pool = JobPool(
                workers=jobs if jobs is not None else self.jobs,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
                metrics=self.metrics,
            )
            for outcome in pool.run(pending):
                if not outcome.ok:
                    errors[outcome.key] = outcome.error
                    self.metrics.inc("service.errors")
                    continue
                for piece, payload in outcome.value.items():
                    key = self._piece_key(
                        piece, outcome.key, scale, aj_distance, config
                    )
                    self._put(key, payload)
                    state[outcome.key][piece] = payload

        comparisons: dict[str, WorkloadComparison] = {}
        for name in names:
            if name in errors:
                comparisons[name] = WorkloadComparison(
                    workload=name, error=errors[name]
                )
                continue
            comparisons[name] = self._build_comparison(name, state[name])
        self.flush_metrics()
        return comparisons

    def _piece_key(
        self,
        piece: str,
        name: str,
        scale: str,
        aj_distance: int,
        config: Optional[MachineConfig] = None,
    ) -> CacheKey:
        if piece == "profile":
            return self._key("profile", name, scale, config=config)
        if piece == "baseline":
            return self._key(
                "run", name, scale, config=config, scheme="baseline"
            )
        if piece == "aj":
            return self._key(
                "run", name, scale, config=config,
                scheme="aj", distance=aj_distance,
            )
        if piece == "apt":
            return self._key(
                "run", name, scale, config=config, scheme="apt-get"
            )
        raise ValueError(f"unknown suite piece {piece!r}")

    def _build_comparison(
        self, name: str, payloads: dict[str, dict]
    ) -> WorkloadComparison:
        comparison = WorkloadComparison(workload=name)
        comparison.runs["baseline"] = run_from_payload(payloads["baseline"])
        comparison.runs["aj"] = run_from_payload(payloads["aj"])
        apt = run_from_payload(payloads["apt"])
        profile, hints = profile_from_payload(payloads["profile"])
        apt.profile = profile
        if apt.hints is None:
            apt.hints = hints
        comparison.runs["apt-get"] = apt
        return comparison

    # ------------------------------------------------------------------
    # Cache management + metrics persistence.
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        stats = self.store.stats()
        stats["metrics"] = self.store.read_metrics()
        if self.code_cache is not None:
            stats["codecache"] = self.code_cache.stats()
        return stats

    def clear_cache(self) -> int:
        return self.store.clear()

    def flush_metrics(self) -> None:
        """Fold this service's counter *deltas* into the store's
        cumulative ``metrics.json`` (no-op for in-memory stores, and
        for services with ``auto_flush=False``, whose process publishes
        a snapshot file instead)."""
        if not self.auto_flush:
            return
        current = self.metrics.counters()
        deltas = {
            name: value - self._flushed_counters.get(name, 0)
            for name, value in current.items()
        }
        self.store.merge_metrics(deltas)
        self._flushed_counters = current


# ----------------------------------------------------------------------
# The process-global default service: what `experiments.runner`'s
# cached_* helpers and the CLI use unless configured otherwise.
# ----------------------------------------------------------------------
_SERVICE: Optional[TuningService] = None


def get_service() -> TuningService:
    """The process-wide service (created on first use).

    ``REPRO_CACHE_DIR`` / ``REPRO_JOBS`` environment variables seed the
    default instance, so scripts and CI get a disk-backed, parallel
    service without code changes.
    """
    global _SERVICE
    if _SERVICE is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        except ValueError:
            jobs = 1
        _SERVICE = TuningService(cache_dir=cache_dir, jobs=jobs)
    return _SERVICE


def configure_service(**kwargs) -> TuningService:
    """Replace the process-wide service (CLI ``--jobs``/``--cache-dir``)."""
    global _SERVICE
    _SERVICE = TuningService(**kwargs)
    return _SERVICE
