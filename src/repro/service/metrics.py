"""In-process service metrics: counters + latency histograms.

The registry is deliberately tiny — the service needs cache hit/miss
counts, job durations, retry/timeout tallies and a way to render them —
but it keeps the Prometheus-style shape (monotonic counters, bucketed
histograms with ``sum``/``count``) so a later PR can export it.

Every mutation can also emit a structured ``logging`` event on the
``repro.service`` logger (DEBUG level), so ``logging.basicConfig`` plus
a level is enough to trace a run.

**Multi-process use** (the ``repro.serve`` controller/agent split):
registries do not share state across processes, and concurrent
read-modify-write flushes to one shared file can clobber each other.
Instead, each process atomically owns its *own* snapshot file —
``metrics-<pid>.json``, written with :func:`write_snapshot` — and a
single merger (the controller) folds all snapshots together with
:func:`merge_snapshots` for ``/metrics`` and the cumulative
``metrics.json``.  One writer per file, one merger, no clobbering.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

logger = logging.getLogger("repro.service")

#: Default latency buckets (seconds): micro-jobs up to whole-suite runs.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """A fixed-bucket latency histogram with sum/count/min/max."""

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        # Bucket bounds are inclusive upper edges, so the first bound
        # >= value is the bucket; past the last bound -> +inf tail
        # (bisect_left lands on len(buckets), the tail slot).
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    def to_dict(self) -> dict:
        buckets = {
            str(bound): count
            for bound, count in zip(self.buckets, self.bucket_counts)
        }
        buckets["+inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (0..1) by linear interpolation within
        the landing bucket, clamped to the observed min/max; ``None``
        with no observations.  See :func:`snapshot_quantile`."""
        return snapshot_quantile(self.to_dict(), q)

    def merge_dict(self, data: dict) -> None:
        """Fold a ``to_dict()`` snapshot (possibly from another process)
        into this histogram.  Matching bucket layouts merge exactly; a
        foreign bound's count lands in the bucket containing that bound.
        """
        count = int(data.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.sum += float(data.get("sum", 0.0))
        for field in ("min", "max"):
            value = data.get(field)
            if value is None:
                continue
            current = getattr(self, field)
            if current is None:
                setattr(self, field, value)
            else:
                pick = min if field == "min" else max
                setattr(self, field, pick(current, value))
        for bound, bucket_count in data.get("buckets", {}).items():
            if not bucket_count:
                continue
            if bound == "+inf":
                self.bucket_counts[-1] += bucket_count
            else:
                index = bisect_left(self.buckets, float(bound))
                self.bucket_counts[index] += bucket_count


class MetricsRegistry:
    """Thread-safe registry of named counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, buckets)
            return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def get(self, name: str) -> Union[int, dict]:
        """Current value of a counter (0 if never incremented) or, when
        ``name`` names a histogram instead, its ``to_dict()`` snapshot
        (count/sum/min/max/buckets)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is not None:
                return counter.value
            histogram = self._histograms.get(name)
            if histogram is not None:
                return histogram.to_dict()
        return 0

    # ------------------------------------------------------------------
    def event(self, name: str, **fields) -> None:
        """Emit a structured log event on the ``repro.service`` logger."""
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("%s %s", name, json.dumps(fields, sort_keys=True))

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "histograms": {
                    name: h.to_dict()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a ``to_dict()``-shaped snapshot into this registry.

        Counters add; histograms merge bucket-by-bucket (bounds are
        unioned, so snapshots taken with different bucket layouts still
        combine losslessly at the dict level).
        """
        for name, value in snapshot.get("counters", {}).items():
            if isinstance(value, (int, float)) and value:
                self.inc(name, int(value))
        for name, data in snapshot.get("histograms", {}).items():
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    bounds = tuple(
                        float(b)
                        for b in data.get("buckets", {})
                        if b != "+inf"
                    )
                    histogram = self._histograms[name] = Histogram(
                        name, bounds or DEFAULT_BUCKETS
                    )
            histogram.merge_dict(data)

    def report(self) -> str:
        """Human-readable one-metric-per-line rendering."""
        snapshot = self.to_dict()
        lines = []
        for name, value in snapshot["counters"].items():
            lines.append(f"{name}: {value}")
        for name, data in snapshot["histograms"].items():
            lines.append(
                f"{name}: count={data['count']} sum={data['sum']:.4f}s"
                + (
                    f" min={data['min']:.4f}s max={data['max']:.4f}s"
                    if data["count"]
                    else ""
                )
            )
        return "\n".join(lines)


def snapshot_quantile(data: dict, q: float) -> Optional[float]:
    """Estimated q-quantile of a ``Histogram.to_dict()`` snapshot.

    The classic fixed-bucket estimator (what PromQL's
    ``histogram_quantile`` computes): find the bucket the rank lands
    in, interpolate linearly between its bounds, and clamp to the
    recorded min/max so sparse histograms don't report values outside
    what was ever observed.  A rank landing in the ``+inf`` tail
    reports the observed max.  Returns ``None`` for empty histograms.
    """
    count = int(data.get("count", 0))
    if count <= 0:
        return None
    q = min(1.0, max(0.0, float(q)))
    buckets = data.get("buckets", {})
    bounds = sorted(float(bound) for bound in buckets if bound != "+inf")
    rank = q * count
    cumulative = 0
    lower = 0.0
    value = None
    for bound in bounds:
        bucket_count = int(buckets.get(str(bound), 0))
        if bucket_count and cumulative + bucket_count >= rank:
            fraction = (rank - cumulative) / bucket_count
            value = lower + (bound - lower) * fraction
            break
        cumulative += bucket_count
        lower = bound
    minimum = data.get("min")
    maximum = data.get("max")
    if value is None:  # +inf tail
        value = maximum if maximum is not None else lower
    if minimum is not None:
        value = max(value, minimum)
    if maximum is not None:
        value = min(value, maximum)
    return value


# ----------------------------------------------------------------------
# Per-process snapshot files (the multi-process flush protocol).
# ----------------------------------------------------------------------
def snapshot_path(directory: str | os.PathLike, pid: Optional[int] = None) -> Path:
    """The canonical per-process snapshot file: ``metrics-<pid>.json``."""
    pid = os.getpid() if pid is None else pid
    return Path(directory) / f"metrics-{pid}.json"


def write_snapshot(
    registry: MetricsRegistry,
    directory: str | os.PathLike,
    pid: Optional[int] = None,
) -> Path:
    """Atomically (re)write this process's snapshot file.

    Each process only ever rewrites its *own* ``metrics-<pid>.json``
    (single-writer), so concurrent agents cannot clobber each other the
    way concurrent read-modify-write flushes to one shared file can.
    """
    path = snapshot_path(directory, pid)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=".tmp-metrics-", suffix=".json", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(registry.to_dict(), sort_keys=True))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def read_snapshot(path: str | os.PathLike) -> Optional[dict]:
    """One snapshot file, or ``None`` if unreadable/corrupt (a torn or
    half-written file degrades to 'no data', never a crash)."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict):
        return None
    return raw


def iter_snapshots(directory: str | os.PathLike) -> Iterable[tuple[Path, dict]]:
    """Yield ``(path, snapshot)`` for every readable snapshot file."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("metrics-*.json")):
        snapshot = read_snapshot(path)
        if snapshot is not None:
            yield path, snapshot


def merge_snapshots(
    directory: str | os.PathLike,
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold every per-process snapshot under ``directory`` into one
    registry (a fresh one unless ``into`` is given).  This is the
    controller's merge step behind ``/metrics``."""
    merged = into if into is not None else MetricsRegistry()
    for _, snapshot in iter_snapshots(directory):
        merged.merge_snapshot(snapshot)
    return merged
