"""In-process service metrics: counters + latency histograms.

The registry is deliberately tiny — the service needs cache hit/miss
counts, job durations, retry/timeout tallies and a way to render them —
but it keeps the Prometheus-style shape (monotonic counters, bucketed
histograms with ``sum``/``count``) so a later PR can export it.

Every mutation can also emit a structured ``logging`` event on the
``repro.service`` logger (DEBUG level), so ``logging.basicConfig`` plus
a level is enough to trace a run.
"""

from __future__ import annotations

import json
import logging
import threading
from bisect import bisect_left
from typing import Optional, Sequence, Union

logger = logging.getLogger("repro.service")

#: Default latency buckets (seconds): micro-jobs up to whole-suite runs.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """A fixed-bucket latency histogram with sum/count/min/max."""

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        # Bucket bounds are inclusive upper edges, so the first bound
        # >= value is the bucket; past the last bound -> +inf tail
        # (bisect_left lands on len(buckets), the tail slot).
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    def to_dict(self) -> dict:
        buckets = {
            str(bound): count
            for bound, count in zip(self.buckets, self.bucket_counts)
        }
        buckets["+inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Thread-safe registry of named counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, buckets)
            return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def get(self, name: str) -> Union[int, dict]:
        """Current value of a counter (0 if never incremented) or, when
        ``name`` names a histogram instead, its ``to_dict()`` snapshot
        (count/sum/min/max/buckets)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is not None:
                return counter.value
            histogram = self._histograms.get(name)
            if histogram is not None:
                return histogram.to_dict()
        return 0

    # ------------------------------------------------------------------
    def event(self, name: str, **fields) -> None:
        """Emit a structured log event on the ``repro.service`` logger."""
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("%s %s", name, json.dumps(fields, sort_keys=True))

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "histograms": {
                    name: h.to_dict()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def report(self) -> str:
        """Human-readable one-metric-per-line rendering."""
        snapshot = self.to_dict()
        lines = []
        for name, value in snapshot["counters"].items():
            lines.append(f"{name}: {value}")
        for name, data in snapshot["histograms"].items():
            lines.append(
                f"{name}: count={data['count']} sum={data['sum']:.4f}s"
                + (
                    f" min={data['min']:.4f}s max={data['max']:.4f}s"
                    if data["count"]
                    else ""
                )
            )
        return "\n".join(lines)
