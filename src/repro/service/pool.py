"""Multiprocess job execution for the tuning service.

A :class:`JobPool` runs profile/analyze/measure jobs across worker
processes (``concurrent.futures.ProcessPoolExecutor``) with:

* **per-job timeouts** — a wedged simulation run is abandoned and
  reported, not waited on forever;
* **bounded retry with exponential backoff** — transient failures
  (a killed worker, a flaky filesystem) are retried up to ``retries``
  times, sleeping ``backoff * 2**attempt`` between attempts;
* **failure isolation** — a job that still fails after its retries is
  returned as a failed :class:`JobOutcome`; it never raises into the
  caller, so one crashed workload degrades to an error row while the
  rest of the suite completes.

Job functions must be picklable (module-level) and deterministic;
outcomes are returned in submission order, so ``workers=1`` and
``workers=N`` produce identical result sequences.

With ``workers <= 1`` jobs run inline in the calling process (no fork
overhead, exact legacy semantics); per-job timeouts are only
enforceable in the multiprocess path.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.service.metrics import MetricsRegistry


@dataclass
class Job:
    """One unit of work: a picklable function plus arguments."""

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


@dataclass
class JobOutcome:
    """What happened to one job, in submission order."""

    key: str
    ok: bool
    value: Any = None
    error: str = ""
    attempts: int = 1
    duration: float = 0.0
    timed_out: bool = False


class JobPool:
    """Run jobs with retries, timeouts and failure isolation."""

    def __init__(
        self,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.metrics = metrics or MetricsRegistry()

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> list[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers <= 1:
            return [self._run_inline(job) for job in jobs]
        return self._run_parallel(jobs)

    # ------------------------------------------------------------------
    def _record(self, outcome: JobOutcome) -> None:
        self.metrics.inc("service.jobs")
        self.metrics.observe("service.job_seconds", outcome.duration)
        if not outcome.ok:
            self.metrics.inc("service.job_failures")
        self.metrics.event(
            "job.done",
            key=outcome.key,
            ok=outcome.ok,
            attempts=outcome.attempts,
            duration=round(outcome.duration, 6),
            timed_out=outcome.timed_out,
        )

    def _sleep_before_retry(self, attempt: int) -> None:
        self.metrics.inc("service.job_retries")
        if self.backoff > 0:
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    # ------------------------------------------------------------------
    def _run_inline(self, job: Job) -> JobOutcome:
        start = time.perf_counter()
        attempts = 0
        error = ""
        while attempts <= self.retries:
            attempts += 1
            try:
                value = job.fn(*job.args, **job.kwargs)
            except Exception:
                error = traceback.format_exc(limit=4).strip()
            else:
                outcome = JobOutcome(
                    key=job.key,
                    ok=True,
                    value=value,
                    attempts=attempts,
                    duration=time.perf_counter() - start,
                )
                self._record(outcome)
                return outcome
            if attempts <= self.retries:
                self._sleep_before_retry(attempts)
        outcome = JobOutcome(
            key=job.key,
            ok=False,
            error=error,
            attempts=attempts,
            duration=time.perf_counter() - start,
        )
        self._record(outcome)
        return outcome

    # ------------------------------------------------------------------
    def _run_parallel(self, jobs: list[Job]) -> list[JobOutcome]:
        executor = ProcessPoolExecutor(
            max_workers=min(self.workers, len(jobs))
        )
        try:
            futures = [
                executor.submit(job.fn, *job.args, **job.kwargs)
                for job in jobs
            ]
            return [
                self._await(executor, job, future)
                for job, future in zip(jobs, futures)
            ]
        finally:
            # Don't block on a wedged (timed-out) worker; queued work is
            # cancelled, running processes are left to finish on their own.
            executor.shutdown(wait=False, cancel_futures=True)

    def _await(
        self, executor: ProcessPoolExecutor, job: Job, future
    ) -> JobOutcome:
        start = time.perf_counter()
        attempts = 0
        error = ""
        timed_out = False
        while True:
            attempts += 1
            retriable = True
            try:
                value = future.result(timeout=self.timeout)
            except FutureTimeoutError:
                timed_out = True
                error = f"timed out after {self.timeout}s"
                future.cancel()
                self.metrics.inc("service.job_timeouts")
            except BrokenProcessPool as exc:
                # The pool itself is dead; resubmission cannot succeed.
                error = f"BrokenProcessPool: {exc}"
                retriable = False
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
            else:
                outcome = JobOutcome(
                    key=job.key,
                    ok=True,
                    value=value,
                    attempts=attempts,
                    duration=time.perf_counter() - start,
                    timed_out=False,
                )
                self._record(outcome)
                return outcome
            if not retriable or attempts > self.retries:
                outcome = JobOutcome(
                    key=job.key,
                    ok=False,
                    error=error,
                    attempts=attempts,
                    duration=time.perf_counter() - start,
                    timed_out=timed_out,
                )
                self._record(outcome)
                return outcome
            self._sleep_before_retry(attempts)
            try:
                future = executor.submit(job.fn, *job.args, **job.kwargs)
            except (RuntimeError, BrokenProcessPool) as exc:
                outcome = JobOutcome(
                    key=job.key,
                    ok=False,
                    error=f"resubmit failed: {exc}",
                    attempts=attempts,
                    duration=time.perf_counter() - start,
                    timed_out=timed_out,
                )
                self._record(outcome)
                return outcome
