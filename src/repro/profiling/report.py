"""``perf report`` analog: human-readable summaries of an ExecutionProfile.

Shows the delinquent-load ranking (share of sampled miss latency, mean
latency, owning function/block/loop) and per-loop LBR statistics
(iteration-latency quartiles, measured trip counts) — everything an
engineer would look at before trusting the generated hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.loops import find_loops, innermost_loop_of
from repro.core.distribution import iteration_latencies, trip_counts
from repro.ir.nodes import Module
from repro.profiling.profile import ExecutionProfile


@dataclass
class DelinquentLoadSummary:
    load_pc: int
    function: str
    block: str
    loop_header: Optional[str]
    loop_depth: int
    samples: int
    total_latency: int
    share: float

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.samples if self.samples else 0.0


@dataclass
class LoopSummary:
    function: str
    header: str
    depth: int
    iterations_measured: int
    latency_p25: int
    latency_p50: int
    latency_p75: int
    latency_max: int
    avg_trip_count: Optional[float]


def summarize_delinquent_loads(
    module: Module, profile: ExecutionProfile, top: int = 10
) -> list[DelinquentLoadSummary]:
    total = sum(profile.load_miss_latency.values()) or 1
    summaries = []
    for pc in profile.delinquent_loads(top=top, min_count=1):
        if not module.has_pc(pc):
            continue
        block = module.block_at(pc)
        function = block.function
        loops = find_loops(function)
        loop = innermost_loop_of(loops, block.name)
        summaries.append(
            DelinquentLoadSummary(
                load_pc=pc,
                function=function.name,
                block=block.name,
                loop_header=loop.header if loop else None,
                loop_depth=loop.depth if loop else 0,
                samples=profile.load_miss_counts.get(pc, 0),
                total_latency=profile.load_miss_latency.get(pc, 0),
                share=profile.load_miss_latency.get(pc, 0) / total,
            )
        )
    return summaries


def summarize_loops(
    module: Module, profile: ExecutionProfile
) -> list[LoopSummary]:
    summaries = []
    for function in module.functions.values():
        loops = find_loops(function)
        for loop in loops:
            latencies = sorted(
                iteration_latencies(profile.lbr_samples, loop.latch_branch_pcs())
            )
            if not latencies:
                continue
            trip: Optional[float] = None
            if loop.parent is not None:
                trips = trip_counts(
                    profile.lbr_samples,
                    loop.latch_branch_pcs(),
                    loop.parent.latch_branch_pcs(),
                )
                if trips:
                    trip = sum(trips) / len(trips)
            n = len(latencies)
            summaries.append(
                LoopSummary(
                    function=function.name,
                    header=loop.header,
                    depth=loop.depth,
                    iterations_measured=n,
                    latency_p25=latencies[n // 4],
                    latency_p50=latencies[n // 2],
                    latency_p75=latencies[(3 * n) // 4],
                    latency_max=latencies[-1],
                    avg_trip_count=trip,
                )
            )
    summaries.sort(key=lambda s: -s.iterations_measured)
    return summaries


def format_profile_report(
    module: Module, profile: ExecutionProfile, top: int = 10
) -> str:
    """Render the full report as text."""
    lines = [
        f"profile of {profile.function!r}: "
        f"{len(profile.lbr_samples)} LBR samples, "
        f"{sum(profile.load_miss_counts.values())} long-latency load events",
        "",
        "delinquent loads (by share of sampled miss latency):",
        f"  {'pc':>10} {'share':>7} {'events':>7} {'mean lat':>9}  location",
    ]
    for s in summarize_delinquent_loads(module, profile, top=top):
        location = f"{s.function}/{s.block}"
        if s.loop_header:
            location += f" (loop {s.loop_header}, depth {s.loop_depth})"
        lines.append(
            f"  {s.load_pc:#10x} {s.share:6.1%} {s.samples:7d} "
            f"{s.mean_latency:9.1f}  {location}"
        )
    lines.append("")
    lines.append("loops (iteration latency from LBR, cycles):")
    lines.append(
        f"  {'loop':>24} {'depth':>5} {'n':>7} {'p25':>6} {'p50':>6} "
        f"{'p75':>6} {'max':>7} {'trip':>6}"
    )
    for s in summarize_loops(module, profile):
        trip = f"{s.avg_trip_count:6.1f}" if s.avg_trip_count else "     -"
        lines.append(
            f"  {s.function + '/' + s.header:>24} {s.depth:5d} "
            f"{s.iterations_measured:7d} {s.latency_p25:6d} "
            f"{s.latency_p50:6d} {s.latency_p75:6d} {s.latency_max:7d} {trip}"
        )
    return "\n".join(lines)
