"""The ``perf record`` analog: run a program once with LBR + PEBS sampling
enabled and package the result as an :class:`ExecutionProfile` (§3.4 step
1-2: detect cache-miss-inducing loads, capture LBR profiles).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.machine.machine import Machine
from repro.profiling.profile import ExecutionProfile


def collect_profile(
    machine: Machine,
    function: str = "main",
    args: Sequence[int] = (),
    period: Optional[int] = None,
) -> ExecutionProfile:
    """Profile one run of ``function`` on ``machine``.

    Enables the machine's LBR/PEBS sampling for the duration of the run
    and restores the previous profiling state afterwards.
    """
    previous_sampler = machine.sampler
    previous_lbr = machine.lbr
    sampler = machine.enable_profiling(period=period)
    try:
        result = machine.run(function, args)
    finally:
        machine.lbr = previous_lbr
        machine.sampler = previous_sampler
    return ExecutionProfile.from_sampler(
        sampler, counters=result.counters, function=function
    )
