"""Profile containers: what a profiling run produces.

An :class:`ExecutionProfile` is the reproduction's analog of the paper's
``perf record`` output: a set of LBR snapshots plus PEBS-style records of
long-latency loads, together with the run's PMU counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.machine.lbr import LBREntry
from repro.machine.pmu import Counters
from repro.machine.sampler import ProfileSampler


@dataclass
class ExecutionProfile:
    """All dynamic information APT-GET extracts from one profiling run."""

    #: LBR snapshots: each is a tuple of (from_pc, to_pc, cycle) entries,
    #: oldest to newest, at most 32 long.
    lbr_samples: list[tuple] = field(default_factory=list)
    #: PEBS-style: load PC -> number of long-latency (LLC-miss-class) hits.
    load_miss_counts: dict[int, int] = field(default_factory=dict)
    #: load PC -> summed latency of those hits (for ranking).
    load_miss_latency: dict[int, int] = field(default_factory=dict)
    #: PMU counters of the profiled run.
    counters: Counters = field(default_factory=Counters)
    #: Name of the profiled entry function.
    function: str = "main"

    @classmethod
    def from_sampler(
        cls,
        sampler: ProfileSampler,
        counters: Optional[Counters] = None,
        function: str = "main",
    ) -> "ExecutionProfile":
        return cls(
            lbr_samples=list(sampler.samples),
            load_miss_counts=dict(sampler.load_miss_counts),
            load_miss_latency=dict(sampler.load_miss_latency),
            counters=counters.copy() if counters is not None else Counters(),
            function=function,
        )

    # ------------------------------------------------------------------
    def delinquent_loads(self, top: int = 10, min_count: int = 8) -> list[int]:
        """Load PCs ranked by total sampled miss latency (paper §3.2 step 1)."""
        ranked = sorted(
            (
                pc
                for pc, count in self.load_miss_counts.items()
                if count >= min_count
            ),
            key=lambda pc: self.load_miss_latency.get(pc, 0),
            reverse=True,
        )
        return ranked[:top]

    def samples_containing(self, from_pc: int) -> list[tuple]:
        """LBR snapshots containing at least one entry with ``from_pc``."""
        return [
            sample
            for sample in self.lbr_samples
            if any(entry[0] == from_pc for entry in sample)
        ]

    # ------------------------------------------------------------------
    # (De)serialization: hint files travel between profile and compile
    # steps, so profiles should too (perf.data analog).
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "function": self.function,
                "lbr_samples": [
                    [list(entry) for entry in sample]
                    for sample in self.lbr_samples
                ],
                "load_miss_counts": {
                    str(pc): count for pc, count in self.load_miss_counts.items()
                },
                "load_miss_latency": {
                    str(pc): lat for pc, lat in self.load_miss_latency.items()
                },
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ExecutionProfile":
        raw = json.loads(text)
        return cls(
            lbr_samples=[
                tuple(LBREntry(*entry) for entry in sample)
                for sample in raw["lbr_samples"]
            ],
            load_miss_counts={
                int(pc): count for pc, count in raw["load_miss_counts"].items()
            },
            load_miss_latency={
                int(pc): lat for pc, lat in raw["load_miss_latency"].items()
            },
            function=raw.get("function", "main"),
        )

    def merge(self, other: "ExecutionProfile") -> "ExecutionProfile":
        """Combine two profiles of the same binary (multi-run profiling)."""
        merged = ExecutionProfile(
            lbr_samples=self.lbr_samples + other.lbr_samples,
            load_miss_counts=dict(self.load_miss_counts),
            load_miss_latency=dict(self.load_miss_latency),
            counters=self.counters,
            function=self.function,
        )
        for pc, count in other.load_miss_counts.items():
            merged.load_miss_counts[pc] = merged.load_miss_counts.get(pc, 0) + count
        for pc, lat in other.load_miss_latency.items():
            merged.load_miss_latency[pc] = (
                merged.load_miss_latency.get(pc, 0) + lat
            )
        return merged
