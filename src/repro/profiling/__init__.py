"""Profiling: perf-record analog producing ExecutionProfile objects."""

from repro.profiling.collect import collect_profile
from repro.profiling.profile import ExecutionProfile

__all__ = ["ExecutionProfile", "collect_profile"]
