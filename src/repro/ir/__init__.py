"""Miniature SSA-style IR: the compiler substrate of the reproduction.

Public surface:

* :class:`~repro.ir.nodes.Module`, :class:`~repro.ir.nodes.Function`,
  :class:`~repro.ir.nodes.BasicBlock`, :class:`~repro.ir.nodes.Instruction`
* :class:`~repro.ir.opcodes.Opcode`
* :class:`~repro.ir.builder.IRBuilder`
* :func:`~repro.ir.verifier.verify_module`
* :func:`~repro.ir.printer.format_module`
"""

from repro.ir.builder import IRBuilder
from repro.ir.nodes import (
    BasicBlock,
    Function,
    Instruction,
    IRError,
    Module,
    Operand,
)
from repro.ir.opcodes import Opcode
from repro.ir.parser import ParseError, parse_function_body, parse_module
from repro.ir.printer import (
    format_block,
    format_function,
    format_instruction,
    format_module,
)
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "Function",
    "IRBuilder",
    "IRError",
    "Instruction",
    "Module",
    "Opcode",
    "Operand",
    "ParseError",
    "VerificationError",
    "format_block",
    "format_function",
    "format_instruction",
    "format_module",
    "parse_function_body",
    "parse_module",
    "verify_function",
    "verify_module",
]
