"""Fluent construction API for the miniature IR.

The builder mirrors LLVM's ``IRBuilder``: position it at a block, emit
instructions, and it returns the destination register of each value-producing
instruction.  Register names are auto-generated (``%0``-style) unless a name
is supplied.

Example
-------
>>> from repro.ir import IRBuilder, Module
>>> module = Module("demo")
>>> b = IRBuilder(module)
>>> f = b.function("sum_to_n", params=["n"])
>>> entry, loop, done = b.blocks("entry", "loop", "done")
>>> b.at(entry); b.jmp(loop)
>>> b.at(loop)
>>> i = b.phi([(entry.name, 0)], name="i")
>>> acc = b.phi([(entry.name, 0)], name="acc")
>>> acc2 = b.add(acc, i)
>>> i2 = b.add(i, 1)
>>> b.add_incoming(i, loop.name, i2)
>>> b.add_incoming(acc, loop.name, acc2)
>>> cond = b.lt(i2, "n")
>>> b.br(cond, loop, done)
>>> b.at(done); b.ret(acc2)
>>> module.finalize() is module
True
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.nodes import BasicBlock, Function, IRError, Instruction, Module, Operand
from repro.ir.opcodes import Opcode

BlockRef = Union[str, BasicBlock]


def _block_name(block: BlockRef) -> str:
    return block if isinstance(block, str) else block.name


class IRBuilder:
    """Stateful IR construction helper bound to a :class:`Module`."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._function: Optional[Function] = None
        self._block: Optional[BasicBlock] = None
        self._counter = 0

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def function(self, name: str, params: Optional[Sequence[str]] = None) -> Function:
        function = Function(name, list(params or []))
        self.module.add_function(function)
        self._function = function
        self._block = None
        self._counter = 0
        return function

    def block(self, name: str) -> BasicBlock:
        if self._function is None:
            raise IRError("no current function")
        return self._function.add_block(name)

    def blocks(self, *names: str) -> list[BasicBlock]:
        return [self.block(name) for name in names]

    def at(self, block: BlockRef) -> BasicBlock:
        if self._function is None:
            raise IRError("no current function")
        resolved = (
            block
            if isinstance(block, BasicBlock)
            else self._function.block(block)
        )
        self._block = resolved
        return resolved

    @property
    def current_block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("builder not positioned at a block (call .at())")
        return self._block

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------
    def _fresh(self, name: Optional[str]) -> str:
        if name is not None:
            return name
        register = f"%{self._counter}"
        self._counter += 1
        return register

    def _emit(self, instruction: Instruction) -> Instruction:
        block = self.current_block
        if block.instructions and block.instructions[-1].is_terminator:
            raise IRError(f"block {block.name} already terminated")
        block.instructions.append(instruction)
        self.module.finalized = False
        return instruction

    def _value(
        self,
        op: Opcode,
        args: tuple,
        name: Optional[str],
    ) -> str:
        dst = self._fresh(name)
        self._emit(Instruction(op, dst=dst, args=args))
        return dst

    # ------------------------------------------------------------------
    # Arithmetic / data
    # ------------------------------------------------------------------
    def const(self, value: int, name: Optional[str] = None) -> str:
        return self._value(Opcode.CONST, (value,), name)

    def mov(self, a: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.MOV, (a,), name)

    def add(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.ADD, (a, b), name)

    def sub(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.SUB, (a, b), name)

    def mul(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.MUL, (a, b), name)

    def div(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.DIV, (a, b), name)

    def rem(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.REM, (a, b), name)

    def and_(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.AND, (a, b), name)

    def or_(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.OR, (a, b), name)

    def xor(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.XOR, (a, b), name)

    def shl(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.SHL, (a, b), name)

    def shr(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.SHR, (a, b), name)

    def min(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.MIN, (a, b), name)

    def max(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.MAX, (a, b), name)

    # ------------------------------------------------------------------
    # Comparisons and select
    # ------------------------------------------------------------------
    def eq(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.CMP_EQ, (a, b), name)

    def ne(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.CMP_NE, (a, b), name)

    def lt(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.CMP_LT, (a, b), name)

    def le(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.CMP_LE, (a, b), name)

    def gt(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.CMP_GT, (a, b), name)

    def ge(self, a: Operand, b: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.CMP_GE, (a, b), name)

    def select(
        self,
        cond: Operand,
        a: Operand,
        b: Operand,
        name: Optional[str] = None,
    ) -> str:
        return self._value(Opcode.SELECT, (cond, a, b), name)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def gep(
        self,
        base: Operand,
        index: Operand,
        scale: int = 8,
        name: Optional[str] = None,
    ) -> str:
        return self._value(Opcode.GEP, (base, index, scale), name)

    def load(self, addr: Operand, name: Optional[str] = None) -> str:
        return self._value(Opcode.LOAD, (addr,), name)

    def store(self, addr: Operand, value: Operand) -> Instruction:
        return self._emit(Instruction(Opcode.STORE, args=(addr, value)))

    def prefetch(self, addr: Operand) -> Instruction:
        return self._emit(Instruction(Opcode.PREFETCH, args=(addr,)))

    def work(self, amount: Operand) -> Instruction:
        """Emit a fixed-cost compute kernel of ``amount`` instructions."""
        return self._emit(Instruction(Opcode.WORK, args=(amount,)))

    # ------------------------------------------------------------------
    # PHIs and control flow
    # ------------------------------------------------------------------
    def phi(
        self,
        incomings: Sequence[tuple],
        name: Optional[str] = None,
    ) -> str:
        dst = self._fresh(name)
        pairs = [(_block_name(pred), value) for pred, value in incomings]
        block = self.current_block
        if any(i.op is not Opcode.PHI for i in block.instructions):
            raise IRError(
                f"PHIs must precede all other instructions in {block.name}"
            )
        self._emit(Instruction(Opcode.PHI, dst=dst, incomings=pairs))
        return dst

    def add_incoming(self, phi_register: str, pred: BlockRef, value: Operand) -> None:
        """Append an incoming edge to a PHI anywhere in the current function."""
        if self._function is None:
            raise IRError("no current function")
        for block in self._function.blocks:
            for instruction in block.phis():
                if instruction.dst == phi_register:
                    instruction.incomings.append((_block_name(pred), value))
                    return
        raise IRError(f"no phi {phi_register!r} in function {self._function.name}")

    def call(
        self,
        callee: str,
        args: Sequence[Operand] = (),
        name: Optional[str] = None,
    ) -> str:
        """Call another function in the module: ``dst = callee(args...)``.

        The callee name travels in ``targets`` (it is a symbol, not a
        register operand).
        """
        dst = self._fresh(name)
        self._emit(
            Instruction(
                Opcode.CALL,
                dst=dst,
                args=tuple(args),
                targets=(callee,),
            )
        )
        return dst

    def jmp(self, target: BlockRef) -> Instruction:
        return self._emit(
            Instruction(Opcode.JMP, targets=(_block_name(target),))
        )

    def br(self, cond: Operand, then: BlockRef, otherwise: BlockRef) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.BR,
                args=(cond,),
                targets=(_block_name(then), _block_name(otherwise)),
            )
        )

    def ret(self, value: Operand = 0) -> Instruction:
        return self._emit(Instruction(Opcode.RET, args=(value,)))
