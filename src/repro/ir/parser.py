"""Text-format IR parser: the inverse of :mod:`repro.ir.printer`.

Round-trips the printer's output (PC annotations are accepted and
ignored — PCs are reassigned by ``Module.finalize``).  Useful for golden
tests, for inspecting pass output, and for hand-authoring small test
kernels.

Grammar (one instruction per line)::

    define NAME(p1, p2) {
    blockname:
      [0x....:] %dst = add a, b            # any binop / icmp
      [0x....:] %dst = phi [pred: v], ...
      [0x....:] %dst = load [addr]
      [0x....:] store [addr], value
      [0x....:] prefetch [addr]
      [0x....:] br cond, label %then, label %else
      [0x....:] br label %dest
      [0x....:] ret value
    }
"""

from __future__ import annotations

import re
from typing import Optional

from repro.ir.nodes import Function, Instruction, IRError, Module, Operand
from repro.ir.opcodes import Opcode

_BINOPS = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "mul": Opcode.MUL,
    "div": Opcode.DIV,
    "rem": Opcode.REM,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "shl": Opcode.SHL,
    "shr": Opcode.SHR,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
}

_ICMPS = {
    "eq": Opcode.CMP_EQ,
    "ne": Opcode.CMP_NE,
    "slt": Opcode.CMP_LT,
    "sle": Opcode.CMP_LE,
    "sgt": Opcode.CMP_GT,
    "sge": Opcode.CMP_GE,
}

_DEFINE_RE = re.compile(r"^define\s+([\w.$-]+)\((.*)\)\s*\{$")
_BLOCK_RE = re.compile(r"^([\w.$-]+):$")
_PC_PREFIX_RE = re.compile(r"^0x[0-9a-fA-F]+:\s*")
_PHI_PAIR_RE = re.compile(r"\[([\w.$-]+):\s*([^\]]+)\]")


class ParseError(IRError):
    """Raised on malformed IR text."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number


def _operand(token: str) -> Operand:
    token = token.strip()
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"-?0x[0-9a-fA-F]+", token):
        return int(token, 16)
    return token


def _split_args(text: str) -> list[str]:
    """Split on commas not inside brackets."""
    parts, depth, current = [], 0, []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _parse_instruction(text: str) -> Instruction:
    text = _PC_PREFIX_RE.sub("", text.strip())

    # Value-producing form: "%dst = <op> ..."
    match = re.match(r"^([\w.%$-]+)\s*=\s*(.+)$", text)
    if match:
        dst, rhs = match.group(1), match.group(2).strip()
        if rhs.startswith("phi "):
            incomings = [
                (pred, _operand(value))
                for pred, value in _PHI_PAIR_RE.findall(rhs[4:])
            ]
            return Instruction(Opcode.PHI, dst=dst, incomings=incomings)
        if rhs.startswith("icmp "):
            kind, rest = rhs[5:].split(None, 1)
            a, b = _split_args(rest)
            return Instruction(
                _ICMPS[kind], dst=dst, args=(_operand(a), _operand(b))
            )
        if rhs.startswith("load "):
            inner = rhs[5:].strip()
            if not (inner.startswith("[") and inner.endswith("]")):
                raise ValueError("load operand must be bracketed")
            return Instruction(
                Opcode.LOAD, dst=dst, args=(_operand(inner[1:-1]),)
            )
        if rhs.startswith("getelementptr "):
            base, index, scale_clause = _split_args(rhs[len("getelementptr "):])
            if not scale_clause.startswith("scale "):
                raise ValueError("gep needs a scale clause")
            scale = int(scale_clause[len("scale "):])
            return Instruction(
                Opcode.GEP,
                dst=dst,
                args=(_operand(base), _operand(index), scale),
            )
        if rhs.startswith("select "):
            cond, a, b = _split_args(rhs[7:])
            return Instruction(
                Opcode.SELECT,
                dst=dst,
                args=(_operand(cond), _operand(a), _operand(b)),
            )
        if rhs.startswith("call "):
            call_match = re.match(r"^call\s+([\w.$-]+)\((.*)\)$", rhs)
            if not call_match:
                raise ValueError("malformed call")
            callee = call_match.group(1)
            arg_text = call_match.group(2).strip()
            call_args = (
                tuple(_operand(t) for t in _split_args(arg_text))
                if arg_text
                else ()
            )
            return Instruction(
                Opcode.CALL, dst=dst, args=call_args, targets=(callee,)
            )
        if rhs.startswith("const "):
            return Instruction(
                Opcode.CONST, dst=dst, args=(_operand(rhs[6:]),)
            )
        if rhs.startswith("mov "):
            return Instruction(Opcode.MOV, dst=dst, args=(_operand(rhs[4:]),))
        op_name = rhs.split(None, 1)[0]
        if op_name in _BINOPS:
            a, b = _split_args(rhs[len(op_name):])
            return Instruction(
                _BINOPS[op_name], dst=dst, args=(_operand(a), _operand(b))
            )
        raise ValueError(f"unknown value op {op_name!r}")

    # Void forms.
    if text.startswith("store "):
        addr_part, value = _split_args(text[6:])
        if not (addr_part.startswith("[") and addr_part.endswith("]")):
            raise ValueError("store address must be bracketed")
        return Instruction(
            Opcode.STORE, args=(_operand(addr_part[1:-1]), _operand(value))
        )
    if text.startswith("prefetch "):
        inner = text[9:].strip()
        if not (inner.startswith("[") and inner.endswith("]")):
            raise ValueError("prefetch operand must be bracketed")
        return Instruction(Opcode.PREFETCH, args=(_operand(inner[1:-1]),))
    if text.startswith("work "):
        return Instruction(Opcode.WORK, args=(_operand(text[5:]),))
    if text.startswith("ret"):
        rest = text[3:].strip()
        return Instruction(Opcode.RET, args=(_operand(rest) if rest else 0,))
    if text.startswith("br "):
        rest = text[3:]
        labels = re.findall(r"label\s+%([\w.$-]+)", rest)
        if len(labels) == 1:
            return Instruction(Opcode.JMP, targets=(labels[0],))
        if len(labels) == 2:
            cond = _split_args(rest)[0]
            return Instruction(
                Opcode.BR, args=(_operand(cond),), targets=tuple(labels)
            )
        raise ValueError("branch needs one or two labels")
    raise ValueError(f"unrecognized instruction {text!r}")


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse printer-format IR text into a finalized Module."""
    module = Module(name)
    function: Optional[Function] = None
    block = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip() if "#" in raw else raw.strip()
        if not line:
            continue
        define = _DEFINE_RE.match(line)
        if define:
            params = [
                p.strip() for p in define.group(2).split(",") if p.strip()
            ]
            function = Function(define.group(1), params)
            module.add_function(function)
            block = None
            continue
        if line == "}":
            function = None
            block = None
            continue
        block_match = _BLOCK_RE.match(line)
        if block_match:
            if function is None:
                raise ParseError("block outside function", line_number, raw)
            block = function.add_block(block_match.group(1))
            continue
        if block is None:
            raise ParseError("instruction outside block", line_number, raw)
        try:
            block.instructions.append(_parse_instruction(line))
        except (ValueError, KeyError, IndexError) as error:
            raise ParseError(str(error), line_number, raw) from error
    return module.finalize()


def parse_function_body(text: str, name: str = "main") -> Module:
    """Convenience: parse a bare block list (no ``define`` wrapper)."""
    return parse_module(f"define {name}() {{\n{text}\n}}", name=name)
