"""Structural verification of IR modules.

The verifier enforces the invariants the execution engines and the
injection passes rely on:

* every block ends in exactly one terminator, and only the last
  instruction is a terminator;
* PHIs form a prefix of their block;
* every branch target names an existing block;
* each PHI has exactly one incoming per CFG predecessor (and no extras);
* registers are defined exactly once (SSA) unless ``allow_non_ssa``;
* every used register has a definition (function params count);
* GEP scales are positive integer immediates;
* the entry block has no predecessors and no PHIs.
"""

from __future__ import annotations

from repro.ir.nodes import Function, IRError, Module
from repro.ir.opcodes import Opcode


class VerificationError(IRError):
    """Raised when a module violates an IR invariant."""


def verify_function(
    function: Function, allow_non_ssa: bool = False, strict: bool = False
) -> None:
    if not function.blocks:
        raise VerificationError(f"{function.name}: function has no blocks")

    defined: dict[str, int] = {}
    for param in function.params:
        defined[param] = defined.get(param, 0) + 1

    # Pass 1: structure and definitions.
    for block in function.blocks:
        if not block.instructions:
            raise VerificationError(f"{function.name}/{block.name}: empty block")
        seen_non_phi = False
        for position, instruction in enumerate(block.instructions):
            is_last = position == len(block.instructions) - 1
            if instruction.is_terminator and not is_last:
                raise VerificationError(
                    f"{function.name}/{block.name}: terminator not last"
                )
            if is_last and not instruction.is_terminator:
                raise VerificationError(
                    f"{function.name}/{block.name}: missing terminator"
                )
            if instruction.op is Opcode.PHI:
                if seen_non_phi:
                    raise VerificationError(
                        f"{function.name}/{block.name}: PHI after non-PHI"
                    )
            else:
                seen_non_phi = True
            if instruction.has_dst:
                if instruction.dst is None:
                    raise VerificationError(
                        f"{function.name}/{block.name}: missing dst for "
                        f"{instruction.op.name}"
                    )
                defined[instruction.dst] = defined.get(instruction.dst, 0) + 1
            if instruction.op is Opcode.GEP:
                scale = instruction.args[2]
                if not isinstance(scale, int) or scale <= 0:
                    raise VerificationError(
                        f"{function.name}/{block.name}: GEP scale must be a "
                        f"positive immediate, got {scale!r}"
                    )

    if not allow_non_ssa:
        duplicates = sorted(name for name, count in defined.items() if count > 1)
        if duplicates:
            raise VerificationError(
                f"{function.name}: registers defined more than once: "
                f"{', '.join(duplicates)}"
            )

    # Pass 2: uses and CFG consistency.
    predecessors = function.predecessors()
    for block in function.blocks:
        for instruction in block.instructions:
            if instruction.op is not Opcode.CALL:
                for target in instruction.targets:
                    if not function.has_block(target):
                        raise VerificationError(
                            f"{function.name}/{block.name}: branch to unknown "
                            f"block {target!r}"
                        )
            for register in instruction.register_operands():
                if register not in defined:
                    raise VerificationError(
                        f"{function.name}/{block.name}: use of undefined "
                        f"register {register!r}"
                    )
            if instruction.op is Opcode.PHI:
                incoming_preds = [pred for pred, _ in instruction.incomings]
                expected = predecessors[block.name]
                if sorted(incoming_preds) != sorted(expected):
                    raise VerificationError(
                        f"{function.name}/{block.name}: phi "
                        f"{instruction.dst} incomings {sorted(incoming_preds)} "
                        f"!= predecessors {sorted(expected)}"
                    )

    entry = function.entry
    if predecessors[entry.name]:
        raise VerificationError(
            f"{function.name}: entry block {entry.name} has predecessors"
        )
    if entry.phis():
        raise VerificationError(f"{function.name}: entry block has PHIs")

    if strict:
        _verify_dominance(function, predecessors)


def _verify_dominance(
    function: Function, predecessors: dict[str, list[str]]
) -> None:
    """SSA dominance: every use is dominated by its definition.

    PHI incomings are uses at the *end of the incoming edge's source
    block*; all other operands are uses at their instruction.
    """
    from repro.analysis.cfg import dominates, immediate_dominators

    idom = immediate_dominators(function)
    defining_block: dict[str, str] = {}
    position: dict[int, int] = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            position[id(instruction)] = index
            if instruction.dst is not None:
                defining_block[instruction.dst] = block.name
    params = set(function.params)

    def check_use(register: str, use_block: str, use_index: int, what: str) -> None:
        if register in params:
            return
        def_block = defining_block.get(register)
        if def_block is None:
            return  # plain verifier already flagged it
        if def_block == use_block:
            defining = function.defining_instruction(register)
            assert defining is not None
            if position[id(defining)] >= use_index:
                raise VerificationError(
                    f"{function.name}/{use_block}: {what} of {register!r} "
                    f"before its definition in the same block"
                )
            return
        if use_block not in idom or not dominates(idom, def_block, use_block):
            raise VerificationError(
                f"{function.name}/{use_block}: {what} of {register!r} not "
                f"dominated by its definition in {def_block}"
            )

    for block in function.blocks:
        if block.name not in idom:
            continue  # unreachable: nothing executes these uses
        for index, instruction in enumerate(block.instructions):
            if instruction.op is Opcode.PHI:
                for pred, value in instruction.incomings:
                    if isinstance(value, str):
                        pred_block = function.block(pred)
                        check_use(
                            value,
                            pred,
                            len(pred_block.instructions),
                            f"phi incoming (via {pred})",
                        )
                continue
            for register in instruction.register_operands():
                check_use(register, block.name, index, "use")


def verify_module(
    module: Module, allow_non_ssa: bool = False, strict: bool = False
) -> None:
    """Verify every function; raises :class:`VerificationError` on failure.

    With ``strict``, additionally checks SSA dominance (definitions
    dominate uses) — slower, used after transformation passes in tests.
    """
    for function in module.functions.values():
        verify_function(function, allow_non_ssa=allow_non_ssa, strict=strict)
        for block in function.blocks:
            for instruction in block.instructions:
                if instruction.op is Opcode.CALL:
                    callee_name = instruction.targets[0]
                    if callee_name not in module.functions:
                        raise VerificationError(
                            f"{function.name}/{block.name}: call to unknown "
                            f"function {callee_name!r}"
                        )
                    callee = module.functions[callee_name]
                    if len(instruction.args) != len(callee.params):
                        raise VerificationError(
                            f"{function.name}/{block.name}: call to "
                            f"{callee_name!r} passes {len(instruction.args)} "
                            f"args, expects {len(callee.params)}"
                        )
