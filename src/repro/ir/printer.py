"""Human-readable text rendering of IR (LLVM-flavoured)."""

from __future__ import annotations

from repro.ir.nodes import BasicBlock, Function, Instruction, Module, Operand
from repro.ir.opcodes import BINOP_EXPR, Opcode

_OP_SYMBOL = {
    Opcode.ADD: "add",
    Opcode.SUB: "sub",
    Opcode.MUL: "mul",
    Opcode.DIV: "div",
    Opcode.REM: "rem",
    Opcode.AND: "and",
    Opcode.OR: "or",
    Opcode.XOR: "xor",
    Opcode.SHL: "shl",
    Opcode.SHR: "shr",
    Opcode.MIN: "min",
    Opcode.MAX: "max",
    Opcode.CMP_EQ: "icmp eq",
    Opcode.CMP_NE: "icmp ne",
    Opcode.CMP_LT: "icmp slt",
    Opcode.CMP_LE: "icmp sle",
    Opcode.CMP_GT: "icmp sgt",
    Opcode.CMP_GE: "icmp sge",
}


def _fmt_operand(operand: Operand) -> str:
    if isinstance(operand, int):
        return str(operand)
    return operand


def format_instruction(instruction: Instruction) -> str:
    op = instruction.op
    args = [_fmt_operand(a) for a in instruction.args]
    pc = f"{instruction.pc:#07x}: " if instruction.pc >= 0 else ""
    if op in BINOP_EXPR:
        return f"{pc}{instruction.dst} = {_OP_SYMBOL[op]} {args[0]}, {args[1]}"
    if op is Opcode.CONST:
        return f"{pc}{instruction.dst} = const {args[0]}"
    if op is Opcode.MOV:
        return f"{pc}{instruction.dst} = mov {args[0]}"
    if op is Opcode.SELECT:
        return f"{pc}{instruction.dst} = select {args[0]}, {args[1]}, {args[2]}"
    if op is Opcode.GEP:
        return (
            f"{pc}{instruction.dst} = getelementptr {args[0]}, "
            f"{args[1]}, scale {args[2]}"
        )
    if op is Opcode.LOAD:
        return f"{pc}{instruction.dst} = load [{args[0]}]"
    if op is Opcode.STORE:
        return f"{pc}store [{args[0]}], {args[1]}"
    if op is Opcode.PREFETCH:
        return f"{pc}prefetch [{args[0]}]"
    if op is Opcode.WORK:
        return f"{pc}work {args[0]}"
    if op is Opcode.PHI:
        pairs = ", ".join(
            f"[{pred}: {_fmt_operand(value)}]"
            for pred, value in instruction.incomings
        )
        return f"{pc}{instruction.dst} = phi {pairs}"
    if op is Opcode.JMP:
        return f"{pc}br label %{instruction.targets[0]}"
    if op is Opcode.BR:
        return (
            f"{pc}br {args[0]}, label %{instruction.targets[0]}, "
            f"label %{instruction.targets[1]}"
        )
    if op is Opcode.CALL:
        return (
            f"{pc}{instruction.dst} = call {instruction.targets[0]}"
            f"({', '.join(args)})"
        )
    if op is Opcode.RET:
        return f"{pc}ret {args[0]}"
    raise ValueError(f"unknown opcode {op!r}")


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {format_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def format_function(function: Function) -> str:
    params = ", ".join(function.params)
    lines = [f"define {function.name}({params}) {{"]
    lines.extend(format_block(block) for block in function.blocks)
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    return "\n\n".join(format_function(f) for f in module.functions.values())
