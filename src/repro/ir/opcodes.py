"""Opcode definitions for the miniature IR.

The IR models the subset of LLVM IR that the APT-GET paper's compiler pass
manipulates: integer arithmetic, address computation (``GEP``), memory
operations, PHI nodes, comparisons, and control flow.  Values are 64-bit
signed integers; registers are function-local virtual registers named by
strings; immediates may appear directly as operands.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """Every instruction kind understood by the execution engines."""

    # Data movement / arithmetic.
    CONST = 1  # dst = imm
    MOV = 2  # dst = a
    ADD = 3  # dst = a + b
    SUB = 4  # dst = a - b
    MUL = 5  # dst = a * b
    DIV = 6  # dst = a // b  (b != 0)
    REM = 7  # dst = a % b   (b != 0)
    AND = 8  # dst = a & b
    OR = 9  # dst = a | b
    XOR = 10  # dst = a ^ b
    SHL = 11  # dst = a << b
    SHR = 12  # dst = a >> b
    MIN = 13  # dst = min(a, b)
    MAX = 14  # dst = max(a, b)

    # Comparisons (produce 0 or 1).
    CMP_EQ = 20
    CMP_NE = 21
    CMP_LT = 22
    CMP_LE = 23
    CMP_GT = 24
    CMP_GE = 25

    # Select: dst = a if cond else b.
    SELECT = 30

    # Address computation: dst = base + index * scale  (LLVM getelementptr).
    GEP = 31

    # Memory.
    LOAD = 40  # dst = memory[a]          (a: byte address)
    STORE = 41  # memory[a] = b
    PREFETCH = 42  # hint: fetch line containing address a

    # Models a fixed-cost, memory-free computation (the paper's ``work()``
    # function): retires `a` instructions at the machine's work IPC.
    WORK = 45

    # Control flow.
    PHI = 50  # dst = incoming value from the edge taken into this block
    JMP = 51  # unconditional jump to targets[0]
    BR = 52  # conditional: a != 0 -> targets[0], else targets[1]
    RET = 53  # return a (or 0 if no operand)
    #: dst = callee(args...) — callee name is args[0] (a string symbol,
    #: not a register); remaining args are the actual arguments.
    CALL = 54


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.JMP, Opcode.BR, Opcode.RET})

#: Binary arithmetic opcodes mapped to a Python expression template used by
#: the translating engine and the interpreter's dispatch tables.
BINOP_EXPR = {
    Opcode.ADD: "({a}) + ({b})",
    Opcode.SUB: "({a}) - ({b})",
    Opcode.MUL: "({a}) * ({b})",
    Opcode.DIV: "({a}) // ({b})",
    Opcode.REM: "({a}) % ({b})",
    Opcode.AND: "({a}) & ({b})",
    Opcode.OR: "({a}) | ({b})",
    Opcode.XOR: "({a}) ^ ({b})",
    Opcode.SHL: "({a}) << ({b})",
    Opcode.SHR: "({a}) >> ({b})",
    Opcode.MIN: "min(({a}), ({b}))",
    Opcode.MAX: "max(({a}), ({b}))",
    Opcode.CMP_EQ: "1 if ({a}) == ({b}) else 0",
    Opcode.CMP_NE: "1 if ({a}) != ({b}) else 0",
    Opcode.CMP_LT: "1 if ({a}) < ({b}) else 0",
    Opcode.CMP_LE: "1 if ({a}) <= ({b}) else 0",
    Opcode.CMP_GT: "1 if ({a}) > ({b}) else 0",
    Opcode.CMP_GE: "1 if ({a}) >= ({b}) else 0",
}

#: Opcodes producing a value in ``dst``.
HAS_DST = frozenset(
    {
        Opcode.CONST,
        Opcode.MOV,
        Opcode.SELECT,
        Opcode.GEP,
        Opcode.LOAD,
        Opcode.PHI,
        Opcode.CALL,
    }
) | frozenset(BINOP_EXPR)
