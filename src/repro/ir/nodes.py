"""IR data structures: instructions, basic blocks, functions, modules.

Design notes
------------
* Operands are either register names (``str``) or immediate integers
  (``int``).  Keeping immediates inline (instead of materializing CONSTs)
  keeps dynamic instruction counts comparable to real ISAs.
* Every instruction carries a ``pc`` assigned by :meth:`Module.finalize`;
  PCs are the currency of the profiling side (LBR entries, PEBS samples,
  delinquent-load hints), exactly as in the paper.
* Basic blocks own their instructions; the last instruction must be a
  terminator.  PHIs must be a prefix of the block.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

from repro.ir.opcodes import HAS_DST, TERMINATORS, Opcode

Operand = Union[str, int]

#: Byte distance between consecutive instruction PCs (x86-ish flavour).
PC_STRIDE = 4

#: Byte alignment of function start PCs.
FUNC_ALIGN = 0x10000


class IRError(Exception):
    """Raised for malformed IR (verification failures, bad lookups)."""


class Instruction:
    """One IR instruction.

    ``args`` holds the operand tuple.  Conventions by opcode:

    * binary ops / cmps: ``(a, b)``
    * ``CONST``/``MOV``/``RET``/``WORK``: ``(a,)``
    * ``SELECT``: ``(cond, a, b)``
    * ``GEP``: ``(base, index, scale)``
    * ``LOAD``: ``(addr,)``; ``STORE``: ``(addr, value)``;
      ``PREFETCH``: ``(addr,)``
    * ``BR``: ``(cond,)`` plus ``targets=(then, else)``
    * ``JMP``: ``targets=(dest,)``
    * ``PHI``: ``incomings`` is a list of ``(pred_block_name, operand)``
    """

    __slots__ = ("op", "dst", "args", "targets", "incomings", "pc", "site")

    def __init__(
        self,
        op: Opcode,
        dst: Optional[str] = None,
        args: tuple = (),
        targets: tuple = (),
        incomings: Optional[list] = None,
    ) -> None:
        self.op = op
        self.dst = dst
        self.args = args
        self.targets = targets
        self.incomings = incomings if incomings is not None else []
        self.pc = -1
        #: Injection-site label stamped by the prefetching passes on
        #: PREFETCH instructions (and their delinquent LOADs) so the
        #: observability layer can attribute lifecycle events per hint.
        self.site: Optional[str] = None

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def has_dst(self) -> bool:
        return self.op in HAS_DST

    def operands(self) -> Iterator[Operand]:
        """Yield every value operand (registers and immediates)."""
        yield from self.args
        for _, value in self.incomings:
            yield value

    def register_operands(self) -> Iterator[str]:
        for operand in self.operands():
            if isinstance(operand, str):
                yield operand

    def replace_operands(self, mapping: dict) -> None:
        """Rewrite register operands in-place via ``mapping`` (reg -> operand)."""
        self.args = tuple(
            mapping.get(a, a) if isinstance(a, str) else a for a in self.args
        )
        self.incomings = [
            (pred, mapping.get(v, v) if isinstance(v, str) else v)
            for pred, v in self.incomings
        ]

    def copy(self) -> "Instruction":
        clone = Instruction(
            self.op,
            self.dst,
            tuple(self.args),
            tuple(self.targets),
            [tuple(pair) for pair in self.incomings],
        )
        clone.site = self.site
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.ir.printer import format_instruction

        return format_instruction(self)


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("name", "instructions", "function")

    def __init__(self, name: str, function: "Function") -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.function = function

    @property
    def terminator(self) -> Instruction:
        if not self.instructions or not self.instructions[-1].is_terminator:
            raise IRError(f"block {self.name} has no terminator")
        return self.instructions[-1]

    def phis(self) -> list[Instruction]:
        result = []
        for instruction in self.instructions:
            if instruction.op is Opcode.PHI:
                result.append(instruction)
            else:
                break
        return result

    def non_phi_instructions(self) -> list[Instruction]:
        return self.instructions[len(self.phis()):]

    def successors(self) -> tuple:
        return self.terminator.targets

    @property
    def start_pc(self) -> int:
        return self.instructions[0].pc

    @property
    def end_pc(self) -> int:
        """PC of the terminator (the paper's 'terminating branch PC')."""
        return self.instructions[-1].pc

    def insert_before_terminator(self, instructions: Iterable[Instruction]) -> None:
        position = len(self.instructions) - 1
        for offset, instruction in enumerate(instructions):
            self.instructions.insert(position + offset, instruction)

    def insert_before(
        self, anchor: Instruction, instructions: Iterable[Instruction]
    ) -> None:
        position = self.instructions.index(anchor)
        for offset, instruction in enumerate(instructions):
            self.instructions.insert(position + offset, instruction)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function:
    """An IR function: ordered blocks, entry first, optional parameters."""

    def __init__(self, name: str, params: Optional[list[str]] = None) -> None:
        self.name = name
        self.params: list[str] = list(params or [])
        self.blocks: list[BasicBlock] = []
        self._blocks_by_name: dict[str, BasicBlock] = {}
        self.base_pc = -1

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str) -> BasicBlock:
        if name in self._blocks_by_name:
            raise IRError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name, self)
        self.blocks.append(block)
        self._blocks_by_name[name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        try:
            return self._blocks_by_name[name]
        except KeyError:
            raise IRError(f"unknown block {name!r} in function {self.name}") from None

    def has_block(self, name: str) -> bool:
        return name in self._blocks_by_name

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def predecessors(self) -> dict[str, list[str]]:
        """Map block name -> predecessor block names (in block order)."""
        preds: dict[str, list[str]] = {block.name: [] for block in self.blocks}
        for block in self.blocks:
            for successor in block.successors():
                if successor in preds:  # unknown targets -> verifier error
                    preds[successor].append(block.name)
        return preds

    def defining_instruction(self, register: str) -> Optional[Instruction]:
        for instruction in self.instructions():
            if instruction.dst == register:
                return instruction
        return None

    def fresh_register(self, hint: str = "t") -> str:
        """Return a register name not yet defined in this function."""
        existing = {
            inst.dst for inst in self.instructions() if inst.dst is not None
        }
        existing.update(self.params)
        index = 0
        while f"{hint}.{index}" in existing:
            index += 1
        return f"{hint}.{index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A collection of functions plus the PC <-> instruction mapping.

    :meth:`finalize` assigns PCs and builds the lookup tables the profiling
    and injection machinery rely on.  Any structural mutation (e.g. a pass
    inserting prefetch slices) invalidates the mapping; call
    :meth:`finalize` again afterwards.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self._pc_to_instruction: dict[int, Instruction] = {}
        self._pc_to_block: dict[int, BasicBlock] = {}
        self.finalized = False

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        self.finalized = False
        return function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"unknown function {name!r}") from None

    def finalize(self) -> "Module":
        """Assign PCs to every instruction and rebuild lookup tables."""
        self._pc_to_instruction.clear()
        self._pc_to_block.clear()
        next_base = FUNC_ALIGN
        for function in self.functions.values():
            function.base_pc = next_base
            pc = next_base
            for block in function.blocks:
                for instruction in block.instructions:
                    instruction.pc = pc
                    self._pc_to_instruction[pc] = instruction
                    self._pc_to_block[pc] = block
                    pc += PC_STRIDE
            span = pc - next_base
            next_base += ((span // FUNC_ALIGN) + 1) * FUNC_ALIGN
        self.finalized = True
        return self

    def _require_finalized(self) -> None:
        if not self.finalized:
            raise IRError("module not finalized; call Module.finalize() first")

    def instruction_at(self, pc: int) -> Instruction:
        self._require_finalized()
        try:
            return self._pc_to_instruction[pc]
        except KeyError:
            raise IRError(f"no instruction at pc {pc:#x}") from None

    def block_at(self, pc: int) -> BasicBlock:
        self._require_finalized()
        try:
            return self._pc_to_block[pc]
        except KeyError:
            raise IRError(f"no block at pc {pc:#x}") from None

    def has_pc(self, pc: int) -> bool:
        self._require_finalized()
        return pc in self._pc_to_instruction

    def load_pcs(self) -> list[int]:
        """PCs of all LOAD instructions (candidate delinquent loads)."""
        self._require_finalized()
        return [
            pc
            for pc, inst in self._pc_to_instruction.items()
            if inst.op is Opcode.LOAD
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name} ({len(self.functions)} functions)>"
