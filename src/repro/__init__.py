"""APT-GET reproduction: profile-guided timely software prefetching.

Top-level convenience re-exports; see DESIGN.md for the package map.
"""

from repro.ir import IRBuilder, Module, Opcode, verify_module
from repro.machine import Machine, MachineConfig
from repro.mem import AddressSpace, MemoryConfig

__version__ = "1.0.0"

__all__ = [
    "AddressSpace",
    "IRBuilder",
    "Machine",
    "MachineConfig",
    "MemoryConfig",
    "Module",
    "Opcode",
    "verify_module",
    "__version__",
]
