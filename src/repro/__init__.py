"""APT-GET reproduction: profile-guided timely software prefetching.

Top-level convenience re-exports; see DESIGN.md for the package map and
``repro.api`` (re-exported here) for the stable v1 library surface.
"""

from repro.api import (
    API_VERSION,
    ProfileRequest,
    ProfileResult,
    RunRequest,
    RunResult,
    SiteReportRequest,
    SiteReportResult,
    SuiteRequest,
    SuiteResult,
    SweepRequest,
    SweepResult,
    TuningService,
    compare_suite,
    configure_service,
    execute,
    get_service,
    profile,
    run,
    site_report,
    sweep,
)
from repro.ir import IRBuilder, Module, Opcode, verify_module
from repro.machine import ENGINES, Machine, MachineConfig
from repro.mem import AddressSpace, MemoryConfig

__version__ = "1.0.0"

__all__ = [
    "API_VERSION",
    "AddressSpace",
    "ENGINES",
    "IRBuilder",
    "Machine",
    "MachineConfig",
    "MemoryConfig",
    "Module",
    "Opcode",
    "ProfileRequest",
    "ProfileResult",
    "RunRequest",
    "RunResult",
    "SiteReportRequest",
    "SiteReportResult",
    "SuiteRequest",
    "SuiteResult",
    "SweepRequest",
    "SweepResult",
    "TuningService",
    "compare_suite",
    "configure_service",
    "execute",
    "get_service",
    "profile",
    "run",
    "site_report",
    "sweep",
    "verify_module",
    "__version__",
]
