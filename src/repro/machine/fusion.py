"""Shared loop-nest discovery and fusability analysis for the fused
engine tiers.

Both superblock compilers — the sequential turbo tier
(:mod:`repro.machine.superblock`) and the batched superblock tier
(:mod:`repro.machine.batchturbo`) — fuse the same shape of loop: a
*linear single-latch* natural loop whose body walks header -> ... ->
latch with exactly one in-loop successor per node, built innermost-first
so outer loops absorb already-fused inner loops as nested units.  This
module holds that analysis in one place so the two tiers can never
disagree about *what* is fusable; only the code they generate for a
fusable nest differs (per-run locals vs per-cell overlays).

The eligibility rules (see :func:`build_unit`):

* single latch — multiple back edges mean the iteration has no single
  "end", so per-iteration constants cannot be folded;
* every node on the walk has exactly one in-loop successor: a block
  whose JMP target / one BR arm stays in the body (the other arm is a
  side exit), or an already-fused inner unit whose single exit target
  is the continuation;
* **guarded inner units** — a block whose BR has *two* in-loop arms is
  still linear when one arm enters an already-fused inner unit whose
  single exit target is the other arm's target: both ways control
  reaches the same continuation, so the walk treats the conditional
  inner loop as one optional :class:`GuardedUnit` node (the common
  ``if (work) { inner loop }`` shape around a nested hot loop);
* no CALL (re-enters the trampoline — an observation point) and no
  dynamic register-amount WORK (unbounded per-iteration cost) anywhere
  on the path;
* the walk must cover the whole body and end on the latch's back edge —
  irreducible or diamond-shaped bodies and nests around unfused inner
  loops all fail naturally.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loops import Loop, find_loops
from repro.ir.nodes import Function
from repro.ir.opcodes import BINOP_EXPR, Opcode

#: Opcodes treated as plain folded-cost ALU work by the scanners and
#: code generators of both fused tiers.
ALU_OPS = frozenset(BINOP_EXPR) | {
    Opcode.GEP,
    Opcode.CONST,
    Opcode.MOV,
    Opcode.SELECT,
}


class FusionUnit:
    """One fusable loop: a linear path of blocks and already-fused
    inner units from header to latch, plus the continuation/exit
    metadata codegen needs."""

    __slots__ = (
        "header",
        "path",
        "blocks",
        "own_blocks",
        "cont",
        "exit_targets",
        "exit_blocks",
        "guards",
    )

    def __init__(
        self,
        header: str,
        path: tuple,
        blocks: frozenset,
        own_blocks: tuple,
        cont: dict,
        exit_targets: frozenset,
        exit_blocks: tuple,
        guards: Optional[dict] = None,
    ) -> None:
        self.header = header
        self.path = path  # str | FusionUnit | GuardedUnit, in order
        self.blocks = blocks  # every block name covered, recursively
        self.own_blocks = own_blocks  # the plain blocks on this path
        self.cont = cont  # own block -> its in-path successor entry
        self.exit_targets = exit_targets  # out-of-unit BR arm targets
        self.exit_blocks = exit_blocks  # own blocks with a side exit
        self.guards = guards or {}  # guard block -> inner entry header


class GuardedUnit:
    """An already-fused inner unit entered conditionally from a guard
    block: one BR arm enters ``unit`` (whose single exit target is
    ``skip``), the other arm goes straight to ``skip``.  Both arms
    reach the same continuation, so the walk stays linear — codegen
    emits the whole inner loop inside the guard arm and rejoins at
    ``skip``."""

    __slots__ = ("guard", "unit", "skip", "enter_on_true")

    def __init__(
        self, guard: str, unit: FusionUnit, skip: str, enter_on_true: bool
    ) -> None:
        self.guard = guard  # the branching block's name
        self.unit = unit  # the inner FusionUnit entered conditionally
        self.skip = skip  # where both arms rejoin
        self.enter_on_true = enter_on_true  # inner is the taken arm


def unit_entry(node) -> str:
    """The dispatch label a path node is entered at."""
    if isinstance(node, FusionUnit):
        return node.header
    if isinstance(node, GuardedUnit):
        return node.unit.header
    return node


def block_is_fusable(block) -> bool:
    """Reject blocks whose cost cannot be bounded at compile time
    (CALL re-enters the trampoline — an observation point; dynamic
    WORK retires a run-time-dependent amount)."""
    for inst in block.non_phi_instructions():
        if inst.op is Opcode.CALL:
            return False
        if inst.op is Opcode.WORK and type(inst.args[0]) is not int:
            return False
    return True


def build_unit(
    function: Function, loop: Loop, units: dict
) -> Optional[FusionUnit]:
    """Build the fused unit for ``loop``, or None if it is not linear.

    Linear means: single latch, and every node on the walk from the
    header has exactly one in-loop successor — either a block whose
    JMP target / one BR arm stays in the body (the other arm is a side
    exit), or an already-fused inner unit (from ``units``, keyed by
    header) whose single exit target is the continuation.  The walk
    must cover the whole body and end on the latch's back edge, so
    irreducible or diamond-shaped bodies and nests around unfused
    inner loops all fail naturally.
    """
    if len(loop.latches) != 1:
        return None
    body = loop.body
    path: list = []
    covered: set = set()
    current = loop.header
    while True:
        inner = units.get(current) if current != loop.header else None
        if inner is not None:
            if not (inner.blocks <= body) or len(inner.exit_targets) != 1:
                return None
            nxt = next(iter(inner.exit_targets))
            if nxt == loop.header:
                return None  # back edge out of a fused unit: keep unfused
            path.append(inner)
            covered |= inner.blocks
        else:
            block = function.block(current)
            terminator = block.terminator
            if terminator is None or terminator.op not in (
                Opcode.JMP,
                Opcode.BR,
            ):
                return None
            if not block_is_fusable(block):
                return None
            in_loop = [t for t in terminator.targets if t in body]
            if len(in_loop) == 1:
                path.append(current)
                covered.add(current)
                nxt = in_loop[0]
                if nxt == loop.header:
                    if current != loop.latches[0]:
                        return None
                    break  # the back edge: ``current`` is the latch
            elif len(in_loop) == 2 and terminator.op is Opcode.BR:
                guarded = _guarded_successor(
                    current, terminator, body, units, loop.header
                )
                if guarded is None:
                    return None
                path.append(current)
                covered.add(current)
                path.append(guarded)
                covered |= guarded.unit.blocks
                nxt = guarded.skip
                if nxt == loop.header:
                    return None  # inner exits would be extra latches
            else:
                return None
        if nxt in covered:
            return None
        current = nxt
    if covered != body:
        return None
    own_blocks = tuple(n for n in path if isinstance(n, str))
    guards = {
        node.guard: node.unit.header
        for node in path
        if isinstance(node, GuardedUnit)
    }
    cont: dict = {}
    for i, node in enumerate(path):
        if not isinstance(node, str):
            continue
        if i + 1 < len(path) and isinstance(path[i + 1], GuardedUnit):
            # a guard block continues at the rejoin point; the inner
            # entry arm is recorded in ``guards``, not ``cont``
            cont[node] = path[i + 1].skip
        else:
            cont[node] = (
                unit_entry(path[i + 1]) if i + 1 < len(path) else loop.header
            )
    exit_targets: set = set()
    exit_blocks: list = []
    for name in own_blocks:
        terminator = function.block(name).terminator
        if terminator.op is Opcode.BR:
            for target in terminator.targets:
                if target != cont[name] and target != guards.get(name):
                    exit_targets.add(target)
                    exit_blocks.append(name)
    return FusionUnit(
        header=loop.header,
        path=tuple(path),
        blocks=frozenset(covered),
        own_blocks=own_blocks,
        cont=cont,
        exit_targets=frozenset(exit_targets),
        exit_blocks=tuple(exit_blocks),
        guards=guards,
    )


def _guarded_successor(
    name: str, terminator, body: frozenset, units: dict, header: str
) -> Optional[GuardedUnit]:
    """Recognize the guarded-inner-unit diamond at a two-in-loop-arm BR:
    one arm enters an already-fused inner unit whose single exit target
    is the other arm's target.  Returns the :class:`GuardedUnit`, or
    None when neither arm qualifies."""
    then_target, else_target = terminator.targets
    for enter, skip, on_true in (
        (then_target, else_target, True),
        (else_target, then_target, False),
    ):
        inner = units.get(enter)
        if (
            inner is not None
            and enter != header
            and inner.blocks <= body
            and inner.exit_targets == frozenset((skip,))
        ):
            return GuardedUnit(name, inner, skip, on_true)
    return None


def discover_units(function: Function) -> dict:
    """Every fusable loop nest of ``function``: ``{header: FusionUnit}``.

    Built innermost-first (loops sorted by body size) so an outer
    loop's walk can absorb already-fused inner units; inner units stay
    in the map under their own headers — that is where a run resumed
    mid-nest re-enters bulk stepping.
    """
    units: dict = {}
    for loop in sorted(find_loops(function), key=lambda lp: len(lp.body)):
        unit = build_unit(function, loop, units)
        if unit is not None:
            units[unit.header] = unit
    return units


def flatten_unit(unit: FusionUnit) -> list:
    """The nest's plain block names in execution order."""
    names: list = []
    for node in unit.path:
        if isinstance(node, FusionUnit):
            names.extend(flatten_unit(node))
        elif isinstance(node, GuardedUnit):
            names.extend(flatten_unit(node.unit))
        else:
            names.append(node)
    return names


def unit_depth(unit: FusionUnit) -> int:
    """Nesting depth (1 = a plain linear loop)."""
    return 1 + max(
        (
            unit_depth(n.unit if isinstance(n, GuardedUnit) else n)
            for n in unit.path
            if isinstance(n, (FusionUnit, GuardedUnit))
        ),
        default=0,
    )
