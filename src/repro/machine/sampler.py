"""Profile samplers: periodic LBR snapshots + PEBS-style load sampling.

``perf record`` analog (paper §3.4): while the program runs, the sampler

* snapshots the LBR every ``period`` cycles (the paper samples once per
  millisecond; ours is cycle-denominated), and
* records the PC of every demand load whose observed latency crosses the
  PEBS latency threshold — the population from which *delinquent loads*
  (frequent LLC missers, §3.2) are ranked.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.lbr import LastBranchRecord

#: Sentinel "never" cycle for disabled sampling.
NEVER = 1 << 62


class ProfileSampler:
    """Collects LBR snapshots and long-latency load records during a run."""

    def __init__(
        self,
        lbr: LastBranchRecord,
        period: int = 20_000,
        first_at: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("sample period must be positive")
        self.lbr = lbr
        self.period = period
        self.next_at = period if first_at is None else first_at
        self.samples: list[tuple] = []
        self.load_miss_counts: dict[int, int] = {}
        self.load_miss_latency: dict[int, int] = {}

    # Called by the engines when cycle >= next_at.
    def take(self, cycle: int) -> int:
        snapshot = self.lbr.snapshot()
        if snapshot:
            self.samples.append(snapshot)
        self.next_at = cycle + self.period
        return self.next_at

    # Called by the engines for every load whose latency >= threshold.
    def record_load(self, pc: int, latency: int) -> None:
        counts = self.load_miss_counts
        counts[pc] = counts.get(pc, 0) + 1
        lat = self.load_miss_latency
        lat[pc] = lat.get(pc, 0) + latency

    def delinquent_loads(self, top: int = 10, min_count: int = 8) -> list[int]:
        """Load PCs ranked by total miss latency contribution."""
        ranked = sorted(
            (
                pc
                for pc, count in self.load_miss_counts.items()
                if count >= min_count
            ),
            key=lambda pc: self.load_miss_latency.get(pc, 0),
            reverse=True,
        )
        return ranked[:top]
