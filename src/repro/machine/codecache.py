"""Persistent ahead-of-time code cache for the compiled engines.

Fast/turbo compilation is redone in every process: the turbo tier
regenerates and ``compile()``s its superblock steppers, the translating
engine its whole-function module, on every worker spawn —
BENCH_engines.json puts the cold build at 0.1–0.4 s per workload.  This
module makes the *pure-codegen* engines (turbo superblocks, the
translating engine; the fast engine builds closures, not source, so it
has nothing to serialize) first-class content-addressed artifacts:

* **What is stored.**  Per compiled function, the generated sources
  plus their compiled code objects as base64 ``marshal`` blobs — the
  expensive step on a warm load is ``compile()`` of the generated
  source (tens of milliseconds per workload), so the cache stores the
  post-``compile`` code object and warm load is ``marshal.loads`` +
  ``exec`` (sub-millisecond).  Marshal payloads are only meaningful to
  the interpreter that wrote them, so ``sys.implementation.cache_tag``
  is part of the key: a different interpreter misses and recompiles.
* **Where.**  The content-addressed service store
  (:class:`repro.service.store.ArtifactStore`), under its own
  ``codecache`` kind, keyed by (IR fingerprint, engine, machine- and
  memory-config fingerprints, interpreter cache tag, codecache schema
  version).  The fingerprint of :class:`MachineConfig` excludes the
  ``code_cache`` path itself (see
  :func:`repro.service.store.config_fingerprint`), so identical work
  shares keys across cache locations.
* **Safety.**  Loads are validate-or-recompile: a payload that fails
  *any* check — schema or cache-tag mismatch, an embedded IR
  fingerprint that no longer matches the function (the staleness the
  mutation self-test plants), structural drift against the freshly
  built base, un-unmarshalable blobs — is counted as
  ``codecache.invalidated`` and falls back to fresh compilation, which
  re-puts the entry.  A corrupt on-disk entry is quarantined by the
  store layer before this module ever sees it.  Bit-identity is
  enforced by qa oracle axis #6: a cached-load run must be
  byte-identical to a fresh-compile run.

Construction goes through :func:`resolve`, a per-path registry shared
by every :class:`~repro.machine.machine.Machine` in the process, so one
warm service process unmarshals each function once
(``Machine._compiled`` caches per machine; the store serves every
machine after the first).  :class:`~repro.service.api.TuningService`
auto-enables the cache alongside its artifact cache directory and
attaches its metrics registry, so ``codecache.hits`` /
``codecache.misses`` / ``codecache.invalidated`` flow into
``metrics.json`` and ``repro.cli cache stats``.  The
``engine.codegen`` / ``engine.load`` telemetry spans make the
cold-vs-warm split visible per job.
"""

from __future__ import annotations

import base64
import hashlib
import marshal
import sys
import types
from typing import Optional

from repro.ir.printer import format_function
from repro.machine.blockengine import compile_blocks
from repro.machine.config import MachineConfig
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.sampler import NEVER
from repro.machine.superblock import (
    Superblock,
    TurboCompiledFunction,
    compile_turbo,
)
from repro.machine.translator import CompiledFunction, compile_function
from repro.obs import telemetry as obs_telemetry

#: Bump when the cached payload layout changes; old entries then
#: invalidate (and are rewritten) instead of being misinterpreted.
CODECACHE_SCHEMA = 1

#: Engines whose compiled form is pure codegen and therefore cacheable.
#: ``fast`` builds closure chains (nothing to serialize); ``reference``
#: interprets.
CACHEABLE_ENGINES = ("turbo", "translate")

#: ``code_cache`` / ``REPRO_CODE_CACHE`` spellings that mean "off".
DISABLED_VALUES = frozenset({"", "0", "off", "none", "disabled"})


def ir_fingerprint(function) -> str:
    """Stable digest of one finalized IR function (its printed form,
    which includes pcs, so any IR or layout change shifts it)."""
    text = format_function(function)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class CodeCacheInvalid(Exception):
    """A cached payload failed validation (stale, torn, or foreign)."""


# ----------------------------------------------------------------------
# Marshal-blob helpers
# ----------------------------------------------------------------------
def _encode_code(source: str, filename: str) -> str:
    """Compile generated source and return the code object as a base64
    marshal blob (ASCII, JSON-safe)."""
    code = compile(source, filename, "exec")
    return base64.b64encode(marshal.dumps(code)).decode("ascii")


def _exec_blob(blob, namespace: dict, entry: str):
    """Unmarshal + exec one cached code blob; returns ``entry`` from the
    namespace.  Raises :class:`CodeCacheInvalid` on anything suspect."""
    if not isinstance(blob, str):
        raise CodeCacheInvalid("code blob is not a string")
    try:
        code = marshal.loads(base64.b64decode(blob.encode("ascii")))
    except (ValueError, EOFError, TypeError) as exc:
        raise CodeCacheInvalid(f"unmarshalable code blob: {exc}") from exc
    if not isinstance(code, types.CodeType):
        raise CodeCacheInvalid("blob did not decode to a code object")
    exec(code, namespace)  # noqa: S102 - our own serialized codegen
    fn = namespace.get(entry)
    if not callable(fn):
        raise CodeCacheInvalid(f"cached module defines no {entry}()")
    return fn


# ----------------------------------------------------------------------
# Per-engine pack/load
# ----------------------------------------------------------------------
def _pack_turbo(compiled: TurboCompiledFunction) -> dict:
    superblocks = []
    for sb in compiled._superblocks:
        if sb is None:
            superblocks.append(None)
            continue
        name = compiled.function.name
        superblocks.append(
            {
                "header": sb.header,
                "header_index": sb.header_index,
                "path": list(sb.path),
                "depth": sb.depth,
                "bound_cycles": sb.bound_cycles,
                "bound_retired": sb.bound_retired,
                "source_plain": sb.source_plain,
                "source_profiled": sb.source_profiled,
                "code_plain": _encode_code(
                    sb.source_plain,
                    f"<superblock:{name}:{sb.header}:plain:cached>",
                ),
                "code_profiled": _encode_code(
                    sb.source_profiled,
                    f"<superblock:{name}:{sb.header}:profiled:cached>",
                ),
            }
        )
    return {"blocks": len(compiled._blocks), "superblocks": superblocks}


def _load_turbo(
    payload: dict, function, config: MachineConfig
) -> TurboCompiledFunction:
    base = compile_blocks(function, config)
    entries = payload.get("superblocks")
    if not isinstance(entries, list) or payload.get("blocks") != len(
        base._blocks
    ):
        raise CodeCacheInvalid("superblock table shape drifted")
    if len(entries) != len(base._blocks):
        raise CodeCacheInvalid("superblock table length drifted")
    superblocks: list = [None] * len(base._blocks)
    for index, entry in enumerate(entries):
        if entry is None:
            continue
        if not isinstance(entry, dict):
            raise CodeCacheInvalid("superblock entry is not a mapping")
        header = entry.get("header")
        if (
            header not in base.block_index
            or base.block_index[header] != entry.get("header_index")
            or entry.get("header_index") != index
        ):
            raise CodeCacheInvalid(f"header {header!r} drifted")
        bound_retired = entry.get("bound_retired")
        bound_cycles = entry.get("bound_cycles")
        # bound_retired is a divisor in the dispatch loop; bound_cycles
        # paces the bulk guard.  Either <1 would wedge or crash a run.
        if (
            not isinstance(bound_retired, int)
            or bound_retired < 1
            or not isinstance(bound_cycles, int)
            or bound_cycles < 1
        ):
            raise CodeCacheInvalid("implausible superblock bounds")
        source_plain = entry.get("source_plain")
        source_profiled = entry.get("source_profiled")
        if not isinstance(source_plain, str) or not isinstance(
            source_profiled, str
        ):
            raise CodeCacheInvalid("superblock sources missing")
        run_plain = _exec_blob(entry["code_plain"], {}, "__superblock")
        run_profiled = _exec_blob(entry["code_profiled"], {}, "__superblock")
        superblocks[index] = Superblock(
            header=header,
            header_index=index,
            path=tuple(entry.get("path", ())),
            depth=int(entry.get("depth", 1)),
            run_plain=run_plain,
            run_profiled=run_profiled,
            source_plain=source_plain,
            source_profiled=source_profiled,
            bound_cycles=bound_cycles,
            bound_retired=bound_retired,
        )
    return TurboCompiledFunction(base, tuple(superblocks))


def _cell_vector(plan, cell_configs) -> list:
    """Ordered per-cell fingerprints ``"<ir>:<cfg>:<mem>"`` for one
    aligned function plan.

    The *sorted* digest of this vector goes into the cache key (a
    permutation of the same cells is the same compilation workload up
    to PT-table order), while the ordered vector itself is embedded in
    the payload — the generated steppers index per-cell constant
    tables positionally, so a load under a different cell order must
    invalidate and recompile rather than run with permuted tables.
    """
    from repro.service.store import config_fingerprint

    return [
        f"{ir_fingerprint(function)}"
        f":{config_fingerprint(config)}"
        f":{config_fingerprint(config.memory)}"
        for function, config in zip(plan.functions, cell_configs)
    ]


def _cells_digest(vector: list) -> str:
    text = "|".join(sorted(vector))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _pack_batch(compiled) -> dict:
    superblocks = []
    for sb in compiled._superblocks:
        if sb is None:
            superblocks.append(None)
            continue
        name = compiled.plan.name
        superblocks.append(
            {
                "header": sb.header,
                "header_index": sb.header_index,
                "path": list(sb.path),
                "depth": sb.depth,
                "bound_cycles": sb.bound_cycles,
                "bound_retired": sb.bound_retired,
                "source": sb.source,
                "code": _encode_code(
                    sb.source, f"<batchsb:{name}:{sb.header}:cached>"
                ),
                "ptables": [list(table) for table in sb.ptables],
            }
        )
    return {"blocks": len(compiled._blocks), "superblocks": superblocks}


def _load_batch(payload: dict, plan, plans, config, ncells: int):
    from repro.machine.batch import _BatchBlockCompiler
    from repro.machine.batchturbo import (
        BatchSuperblock,
        BatchTurboCompiledFunction,
    )

    compiler = _BatchBlockCompiler(plan, plans, config)
    blocks = tuple(
        compiler.compile_block(aligned)
        for aligned in zip(*(list(f.blocks) for f in plan.functions))
    )
    entries = payload.get("superblocks")
    if not isinstance(entries, list) or payload.get("blocks") != len(
        blocks
    ):
        raise CodeCacheInvalid("superblock table shape drifted")
    if len(entries) != len(blocks):
        raise CodeCacheInvalid("superblock table length drifted")
    superblocks: list = [None] * len(blocks)
    for index, entry in enumerate(entries):
        if entry is None:
            continue
        if not isinstance(entry, dict):
            raise CodeCacheInvalid("superblock entry is not a mapping")
        header = entry.get("header")
        if (
            header not in compiler.block_index
            or compiler.block_index[header] != entry.get("header_index")
            or entry.get("header_index") != index
        ):
            raise CodeCacheInvalid(f"header {header!r} drifted")
        bound_retired = entry.get("bound_retired")
        bound_cycles = entry.get("bound_cycles")
        if (
            not isinstance(bound_retired, int)
            or bound_retired < 1
            or not isinstance(bound_cycles, int)
            or bound_cycles < 1
        ):
            raise CodeCacheInvalid("implausible superblock bounds")
        source = entry.get("source")
        if not isinstance(source, str):
            raise CodeCacheInvalid("superblock source missing")
        tables = entry.get("ptables")
        if not isinstance(tables, list) or any(
            not isinstance(table, list)
            or len(table) != ncells
            or any(not isinstance(value, int) for value in table)
            for table in tables
        ):
            raise CodeCacheInvalid("per-cell constant tables drifted")
        run = _exec_blob(entry["code"], {}, "__batchsb")
        superblocks[index] = BatchSuperblock(
            header=header,
            header_index=index,
            path=tuple(entry.get("path", ())),
            depth=int(entry.get("depth", 1)),
            run=run,
            source=source,
            bound_cycles=bound_cycles,
            bound_retired=bound_retired,
            ptables=tuple(tuple(table) for table in tables),
        )
    return BatchTurboCompiledFunction(
        plan,
        blocks,
        tuple(block.name for block in plan.functions[0].blocks),
        compiler.block_index[plan.functions[0].entry.name],
        len(compiler.slots),
        compiler.has_divergence,
        plan.ret_divergent,
        tuple(superblocks),
    )


def _pack_translate(compiled: CompiledFunction) -> dict:
    return {
        "source": compiled.source,
        "code": _encode_code(
            compiled.source, f"<translated:{compiled.function.name}:cached>"
        ),
    }


def _load_translate(
    payload: dict, function, config: MachineConfig
) -> CompiledFunction:
    source = payload.get("source")
    if not isinstance(source, str):
        raise CodeCacheInvalid("translated source missing")
    namespace = {
        "NEVER": NEVER,
        "ExecutionLimitExceeded": ExecutionLimitExceeded,
    }
    fn = _exec_blob(payload.get("code"), namespace, "__translated")
    return CompiledFunction(function, source, fn)


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class CodeCache:
    """Content-addressed persistence for one cache directory.

    Thin stateful wrapper over an :class:`ArtifactStore`: builds keys,
    validates payloads, counts hits/misses/invalidations (mirrored into
    every attached :class:`MetricsRegistry` as ``codecache.*``), and
    falls back to fresh compilation on any load failure.
    """

    KIND = "codecache"

    def __init__(self, root, metrics=None) -> None:
        # Imported lazily: repro.service imports the machine layer at
        # module scope, so a module-level import here would be circular.
        from repro.service.store import ArtifactStore

        self.root = str(root)
        self.store = ArtifactStore(root)
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.put_errors = 0
        self._metrics: list = []
        if metrics is not None:
            self.attach_metrics(metrics)

    # ------------------------------------------------------------------
    def attach_metrics(self, registry) -> None:
        """Mirror this cache's counters into ``registry`` from now on."""
        if registry is not None and all(
            registry is not attached for attached in self._metrics
        ):
            self._metrics.append(registry)

    def _count(self, name: str) -> None:
        setattr(self, name, getattr(self, name) + 1)
        for registry in self._metrics:
            registry.inc(f"codecache.{name}")

    def stats(self) -> dict:
        return {
            "root": self.root,
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "put_errors": self.put_errors,
        }

    # ------------------------------------------------------------------
    def key(self, function, config: MachineConfig, engine: str):
        from repro.service.store import CacheKey, config_fingerprint

        return CacheKey.make(
            self.KIND,
            function.name,
            "-",  # codegen does not depend on workload scale
            config_fingerprint(config),
            engine=engine,
            mem=config_fingerprint(config.memory),
            ir=ir_fingerprint(function),
            cache_tag=sys.implementation.cache_tag,
            codecache_schema=CODECACHE_SCHEMA,
        )

    # ------------------------------------------------------------------
    def load_or_compile(self, function, config: MachineConfig, engine: str):
        """The Machine-facing entry point: cached load when possible,
        fresh compile (recorded, re-put) otherwise."""
        if engine == "turbo":
            build, pack, load = compile_turbo, _pack_turbo, _load_turbo
        elif engine == "translate":
            build, pack, load = compile_function, _pack_translate, _load_translate
        else:  # fast/reference: nothing serializable; compile in place.
            return compile_blocks(function, config)

        key = self.key(function, config, engine)
        fingerprint = dict(key.params)["ir"]
        payload = self.store.get(key)
        if payload is not None:
            try:
                compiled = self._validate_and_load(
                    payload, function, config, engine, fingerprint, load
                )
            except Exception:
                # Any failure shape — stale module, torn blob, drifted
                # structure — degrades to a recompile, never a crash.
                self._count("invalidated")
            else:
                self._count("hits")
                return compiled
        else:
            self._count("misses")

        with obs_telemetry.phase(
            "engine.codegen", workload=function.name, engine=engine
        ):
            compiled = build(function, config)
        try:
            body = pack(compiled)
            body.update(
                schema=CODECACHE_SCHEMA,
                engine=engine,
                function=function.name,
                ir=fingerprint,
                cache_tag=sys.implementation.cache_tag,
            )
            self.store.put(key, body)
        except Exception:
            # A read-only or full cache directory must not break runs.
            self._count("put_errors")
        return compiled

    def _validate_and_load(
        self, payload, function, config, engine, fingerprint, load
    ):
        with obs_telemetry.phase(
            "engine.load", workload=function.name, engine=engine
        ):
            if payload.get("schema") != CODECACHE_SCHEMA:
                raise CodeCacheInvalid("codecache schema mismatch")
            if payload.get("engine") != engine:
                raise CodeCacheInvalid("engine mismatch")
            if payload.get("function") != function.name:
                raise CodeCacheInvalid("function name mismatch")
            if payload.get("cache_tag") != sys.implementation.cache_tag:
                raise CodeCacheInvalid("interpreter cache tag mismatch")
            # The embedded fingerprint is the staleness detector: a
            # payload planted (or left) under this key for different IR
            # must be rejected before any of its code runs.
            if payload.get("ir") != fingerprint:
                raise CodeCacheInvalid("stale IR fingerprint")
            return load(payload, function, config)


# ----------------------------------------------------------------------
# The batched superblock tier's entry point
# ----------------------------------------------------------------------
def batch_key(cache: CodeCache, plan, config, vector_digest: str,
              ncells: int, lane: bool):
    from repro.service.store import CacheKey, config_fingerprint

    function = plan.functions[0]
    return CacheKey.make(
        cache.KIND,
        plan.name,
        "-",  # codegen does not depend on workload scale
        config_fingerprint(config),
        engine="batchturbo",
        mem=config_fingerprint(config.memory),
        ir=ir_fingerprint(function),
        cells=vector_digest,
        ncells=ncells,
        lane=lane,
        cache_tag=sys.implementation.cache_tag,
        codecache_schema=CODECACHE_SCHEMA,
    )


def load_or_compile_batch(
    cache: Optional[CodeCache],
    plan,
    plans,
    config: MachineConfig,
    cell_configs,
    vector: bool,
):
    """The BatchMachine-facing entry point for the batchturbo tier:
    cached load when possible, fresh compile (recorded, re-put)
    otherwise; a ``None`` cache compiles in place.

    The key hashes the *sorted* per-cell fingerprint vector; the
    payload embeds the *ordered* vector and a load under a permuted
    cell order invalidates (the steppers' PT tables are positional).
    """
    from repro.machine.batchturbo import compile_batch_turbo

    if cache is None:
        return compile_batch_turbo(
            plan, plans, config, cell_configs, vector
        )

    ordered = _cell_vector(plan, cell_configs)
    key = batch_key(
        cache, plan, config, _cells_digest(ordered), len(ordered), vector
    )
    payload = cache.store.get(key)
    if payload is not None:
        try:
            with obs_telemetry.phase(
                "engine.load", workload=plan.name, engine="batchturbo"
            ):
                if payload.get("schema") != CODECACHE_SCHEMA:
                    raise CodeCacheInvalid("codecache schema mismatch")
                if payload.get("engine") != "batchturbo":
                    raise CodeCacheInvalid("engine mismatch")
                if payload.get("function") != plan.name:
                    raise CodeCacheInvalid("function name mismatch")
                if (
                    payload.get("cache_tag")
                    != sys.implementation.cache_tag
                ):
                    raise CodeCacheInvalid(
                        "interpreter cache tag mismatch"
                    )
                if payload.get("cell_vector") != ordered:
                    raise CodeCacheInvalid(
                        "cell fingerprint vector drifted"
                    )
                compiled = _load_batch(
                    payload, plan, plans, config, len(ordered)
                )
        except Exception:
            cache._count("invalidated")
        else:
            cache._count("hits")
            return compiled
    else:
        cache._count("misses")

    with obs_telemetry.phase(
        "engine.codegen", workload=plan.name, engine="batchturbo"
    ):
        compiled = compile_batch_turbo(
            plan, plans, config, cell_configs, vector
        )
    try:
        body = _pack_batch(compiled)
        body.update(
            schema=CODECACHE_SCHEMA,
            engine="batchturbo",
            function=plan.name,
            cell_vector=ordered,
            cache_tag=sys.implementation.cache_tag,
        )
        cache.store.put(key, body)
    except Exception:
        cache._count("put_errors")
    return compiled


# ----------------------------------------------------------------------
# Process-wide registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, CodeCache] = {}


def resolve(path, metrics=None) -> Optional[CodeCache]:
    """The process-wide :class:`CodeCache` for ``path`` (shared by every
    Machine and service pointing at the same directory), or ``None``
    when ``path`` is unset or a disabled spelling ("off", "0", "none").
    """
    if path is None:
        return None
    text = str(path)
    if text.strip().lower() in DISABLED_VALUES:
        return None
    import os

    resolved = os.path.abspath(text)
    cache = _REGISTRY.get(resolved)
    if cache is None:
        cache = CodeCache(resolved)
        _REGISTRY[resolved] = cache
    if metrics is not None:
        cache.attach_metrics(metrics)
    return cache


def forget(path) -> None:
    """Drop one path's registered cache (for temp-dir lifetimes: the
    registry must not keep handing out a cache whose directory is gone).
    """
    if path is None:
        return
    import os

    _REGISTRY.pop(os.path.abspath(str(path)), None)


def reset_registry() -> None:
    """Drop every registered cache (test isolation hook)."""
    _REGISTRY.clear()
