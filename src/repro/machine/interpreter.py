"""Reference interpreter: simple, direct, obviously-correct execution.

Used for differential testing against the translating engine and for
debugging; the translator must produce *identical* timing and counters
(all costs are integers, accumulated in program order by both engines).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.nodes import Function, IRError
from repro.ir.opcodes import Opcode
from repro.machine.context import ExecutionContext
from repro.machine.sampler import NEVER


class ExecutionLimitExceeded(RuntimeError):
    """The instruction budget (MachineConfig.max_instructions) ran out."""


def run_function(
    function: Function,
    ctx: ExecutionContext,
    args: Sequence[int] = (),
) -> int:
    """Execute ``function`` to completion; returns the RET value."""
    if len(args) != len(function.params):
        raise IRError(
            f"{function.name} expects {len(function.params)} args, "
            f"got {len(args)}"
        )

    cfg = ctx.config
    alu = cfg.alu_cost
    br_cost = cfg.branch_cost
    pf_cost = cfg.prefetch_cost
    work_cpi = cfg.work_cpi
    mem = ctx.mem
    space = ctx.space
    counters = ctx.counters
    lbr_push = ctx.lbr.push
    sampler = ctx.sampler
    if sampler is not None:
        next_sample = sampler.next_at
        pebs_threshold = cfg.effective_pebs_threshold()
    else:
        next_sample = NEVER
        pebs_threshold = NEVER
    max_instructions = cfg.max_instructions

    # Precompute per-block metadata.
    start_pc = {block.name: block.start_pc for block in function.blocks}
    block_phis = {}
    block_rest = {}
    for block in function.blocks:
        phis = block.phis()
        block_phis[block.name] = [
            (phi.dst, dict(phi.incomings)) for phi in phis
        ]
        block_rest[block.name] = block.instructions[len(phis):]

    regs: dict[str, int] = dict(zip(function.params, (int(a) for a in args)))
    cycle = int(counters.cycles)
    retired = 0
    loads = 0
    stores = 0
    taken = 0

    prev_block: Optional[str] = None
    block_name = function.entry.name

    def resolve(operand):
        return regs[operand] if type(operand) is str else operand

    while True:
        if cycle >= next_sample:
            next_sample = sampler.take(cycle)  # type: ignore[union-attr]
        if retired > max_instructions:
            raise ExecutionLimitExceeded(
                f"{function.name}: exceeded {max_instructions} instructions"
            )

        # Resolve PHIs with parallel-copy semantics.
        phis = block_phis[block_name]
        if phis:
            values = [resolve(incoming[prev_block]) for _, incoming in phis]
            for (dst, _), value in zip(phis, values):
                regs[dst] = value

        next_block: Optional[str] = None
        for inst in block_rest[block_name]:
            op = inst.op
            a = inst.args
            if op is Opcode.LOAD:
                addr = resolve(a[0])
                latency = mem.load(addr, cycle, inst.pc)
                cycle += latency
                if latency >= pebs_threshold:
                    sampler.record_load(inst.pc, latency)  # type: ignore[union-attr]
                regs[inst.dst] = space.load(addr)
                loads += 1
                retired += 1
            elif op is Opcode.ADD:
                regs[inst.dst] = resolve(a[0]) + resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.GEP:
                regs[inst.dst] = resolve(a[0]) + resolve(a[1]) * a[2]
                cycle += alu
                retired += 1
            elif op is Opcode.SUB:
                regs[inst.dst] = resolve(a[0]) - resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.MUL:
                regs[inst.dst] = resolve(a[0]) * resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.DIV:
                regs[inst.dst] = resolve(a[0]) // resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.REM:
                regs[inst.dst] = resolve(a[0]) % resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.AND:
                regs[inst.dst] = resolve(a[0]) & resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.OR:
                regs[inst.dst] = resolve(a[0]) | resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.XOR:
                regs[inst.dst] = resolve(a[0]) ^ resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.SHL:
                regs[inst.dst] = resolve(a[0]) << resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.SHR:
                regs[inst.dst] = resolve(a[0]) >> resolve(a[1])
                cycle += alu
                retired += 1
            elif op is Opcode.MIN:
                regs[inst.dst] = min(resolve(a[0]), resolve(a[1]))
                cycle += alu
                retired += 1
            elif op is Opcode.MAX:
                regs[inst.dst] = max(resolve(a[0]), resolve(a[1]))
                cycle += alu
                retired += 1
            elif op is Opcode.CMP_EQ:
                regs[inst.dst] = 1 if resolve(a[0]) == resolve(a[1]) else 0
                cycle += alu
                retired += 1
            elif op is Opcode.CMP_NE:
                regs[inst.dst] = 1 if resolve(a[0]) != resolve(a[1]) else 0
                cycle += alu
                retired += 1
            elif op is Opcode.CMP_LT:
                regs[inst.dst] = 1 if resolve(a[0]) < resolve(a[1]) else 0
                cycle += alu
                retired += 1
            elif op is Opcode.CMP_LE:
                regs[inst.dst] = 1 if resolve(a[0]) <= resolve(a[1]) else 0
                cycle += alu
                retired += 1
            elif op is Opcode.CMP_GT:
                regs[inst.dst] = 1 if resolve(a[0]) > resolve(a[1]) else 0
                cycle += alu
                retired += 1
            elif op is Opcode.CMP_GE:
                regs[inst.dst] = 1 if resolve(a[0]) >= resolve(a[1]) else 0
                cycle += alu
                retired += 1
            elif op is Opcode.SELECT:
                regs[inst.dst] = resolve(a[1]) if resolve(a[0]) else resolve(a[2])
                cycle += alu
                retired += 1
            elif op is Opcode.CONST:
                regs[inst.dst] = a[0]
                cycle += alu
                retired += 1
            elif op is Opcode.MOV:
                regs[inst.dst] = resolve(a[0])
                cycle += alu
                retired += 1
            elif op is Opcode.STORE:
                addr = resolve(a[0])
                cycle += mem.store(addr, cycle, inst.pc)
                space.store(addr, resolve(a[1]))
                stores += 1
                retired += 1
            elif op is Opcode.PREFETCH:
                mem.prefetch(resolve(a[0]), cycle, inst.pc)
                cycle += pf_cost
                retired += 1
            elif op is Opcode.WORK:
                amount = resolve(a[0])
                cycle += amount * work_cpi
                retired += amount
            elif op is Opcode.CALL:
                if ctx.invoke is None:
                    raise IRError("CALL executed without an invoke trampoline")
                cycle += br_cost
                retired += 1
                call_args = tuple(resolve(operand) for operand in a)
                # The shared clock crosses the call via counters.cycles.
                counters.cycles = cycle
                regs[inst.dst] = ctx.invoke(
                    inst.targets[0], call_args, inst.pc
                )
                cycle = int(counters.cycles)
                if sampler is not None:
                    next_sample = sampler.next_at
            elif op is Opcode.JMP:
                cycle += br_cost
                retired += 1
                taken += 1
                target = inst.targets[0]
                lbr_push((inst.pc, start_pc[target], cycle))
                next_block = target
            elif op is Opcode.BR:
                cycle += br_cost
                retired += 1
                if resolve(a[0]):
                    target = inst.targets[0]
                    taken += 1
                    lbr_push((inst.pc, start_pc[target], cycle))
                    next_block = target
                else:
                    next_block = inst.targets[1]
            elif op is Opcode.RET:
                cycle += br_cost
                retired += 1
                counters.cycles = cycle
                counters.instructions += retired
                counters.loads += loads
                counters.stores += stores
                counters.taken_branches += taken
                return resolve(a[0])
            else:  # pragma: no cover - exhaustive dispatch
                raise IRError(f"unhandled opcode {op!r}")

        if next_block is None:
            raise IRError(f"block {block_name} fell through without terminator")
        prev_block = block_name
        block_name = next_block
