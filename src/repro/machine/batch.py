"""Batched multi-config execution: N sweep cells, one instruction stream.

The production traffic shape for every headline figure is "same
workload, many configs" — distance sweeps, scheme ablations, cache-size
ablations.  Run sequentially, each cell re-decodes and re-dispatches
the same instruction stream.  This engine runs all cells in one pass:

* **shared front-end** — the module is compiled once; uniform
  instructions (identical operands across cells) execute exactly once
  through the *same* closure factories the sequential fast engine uses
  (:mod:`repro.machine.blockengine`), on a single shared register file;
* **per-cell back-end** — every memory operation visits each cell's
  private L1/L2/LLC+MSHR state (:class:`repro.mem.batch.CellState`) at
  that cell's own clock, so per-cell cycles and cache counters are
  bit-identical to N independent sequential runs;
* **divergence handling** — a static alignment + divergence analysis
  classifies every register as uniform or divergent (cells differing
  only in constant immediates, e.g. per-cell prefetch distances, yield
  divergent registers).  Divergent values may feed ALU ops, SELECTs,
  PHIs, load/prefetch addresses and return values; anything that could
  split *control flow or the value stream* across cells (a divergent
  branch condition, store, call argument, or WORK amount) rejects the
  batch, and :func:`run_batch` falls back to per-cell sequential
  replay — the same observation-point discipline the turbo tier's
  guards apply per block.

Bit-identity argument: control flow, retired/load/store/taken counts
and all loaded values are uniform by construction; cost folding
mirrors the block engine exactly (all costs are integers, materialized
at the same observers), and each cell's clock advances through its own
memory system in program order.  Profiling and tracing are not
supported in batched mode — :func:`run_batch` is for measurement
sweeps; the qa oracle compares it against unprofiled sequential runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.ir.nodes import Function, IRError, Module
from repro.ir.opcodes import BINOP_EXPR, Opcode
from repro.machine.blockengine import (
    _BINOP_FACTORIES,
    _FELL_THROUGH,
    _RETURNED,
    _const_op,
    _edge_copies,
    _gep_op,
    _mov_op,
    _select_op,
)
from repro.machine.config import MachineConfig
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.machine import Machine, RunResult
from repro.machine.pmu import Counters
from repro.mem.address import AddressSpace
from repro.mem.batch import CellState, shared_space


class BatchDivergence(Exception):
    """The cells cannot share one front-end; replay them sequentially.

    ``code`` is a stable machine-readable label for the fallback
    reason; the sweep service counts them as ``batch.fallback.<code>``
    metrics and the CLI surfaces them in the sweep source column.
    """

    def __init__(self, message: str, code: str = "divergent") -> None:
        super().__init__(message)
        self.code = code


#: The closed set of fallback reason codes a BatchDivergence may carry
#: (plus the synthetic "single-cell" run_batch assigns without raising).
FALLBACK_CODES = (
    "alignment",
    "divergent-branch",
    "divergent-store",
    "divergent-call",
    "divergent-work",
    "cost-model",
    "space-mismatch",
    "single-cell",
)


#: One sweep cell: what a sequential run would hand to Machine.
@dataclass
class BatchCell:
    module: Module
    space: AddressSpace
    config: MachineConfig


# ----------------------------------------------------------------------
# Uniform-value evaluators for the divergent/broadcast paths.  The hot
# uniform path reuses blockengine's specialized factories; these generic
# per-cell forms only run on the (rare) divergent instructions.
# ----------------------------------------------------------------------
def _build_binop_funcs() -> dict:
    funcs: dict = {}
    namespace = {"min": min, "max": max}
    for opcode, expr in BINOP_EXPR.items():
        body = expr.format(a="a", b="b")
        source = f"def _f(a, b):\n    return {body}\n"
        scope = dict(namespace)
        exec(source, scope)  # noqa: S102 - trusted templates
        funcs[opcode] = scope["_f"]
    return funcs


_BINOP_FUNCS = _build_binop_funcs()

# Operand spec kinds: uniform register ("R"), divergent register ("D"),
# uniform constant ("C"), per-cell constants ("P").
_UNIFORM_KINDS = ("R", "C")


def _getter(spec) -> Callable:
    """spec -> ``g(R, Di, i)`` reading the operand for cell ``i``."""
    kind, value = spec
    if kind == "R":

        def g(R, Di, i, s=value):
            return R[s]

    elif kind == "D":

        def g(R, Di, i, s=value):
            return Di[s]

    elif kind == "C":

        def g(R, Di, i, c=value):
            return c

    else:

        def g(R, Di, i, cs=value):
            return cs[i]

    return g


def _uniform_spec(spec):
    """Uniform spec -> blockengine's ``(is_register, slot_or_const)``."""
    kind, value = spec
    return (kind == "R", value)


# ----------------------------------------------------------------------
# Alignment + divergence analysis.
# ----------------------------------------------------------------------
class _FunctionPlan:
    """Aligned per-cell copies of one function + its divergence facts."""

    __slots__ = ("name", "functions", "divergent", "ret_divergent")

    def __init__(self, name: str, functions: list) -> None:
        self.name = name
        self.functions = functions
        self.divergent: set = set()
        self.ret_divergent = False


def _operand_divergent(values, divergent: set) -> bool:
    first = values[0]
    if type(first) is str:
        return first in divergent
    return any(v != first for v in values)


def _check_alignment(plan: _FunctionPlan) -> None:
    """Structural alignment: same shape everywhere; operands may differ
    only by being different integer immediates at the same position."""
    first = plan.functions[0]
    for function in plan.functions[1:]:
        if function.params != first.params:
            raise BatchDivergence(
                f"{plan.name}: parameter lists differ", "alignment"
            )
        if len(function.blocks) != len(first.blocks):
            raise BatchDivergence(
                f"{plan.name}: block counts differ", "alignment"
            )
    blocks_per_cell = [list(f.blocks) for f in plan.functions]
    for position, aligned in enumerate(zip(*blocks_per_cell)):
        base = aligned[0]
        for block in aligned[1:]:
            if block.name != base.name:
                raise BatchDivergence(
                    f"{plan.name}: block order differs at {position}"
                    f" ({block.name!r} vs {base.name!r})",
                    "alignment",
                )
            if len(block.instructions) != len(base.instructions):
                raise BatchDivergence(
                    f"{plan.name}/{base.name}: instruction counts differ",
                    "alignment",
                )
        for insts in zip(*(b.instructions for b in aligned)):
            inst = insts[0]
            for other in insts[1:]:
                if (
                    other.op is not inst.op
                    or other.dst != inst.dst
                    or other.targets != inst.targets
                    or other.pc != inst.pc
                    or len(other.args) != len(inst.args)
                ):
                    raise BatchDivergence(
                        f"{plan.name}/{base.name}: instruction at pc "
                        f"{inst.pc:#x} differs structurally",
                        "alignment",
                    )
            for position_args in zip(*(i.args for i in insts)):
                head = position_args[0]
                for value in position_args[1:]:
                    if type(value) is str or type(head) is str:
                        if value != head:
                            raise BatchDivergence(
                                f"{plan.name}/{base.name}: register "
                                f"operands differ at pc {inst.pc:#x}",
                                "alignment",
                            )
            if inst.op is Opcode.PHI:
                labels = [tuple(p for p, _ in i.incomings) for i in insts]
                if any(lab != labels[0] for lab in labels[1:]):
                    raise BatchDivergence(
                        f"{plan.name}/{base.name}: phi predecessors differ",
                        "alignment",
                    )
                for values in zip(
                    *(tuple(v for _, v in i.incomings) for i in insts)
                ):
                    head = values[0]
                    for value in values[1:]:
                        if type(value) is str or type(head) is str:
                            if value != head:
                                raise BatchDivergence(
                                    f"{plan.name}/{base.name}: phi "
                                    f"register incomings differ",
                                    "alignment",
                                )


def _aligned_phis(blocks):
    return list(zip(*(b.phis() for b in blocks)))


def _aligned_rest(blocks):
    return list(zip(*(list(b.non_phi_instructions()) for b in blocks)))


def _propagate(plan: _FunctionPlan, plans: dict) -> bool:
    """One fixpoint sweep; returns True if any fact changed."""
    divergent = plan.divergent
    changed = False
    for blocks in zip(*(list(f.blocks) for f in plan.functions)):
        for phis in _aligned_phis(blocks):
            dst = phis[0].dst
            if dst in divergent:
                continue
            for values in zip(*(tuple(v for _, v in p.incomings) for p in phis)):
                if _operand_divergent(values, divergent):
                    divergent.add(dst)
                    changed = True
                    break
        for insts in _aligned_rest(blocks):
            inst = insts[0]
            arg_divergent = any(
                _operand_divergent([i.args[j] for i in insts], divergent)
                for j in range(len(inst.args))
            )
            if inst.op is Opcode.RET:
                if arg_divergent and not plan.ret_divergent:
                    plan.ret_divergent = True
                    changed = True
                continue
            if inst.op is Opcode.CALL:
                callee = plans.get(inst.targets[0])
                if callee is not None and callee.ret_divergent:
                    arg_divergent = True  # dst inherits callee divergence
            dst = inst.dst
            if dst is not None and arg_divergent and dst not in divergent:
                divergent.add(dst)
                changed = True
    return changed


def _check_banned(plan: _FunctionPlan) -> None:
    """Reject anything that could split control flow or the value
    stream across cells; the caller falls back to sequential replay."""
    divergent = plan.divergent
    for blocks in zip(*(list(f.blocks) for f in plan.functions)):
        name = blocks[0].name
        for insts in _aligned_rest(blocks):
            inst = insts[0]
            op = inst.op

            def diverges(j):
                return _operand_divergent(
                    [i.args[j] for i in insts], divergent
                )

            if op is Opcode.BR and diverges(0):
                raise BatchDivergence(
                    f"{plan.name}/{name}: divergent branch condition",
                    "divergent-branch",
                )
            if op is Opcode.STORE and (diverges(0) or diverges(1)):
                raise BatchDivergence(
                    f"{plan.name}/{name}: divergent store",
                    "divergent-store",
                )
            if op is Opcode.CALL and any(
                diverges(j) for j in range(len(inst.args))
            ):
                raise BatchDivergence(
                    f"{plan.name}/{name}: divergent call argument",
                    "divergent-call",
                )
            if op is Opcode.WORK and diverges(0):
                raise BatchDivergence(
                    f"{plan.name}/{name}: divergent WORK amount",
                    "divergent-work",
                )


def analyze_modules(modules: Sequence[Module]) -> dict:
    """Align + analyze every function across cells.

    Returns ``{name: _FunctionPlan}``; raises :class:`BatchDivergence`
    when the cells cannot share one front-end.
    """
    names = list(modules[0].functions)
    for module in modules[1:]:
        if list(module.functions) != names:
            raise BatchDivergence(
            "function sets differ across cells", "alignment"
        )
    plans = {
        name: _FunctionPlan(name, [m.function(name) for m in modules])
        for name in names
    }
    for plan in plans.values():
        _check_alignment(plan)
    changed = True
    while changed:
        changed = False
        for plan in plans.values():
            if _propagate(plan, plans):
                changed = True
    for plan in plans.values():
        _check_banned(plan)
    return plans


# ----------------------------------------------------------------------
# The batched frame + op factories.  Uniform ops come straight from
# blockengine (they only touch R); everything below handles the
# per-cell paths.
# ----------------------------------------------------------------------
class _BatchFrame:
    """Per-invocation state: uniform tallies + per-cell clocks/overlays."""

    __slots__ = (
        "cycles",
        "retired",
        "loads",
        "stores",
        "taken",
        "next",
        "value",
        "D",
        "mem_loads",
        "mem_stores",
        "mem_prefetches",
        "sp_load",
        "sp_store",
        "invoke",
        "counters",
        "max_instructions",
    )


def _batch_alu_op(dst: int, fn: Callable, getters: tuple):
    """Generic per-cell ALU/move evaluation into the divergent overlay."""
    if len(getters) == 1:
        (g0,) = getters

        def op(R, st, dst=dst, fn=fn, g0=g0):
            for i, Di in enumerate(st.D):
                Di[dst] = fn(g0(R, Di, i))

    elif len(getters) == 2:
        g0, g1 = getters

        def op(R, st, dst=dst, fn=fn, g0=g0, g1=g1):
            for i, Di in enumerate(st.D):
                Di[dst] = fn(g0(R, Di, i), g1(R, Di, i))

    else:
        g0, g1, g2 = getters

        def op(R, st, dst=dst, fn=fn, g0=g0, g1=g1, g2=g2):
            for i, Di in enumerate(st.D):
                Di[dst] = fn(g0(R, Di, i), g1(R, Di, i), g2(R, Di, i))

    return op


def _batch_load_op(dst: int, aspec, dst_divergent: bool, pc: int, pending: int):
    kind = aspec[0]
    if kind in _UNIFORM_KINDS:
        am, av = _uniform_spec(aspec)
        if dst_divergent:

            def op(R, st, dst=dst, am=am, av=av, pc=pc, k=pending):
                addr = R[av] if am else av
                cycles = st.cycles
                for i, mem_load in enumerate(st.mem_loads):
                    now = cycles[i] + k
                    cycles[i] = now + mem_load(addr, now, pc)
                value = st.sp_load(addr)
                for Di in st.D:
                    Di[dst] = value

        else:

            def op(R, st, dst=dst, am=am, av=av, pc=pc, k=pending):
                addr = R[av] if am else av
                cycles = st.cycles
                for i, mem_load in enumerate(st.mem_loads):
                    now = cycles[i] + k
                    cycles[i] = now + mem_load(addr, now, pc)
                R[dst] = st.sp_load(addr)

    else:  # divergent address -> divergent value
        g = _getter(aspec)

        def op(R, st, dst=dst, g=g, pc=pc, k=pending):
            cycles = st.cycles
            D = st.D
            sp_load = st.sp_load
            for i, mem_load in enumerate(st.mem_loads):
                Di = D[i]
                addr = g(R, Di, i)
                now = cycles[i] + k
                cycles[i] = now + mem_load(addr, now, pc)
                Di[dst] = sp_load(addr)

    return op


def _batch_store_op(aspec, vspec, pc: int, pending: int):
    am, av = _uniform_spec(aspec)
    vm, vv = _uniform_spec(vspec)

    def op(R, st, am=am, av=av, vm=vm, vv=vv, pc=pc, k=pending):
        addr = R[av] if am else av
        cycles = st.cycles
        for i, mem_store in enumerate(st.mem_stores):
            now = cycles[i] + k
            cycles[i] = now + mem_store(addr, now, pc)
        st.sp_store(addr, R[vv] if vm else vv)

    return op


def _batch_prefetch_op(aspec, pc: int, pending: int):
    if aspec[0] in _UNIFORM_KINDS:
        # Uniform address: never touch the divergent overlay — it may
        # be empty (``st.D == ()``) when the whole function is uniform,
        # e.g. a source program with its own prefetch instructions.
        am, av = _uniform_spec(aspec)

        def op(R, st, am=am, av=av, pc=pc, k=pending):
            addr = R[av] if am else av
            cycles = st.cycles
            for i, mem_prefetch in enumerate(st.mem_prefetches):
                now = cycles[i] + k
                cycles[i] = now
                mem_prefetch(addr, now, pc)

        return op
    g = _getter(aspec)

    def op(R, st, g=g, pc=pc, k=pending):
        cycles = st.cycles
        D = st.D
        for i, mem_prefetch in enumerate(st.mem_prefetches):
            now = cycles[i] + k
            cycles[i] = now
            mem_prefetch(g(R, D[i], i), now, pc)

    return op


def _batch_work_op(slot: int, pending: int, work_cpi: int):
    def op(R, st, a=slot, k=pending, cpi=work_cpi):
        add = k + R[a] * cpi
        cycles = st.cycles
        for i in range(len(cycles)):
            cycles[i] += add
        st.retired += R[a]

    return op


def _batch_call_op(
    dst: int, callee: str, argspec: tuple, pc: int, pending: int,
    ret_divergent: bool,
):
    def op(
        R, st, dst=dst, callee=callee, argspec=argspec, pc=pc, k=pending,
        ret_div=ret_divergent,
    ):
        cycles = st.cycles
        counters = st.counters
        for i in range(len(cycles)):
            cycles[i] += k
            counters[i].cycles = cycles[i]
        args = tuple((R[v] if m else v) for m, v in argspec)
        result = st.invoke(callee, args, pc)
        for i in range(len(cycles)):
            cycles[i] = int(counters[i].cycles)
        if ret_div:
            for i, Di in enumerate(st.D):
                Di[dst] = result[i]
        else:
            R[dst] = result

    return op


def _batch_copies(ucopy, dpairs):
    """Parallel-copy closure covering uniform and divergent PHI dsts.

    Divergent reads happen before the uniform copy mutates R (parallel
    semantics); divergent writes only touch the overlay, which no
    uniform source reads.
    """
    if not dpairs:
        if ucopy is None:
            return None

        def copies(R, st, ucopy=ucopy):
            ucopy(R)

        return copies
    dpairs = tuple(dpairs)

    def copies(R, st, ucopy=ucopy, dpairs=dpairs):
        for i, Di in enumerate(st.D):
            values = [g(R, Di, i) for _, g in dpairs]
            for (d, _), value in zip(dpairs, values):
                Di[d] = value
        if ucopy is not None:
            ucopy(R)

    return copies


def _batch_jmp_op(target_index, copies, pending, retired, nloads, nstores):
    def op(
        R, st, ti=target_index, copies=copies, k=pending, rt=retired,
        nl=nloads, ns=nstores,
    ):
        cycles = st.cycles
        for i in range(len(cycles)):
            cycles[i] += k
        st.retired += rt
        if nl:
            st.loads += nl
        if ns:
            st.stores += ns
        st.taken += 1
        if copies is not None:
            copies(R, st)
        st.next = ti

    return op


def _batch_br_op(
    cspec, then_index, then_copies, else_index, else_copies,
    pending, retired, nloads, nstores,
):
    cm, cv = _uniform_spec(cspec)

    def op(
        R, st, cm=cm, cv=cv, ti=then_index, tc=then_copies, ei=else_index,
        ec=else_copies, k=pending, rt=retired, nl=nloads, ns=nstores,
    ):
        cycles = st.cycles
        for i in range(len(cycles)):
            cycles[i] += k
        st.retired += rt
        if nl:
            st.loads += nl
        if ns:
            st.stores += ns
        if R[cv] if cm else cv:
            st.taken += 1
            if tc is not None:
                tc(R, st)
            st.next = ti
        else:
            if ec is not None:
                ec(R, st)
            st.next = ei

    return op


def _batch_ret_op(spec, ret_divergent, pending, retired, nloads, nstores):
    getter = _getter(spec) if ret_divergent else None
    am, av = _uniform_spec(spec) if not ret_divergent else (False, 0)

    def op(
        R, st, g=getter, ret_div=ret_divergent, am=am, av=av, k=pending,
        rt=retired, nl=nloads, ns=nstores,
    ):
        cycles = st.cycles
        for i in range(len(cycles)):
            cycles[i] += k
        st.retired += rt
        if nl:
            st.loads += nl
        if ns:
            st.stores += ns
        retired_total = st.retired
        loads_total = st.loads
        stores_total = st.stores
        taken_total = st.taken
        for i, counters in enumerate(st.counters):
            counters.cycles = cycles[i]
            counters.instructions += retired_total
            counters.loads += loads_total
            counters.stores += stores_total
            counters.taken_branches += taken_total
        if ret_div:
            D = st.D
            st.value = [g(R, D[i], i) for i in range(len(cycles))]
        else:
            st.value = R[av] if am else av
        st.next = _RETURNED

    return op


# ----------------------------------------------------------------------
# The batched block compiler: blockengine's structure, with every
# instruction routed to the uniform (shared) or per-cell path.
# ----------------------------------------------------------------------
class _BatchBlockCompiler:
    def __init__(self, plan: _FunctionPlan, plans: dict, config: MachineConfig):
        self.plan = plan
        self.plans = plans
        self.config = config
        first = plan.functions[0]
        self.slots: dict = {}
        for param in first.params:
            self.slots[param] = len(self.slots)
        for instruction in first.instructions():
            if instruction.dst is not None and instruction.dst not in self.slots:
                self.slots[instruction.dst] = len(self.slots)
        self.block_index = {
            block.name: index for index, block in enumerate(first.blocks)
        }
        self.has_divergence = bool(plan.divergent) or plan.ret_divergent

    # ------------------------------------------------------------------
    def ospec(self, values):
        """Aligned operand values across cells -> a spec tuple."""
        first = values[0]
        if type(first) is str:
            slot = self.slots[first]
            if first in self.plan.divergent:
                return ("D", slot)
            return ("R", slot)
        if all(value == first for value in values[1:]):
            return ("C", first)
        self.has_divergence = True
        return ("P", tuple(values))

    def arg_spec(self, insts, j):
        return self.ospec([inst.args[j] for inst in insts])

    def is_uniform(self, *specs) -> bool:
        return all(spec[0] in _UNIFORM_KINDS for spec in specs)

    def edge(self, target_name: str, source_name: str):
        """Batched PHI parallel-copy closure for source -> target."""
        targets = [f.block(target_name) for f in self.plan.functions]
        upairs: list = []
        dpairs: list = []
        for phis in _aligned_phis(targets):
            dst = phis[0].dst
            values = []
            for phi in phis:
                incoming = dict(phi.incomings)
                if source_name not in incoming:
                    raise IRError(
                        f"phi {dst} in {target_name} lacks incoming "
                        f"from {source_name}"
                    )
                values.append(incoming[source_name])
            spec = self.ospec(values)
            if dst in self.plan.divergent:
                dpairs.append((self.slots[dst], _getter(spec)))
            else:
                is_reg, value = _uniform_spec(spec)
                upairs.append((self.slots[dst], is_reg, value))
        return _batch_copies(_edge_copies(upairs), dpairs)

    # ------------------------------------------------------------------
    def compile_block(self, blocks) -> tuple:
        cfg = self.config
        alu = cfg.alu_cost
        divergent = self.plan.divergent
        block_name = blocks[0].name
        ops: list = []
        pending = 0
        retired = 0
        nloads = 0
        nstores = 0

        for insts in _aligned_rest(blocks):
            inst = insts[0]
            op = inst.op
            dst = inst.dst
            dst_divergent = dst is not None and dst in divergent
            if op in _BINOP_FACTORIES:
                a, b = self.arg_spec(insts, 0), self.arg_spec(insts, 1)
                if not dst_divergent and self.is_uniform(a, b):
                    (am, av), (bm, bv) = _uniform_spec(a), _uniform_spec(b)
                    factory = _BINOP_FACTORIES[op][(am, bm)]
                    ops.append(factory(self.slots[dst], av, bv))
                else:
                    ops.append(
                        _batch_alu_op(
                            self.slots[dst],
                            _BINOP_FUNCS[op],
                            (_getter(a), _getter(b)),
                        )
                    )
                pending += alu
                retired += 1
            elif op is Opcode.GEP:
                base = self.arg_spec(insts, 0)
                index = self.arg_spec(insts, 1)
                scale = self.ospec([i.args[2] for i in insts])
                if not dst_divergent and self.is_uniform(base, index, scale):
                    ops.append(
                        _gep_op(
                            self.slots[dst],
                            _uniform_spec(base),
                            _uniform_spec(index),
                            scale[1],
                        )
                    )
                else:
                    ops.append(
                        _batch_alu_op(
                            self.slots[dst],
                            lambda b, i, s: b + i * s,
                            (_getter(base), _getter(index), _getter(scale)),
                        )
                    )
                pending += alu
                retired += 1
            elif op is Opcode.CONST:
                value = self.ospec([i.args[0] for i in insts])
                if not dst_divergent and self.is_uniform(value):
                    ops.append(_const_op(self.slots[dst], value[1]))
                else:
                    ops.append(
                        _batch_alu_op(
                            self.slots[dst], lambda a: a, (_getter(value),)
                        )
                    )
                pending += alu
                retired += 1
            elif op is Opcode.MOV:
                a = self.arg_spec(insts, 0)
                if not dst_divergent and self.is_uniform(a):
                    ops.append(_mov_op(self.slots[dst], _uniform_spec(a)))
                else:
                    ops.append(
                        _batch_alu_op(
                            self.slots[dst], lambda a: a, (_getter(a),)
                        )
                    )
                pending += alu
                retired += 1
            elif op is Opcode.SELECT:
                c = self.arg_spec(insts, 0)
                a = self.arg_spec(insts, 1)
                b = self.arg_spec(insts, 2)
                if not dst_divergent and self.is_uniform(c, a, b):
                    ops.append(
                        _select_op(
                            self.slots[dst],
                            _uniform_spec(c),
                            _uniform_spec(a),
                            _uniform_spec(b),
                        )
                    )
                else:
                    ops.append(
                        _batch_alu_op(
                            self.slots[dst],
                            lambda c, a, b: a if c else b,
                            (_getter(c), _getter(a), _getter(b)),
                        )
                    )
                pending += alu
                retired += 1
            elif op is Opcode.LOAD:
                ops.append(
                    _batch_load_op(
                        self.slots[dst],
                        self.arg_spec(insts, 0),
                        dst_divergent,
                        inst.pc,
                        pending,
                    )
                )
                pending = 0
                retired += 1
                nloads += 1
            elif op is Opcode.STORE:
                ops.append(
                    _batch_store_op(
                        self.arg_spec(insts, 0),
                        self.arg_spec(insts, 1),
                        inst.pc,
                        pending,
                    )
                )
                pending = 0
                retired += 1
                nstores += 1
            elif op is Opcode.PREFETCH:
                ops.append(
                    _batch_prefetch_op(
                        self.arg_spec(insts, 0), inst.pc, pending
                    )
                )
                pending = cfg.prefetch_cost
                retired += 1
            elif op is Opcode.WORK:
                amount = inst.args[0]
                if type(amount) is int:
                    pending += amount * cfg.work_cpi
                    retired += amount
                else:
                    ops.append(
                        _batch_work_op(
                            self.slots[amount], pending, cfg.work_cpi
                        )
                    )
                    pending = 0
            elif op is Opcode.CALL:
                pending += cfg.branch_cost
                retired += 1
                callee = inst.targets[0]
                callee_plan = self.plans.get(callee)
                ret_divergent = (
                    callee_plan is not None and callee_plan.ret_divergent
                )
                argspec = tuple(
                    _uniform_spec(self.arg_spec(insts, j))
                    for j in range(len(inst.args))
                )
                ops.append(
                    _batch_call_op(
                        self.slots[dst],
                        callee,
                        argspec,
                        inst.pc,
                        pending,
                        ret_divergent,
                    )
                )
                pending = 0
            elif op is Opcode.JMP:
                pending += cfg.branch_cost
                retired += 1
                target = inst.targets[0]
                ops.append(
                    _batch_jmp_op(
                        self.block_index[target],
                        self.edge(target, block_name),
                        pending,
                        retired,
                        nloads,
                        nstores,
                    )
                )
                pending = retired = nloads = nstores = 0
            elif op is Opcode.BR:
                pending += cfg.branch_cost
                retired += 1
                then_target, else_target = inst.targets
                ops.append(
                    _batch_br_op(
                        self.arg_spec(insts, 0),
                        self.block_index[then_target],
                        self.edge(then_target, block_name),
                        self.block_index[else_target],
                        self.edge(else_target, block_name),
                        pending,
                        retired,
                        nloads,
                        nstores,
                    )
                )
                pending = retired = nloads = nstores = 0
            elif op is Opcode.RET:
                pending += cfg.branch_cost
                retired += 1
                spec = (
                    self.arg_spec(insts, 0) if inst.args else ("C", 0)
                )
                ops.append(
                    _batch_ret_op(
                        spec,
                        self.plan.ret_divergent,
                        pending,
                        retired,
                        nloads,
                        nstores,
                    )
                )
                pending = retired = nloads = nstores = 0
            else:  # pragma: no cover - exhaustive dispatch
                raise IRError(f"unhandled opcode {op!r}")
        return tuple(ops)


class BatchCompiledFunction:
    """One function compiled for all cells at once."""

    def __init__(
        self,
        plan: _FunctionPlan,
        blocks: tuple,
        block_names: tuple,
        entry_index: int,
        register_count: int,
        needs_overlay: bool,
        ret_divergent: bool,
    ) -> None:
        self.plan = plan
        self._blocks = blocks
        self._block_names = block_names
        self._entry = entry_index
        self._register_count = register_count
        self._needs_overlay = needs_overlay
        self.ret_divergent = ret_divergent

    def stats(self) -> dict:
        return {
            "blocks": len(self._blocks),
            "ops": sum(len(ops) for ops in self._blocks),
            "registers": self._register_count,
            "divergent_registers": len(self.plan.divergent),
        }

    def __call__(self, bm: "BatchMachine", args: Sequence[int] = ()):
        function = self.plan.functions[0]
        if len(args) != len(function.params):
            raise IRError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        st = _BatchFrame()
        st.counters = bm.cell_counters
        st.mem_loads = bm.load_ports
        st.mem_stores = bm.store_ports
        st.mem_prefetches = bm.prefetch_ports
        st.sp_load = bm.space.load
        st.sp_store = bm.space.store
        st.invoke = bm._invoke
        st.cycles = [int(counters.cycles) for counters in st.counters]
        st.retired = 0
        st.loads = 0
        st.stores = 0
        st.taken = 0
        st.value = 0
        if self._needs_overlay:
            st.D = [
                [0] * self._register_count for _ in range(bm.ncells)
            ]
        else:
            st.D = ()
        max_instructions = bm.config.max_instructions
        st.max_instructions = max_instructions

        R = [0] * self._register_count
        for slot, value in enumerate(args):
            R[slot] = int(value)

        blocks = self._blocks
        bi = self._entry
        while True:
            if st.retired > max_instructions:
                raise ExecutionLimitExceeded(
                    f"{function.name}: exceeded {max_instructions} "
                    f"instructions"
                )
            st.next = _FELL_THROUGH
            for op in blocks[bi]:
                op(R, st)
            nxt = st.next
            if nxt < 0:
                if nxt == _RETURNED:
                    return st.value
                raise IRError(
                    f"block {self._block_names[bi]} fell through "
                    f"without terminator"
                )
            bi = nxt


# ----------------------------------------------------------------------
# The batch machine + the public entry point.
# ----------------------------------------------------------------------
_COST_FIELDS = (
    "alu_cost", "branch_cost", "prefetch_cost", "work_cpi",
    "max_instructions",
)


#: The batched execution tiers ``BatchMachine`` can compile for.
BATCH_TIERS = ("batch", "batchturbo")


def resolve_tier(cells: Sequence[BatchCell], tier: Optional[str]) -> str:
    """The tier a batch should run at: an explicit request wins, else
    the cells' engine knob decides — ``engine="turbo"`` cells get the
    batched superblock tier, everything else the per-block chains."""
    if tier is not None:
        if tier not in BATCH_TIERS:
            raise ValueError(f"unknown batch tier {tier!r}")
        return tier
    if cells and cells[0].config.engine == "turbo":
        return "batchturbo"
    return "batch"


class BatchMachine:
    """N simulated processes sharing one front-end.

    Raises :class:`BatchDivergence` at construction when the cells
    cannot be batched; never at run time (the analysis is static).

    ``tier`` selects the execution tier (see :func:`resolve_tier`):
    ``"batch"`` runs per-block closure chains, ``"batchturbo"`` adds a
    fused superblock per hot loop nest
    (:mod:`repro.machine.batchturbo`) and, past the vector cell-count
    threshold, the vectorized L1 tag lane.
    """

    def __init__(
        self, cells: Sequence[BatchCell], tier: Optional[str] = None
    ) -> None:
        if not cells:
            raise ValueError("batch needs at least one cell")
        self.ncells = len(cells)
        self.config = cells[0].config
        self.tier = resolve_tier(cells, tier)
        for index, cell in enumerate(cells):
            for field_name in _COST_FIELDS:
                if getattr(cell.config, field_name) != getattr(
                    self.config, field_name
                ):
                    raise BatchDivergence(
                        f"cell {index}: {field_name} differs across cells",
                        "cost-model",
                    )
        modules = []
        for cell in cells:
            if not cell.module.finalized:
                cell.module.finalize()
            modules.append(cell.module)
        try:
            self.space = shared_space([cell.space for cell in cells])
        except ValueError as error:
            raise BatchDivergence(str(error), "space-mismatch") from error
        self.plans = analyze_modules(modules)
        self.cells = [
            CellState(cell.config, self.space) for cell in cells
        ]
        self.cell_counters = [cell.counters for cell in self.cells]
        self.load_ports = [cell.load for cell in self.cells]
        self.store_ports = [cell.store for cell in self.cells]
        self.prefetch_ports = [cell.prefetch for cell in self.cells]
        self.cell_configs = [cell.config for cell in cells]
        self._compiled: dict = {}
        self.bindings = None
        self.vector = False
        if self.tier == "batchturbo":
            from repro.mem.batch import build_lane, vector_threshold

            from repro.machine.batchturbo import CellBindings

            self.vector = self.ncells >= vector_threshold()
            lane = build_lane(self.cells) if self.vector else None
            self.bindings = CellBindings(self.cells, self.space, lane)

    # ------------------------------------------------------------------
    def _compile(self, name: str) -> BatchCompiledFunction:
        compiled = self._compiled.get(name)
        if compiled is None:
            plan = self.plans[name]
            if self.tier == "batchturbo":
                from repro.machine.codecache import (
                    load_or_compile_batch,
                    resolve,
                )

                cache = resolve(self.config.code_cache)
                compiled = load_or_compile_batch(
                    cache,
                    plan,
                    self.plans,
                    self.config,
                    self.cell_configs,
                    self.vector,
                )
            else:
                compiler = _BatchBlockCompiler(
                    plan, self.plans, self.config
                )
                blocks = tuple(
                    compiler.compile_block(aligned)
                    for aligned in zip(
                        *(list(f.blocks) for f in plan.functions)
                    )
                )
                compiled = BatchCompiledFunction(
                    plan,
                    blocks,
                    tuple(
                        block.name for block in plan.functions[0].blocks
                    ),
                    compiler.block_index[plan.functions[0].entry.name],
                    len(compiler.slots),
                    compiler.has_divergence,
                    plan.ret_divergent,
                )
            self._compiled[name] = compiled
        return compiled

    def _invoke(self, callee: str, args: Sequence[int], from_pc: int):
        """Batched CALL trampoline (mirrors ``Machine._invoke``; the LBR
        push is a no-op because batched runs never profile)."""
        if callee not in self.plans:
            raise IRError(f"call to unknown function {callee!r}")
        for counters in self.cell_counters:
            counters.taken_branches += 1
        return self._compile(callee)(self, args)

    def run(
        self, function: str = "main", args: Sequence[int] = ()
    ) -> list:
        """Execute ``function`` across all cells; one
        :class:`~repro.machine.machine.RunResult` per cell."""
        if function not in self.plans:
            raise IRError(f"module has no function {function!r}")
        before = [counters.copy() for counters in self.cell_counters]
        value = self._compile(function)(self, args)
        values = (
            value if isinstance(value, list) else [value] * self.ncells
        )
        return [
            RunResult(value=v, counters=after - b)
            for v, after, b in zip(values, self.cell_counters, before)
        ]


@dataclass
class BatchOutcome:
    """Per-cell results + whether the batched fast path was used.

    ``tier`` is the tier that actually executed (``"batch"``,
    ``"batchturbo"``, or ``"replay"`` for the sequential fallback);
    ``reason_code`` is the stable :data:`FALLBACK_CODES` label behind a
    human-readable ``reason``.
    """

    results: list
    batched: bool
    reason: Optional[str] = None
    reason_code: Optional[str] = None
    tier: Optional[str] = None


def run_batch(
    cells: Sequence[BatchCell],
    function: str = "main",
    args: Sequence[int] = (),
    tier: Optional[str] = None,
) -> BatchOutcome:
    """Run every cell, batched when the cells align, else sequentially.

    The outcome's ``results`` are bit-identical either way; ``batched``,
    ``tier`` and ``reason``/``reason_code`` report which path executed
    (the qa oracle asserts the identity, the sweep service counts the
    fallback codes as ``batch.fallback.<code>`` metrics).
    """
    cells = list(cells)
    reason: Optional[str] = None
    reason_code: Optional[str] = None
    if len(cells) >= 2:
        try:
            machine = BatchMachine(cells, tier=tier)
        except BatchDivergence as error:
            reason = str(error)
            reason_code = error.code
        else:
            return BatchOutcome(
                machine.run(function, args), True, tier=machine.tier
            )
    else:
        reason = "single cell"
        reason_code = "single-cell"
    results = [
        Machine(cell.module, cell.space, config=cell.config).run(
            function, args
        )
        for cell in cells
    ]
    return BatchOutcome(results, False, reason, reason_code, "replay")
